//! End-to-end compiler tests: compile KC source, assemble, link, and run in
//! the functional simulator, for every ISA of the family.

use kahrisma_core::{RunOutcome, SimConfig, Simulator};
use kahrisma_isa::IsaKind;
use kahrisma_kcc::{CompileOptions, compile_to_executable};

fn run_isa(source: &str, isa: IsaKind) -> (u32, String) {
    let exe = compile_to_executable(source, &CompileOptions::for_isa(isa))
        .unwrap_or_else(|e| panic!("compile for {}: {e}", isa.name()));
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    match sim.run(50_000_000).unwrap_or_else(|e| {
        let ips: Vec<String> = sim.ip_history().map(|a| sim.describe_addr(a)).collect();
        panic!("simulation for {} failed: {e}\nhistory: {ips:#?}", isa.name())
    }) {
        RunOutcome::Halted { exit_code } => (exit_code, sim.state().stdout_string()),
        RunOutcome::BudgetExhausted => panic!("budget exhausted for {}", isa.name()),
    }
}

/// Runs `source` on every ISA and asserts the identical exit code.
fn expect_all_isas(source: &str, exit: u32) {
    for isa in IsaKind::ALL {
        let (code, _) = run_isa(source, isa);
        assert_eq!(code, exit, "wrong exit code on {}", isa.name());
    }
}

#[test]
fn arithmetic_and_precedence() {
    expect_all_isas("int main() { return (2 + 3 * 4 - 1) / 2 % 5; }", 1); // 13/2=6, 6%5=1
}

#[test]
fn signed_division_semantics() {
    expect_all_isas(
        "int main() { int a = -7; int b = 2; if (a / b != -3) return 1; if (a % b != -1) return 2; return 0; }",
        0,
    );
}

#[test]
fn unsigned_vs_signed_comparison() {
    expect_all_isas(
        "int main() {
            int s = -1;
            uint u = 1;
            int r = 0;
            if (s < 1) r += 1;          // signed: -1 < 1
            if (u < s) r += 2;          // unsigned: 1 < 0xFFFFFFFF
            return r;
        }",
        3,
    );
}

#[test]
fn shifts_follow_signedness() {
    expect_all_isas(
        "int main() {
            int s = -8;
            uint u = 0x80000000;
            if (s >> 1 != -4) return 1;
            if (u >> 31 != 1) return 2;
            if (1 << 10 != 1024) return 3;
            return 0;
        }",
        0,
    );
}

#[test]
fn loops_and_locals() {
    expect_all_isas(
        "int main() { int s = 0; int i; for (i = 1; i <= 100; i++) s += i; return s - 5000; }",
        50,
    );
}

#[test]
fn while_break_continue() {
    expect_all_isas(
        "int main() {
            int s = 0;
            int i = 0;
            while (1) {
                i++;
                if (i > 20) break;
                if (i % 2) continue;
                s += i;            // 2+4+...+20 = 110
            }
            return s;
        }",
        110,
    );
}

#[test]
fn global_arrays_and_pointers() {
    expect_all_isas(
        "int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
         int sum(int* p, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += p[i]; return s; }
         int main() { return sum(tab, 8) + *(tab + 2); }",
        39,
    );
}

#[test]
fn stack_arrays() {
    expect_all_isas(
        "int main() {
            int a[16];
            int i;
            for (i = 0; i < 16; i++) a[i] = i * i;
            int s = 0;
            for (i = 0; i < 16; i++) s += a[i];
            return s;            // sum of squares 0..15 = 1240 → truncated exit
        }",
        1240 & 0xFF | (1240 & 0xFFFFFF00), // exit codes are u32; pass through
    );
}

#[test]
fn recursion_fibonacci() {
    expect_all_isas(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main() { return fib(12); }",
        144,
    );
}

#[test]
fn mutual_recursion() {
    expect_all_isas(
        "int is_odd(int n);
         int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
         int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
         int main() { return is_even(10) * 10 + is_odd(7); }",
        11,
    );
}

#[test]
fn many_arguments_spill_to_stack() {
    expect_all_isas(
        "int sum6(int a, int b, int c, int d, int e, int f) { return a + b + c + d + e + f; }
         int main() { return sum6(1, 2, 3, 4, 5, 6); }",
        21,
    );
}

#[test]
fn globals_are_shared_state() {
    expect_all_isas(
        "int counter = 0;
         void bump() { counter += 1; }
         int main() { int i; for (i = 0; i < 5; i++) bump(); return counter; }",
        5,
    );
}

#[test]
fn register_pressure_spills() {
    // 24 simultaneously live values force spilling on every width.
    let vars: Vec<String> = (0..24).map(|i| format!("int v{i} = {i} + n;")).collect();
    let uses: Vec<String> = (0..24).map(|i| format!("v{i}")).collect();
    let src = format!(
        "int main() {{ int n = 1; {} return ({}) - 300; }}",
        vars.join(" "),
        uses.join(" + ")
    );
    expect_all_isas(&src, 0); // sum(i+1 for 0..24) = 276+24 = 300
}

#[test]
fn libc_output_and_malloc() {
    let src = "
        int main() {
            int* p = malloc(64);
            int i;
            for (i = 0; i < 4; i++) p[i] = i + 10;
            print_int(p[0] + p[3]);
            putchar(10);
            puts(\"done\");
            return p[1];
        }";
    for isa in [IsaKind::Risc, IsaKind::Vliw4] {
        let (code, stdout) = run_isa(src, isa);
        assert_eq!(code, 11, "{}", isa.name());
        assert_eq!(stdout, "23\ndone\n", "{}", isa.name());
    }
}

#[test]
fn logical_operators_short_circuit() {
    expect_all_isas(
        "int calls = 0;
         int bump() { calls += 1; return 1; }
         int main() {
            int a = 0 && bump();        // bump not called
            int b = 1 || bump();        // bump not called
            int c = 1 && bump();        // called
            if (a != 0) return 1;
            if (b != 1) return 2;
            if (c != 1) return 3;
            return calls;
         }",
        1,
    );
}

#[test]
fn mixed_isa_program_runs() {
    // main in VLIW4 calls a RISC helper and a VLIW2 helper.
    let src = "
        int risc_helper(int x) { return x * 3; }
        int v2_helper(int x) { return x + 4; }
        int main() { return v2_helper(risc_helper(12)); }";
    let options = CompileOptions::for_isa(IsaKind::Vliw4)
        .with_function_isa("risc_helper", IsaKind::Risc)
        .with_function_isa("v2_helper", IsaKind::Vliw2);
    let exe = compile_to_executable(src, &options).expect("compile");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    let outcome = sim.run(1_000_000).expect("run");
    assert_eq!(outcome, RunOutcome::Halted { exit_code: 40 });
    assert!(sim.stats().isa_switches >= 4, "switches: {}", sim.stats().isa_switches);
}

#[test]
fn vliw_actually_packs_operations() {
    // A wide independent expression must produce real bundles: on VLIW8 the
    // executed instruction count must be clearly below the RISC count.
    let src = "
        int main() {
            int s = 0;
            int i;
            for (i = 0; i < 100; i++) {
                s += (i ^ 1) + (i ^ 2) + (i ^ 3) + (i ^ 4) + (i ^ 5) + (i ^ 6);
            }
            return s & 255;
        }";
    let count = |isa: IsaKind| -> (u64, u32) {
        let exe = compile_to_executable(src, &CompileOptions::for_isa(isa)).expect("compile");
        let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
        let RunOutcome::Halted { exit_code } = sim.run(10_000_000).expect("run") else {
            panic!("budget");
        };
        (sim.stats().instructions, exit_code)
    };
    let (risc_instrs, risc_code) = count(IsaKind::Risc);
    let (v8_instrs, v8_code) = count(IsaKind::Vliw8);
    assert_eq!(risc_code, v8_code);
    // Left-associative reduction chains bound the packing; still expect a
    // solid instruction-count reduction.
    assert!(
        (v8_instrs as f64) < 0.8 * risc_instrs as f64,
        "VLIW8 executed {v8_instrs} instructions vs RISC {risc_instrs}"
    );
}

#[test]
fn deterministic_rand_and_clock() {
    let src = "
        int main() {
            srand(42);
            int a = rand();
            srand(42);
            int b = rand();
            if (a != b) return 1;
            if (clock() < 1) return 2;
            return 0;
        }";
    expect_all_isas(src, 0);
}
