//! Negative-path tests: every malformed program must produce a diagnostic
//! with the right phase and a plausible line number — never a panic and
//! never silently wrong code (paper §V goal 4 motivates good diagnostics:
//! "during compiler development it frequently happens that malicious code
//! is generated").

use kahrisma_isa::IsaKind;
use kahrisma_kcc::{CompileOptions, compile};

fn err_of(src: &str) -> String {
    compile(src, &CompileOptions::for_isa(IsaKind::Risc))
        .expect_err("must be rejected")
        .to_string()
}

#[test]
fn lexer_diagnostics() {
    assert!(err_of("int main() { return 0; } @").contains("lex"));
    assert!(err_of("int main() { return \"unterminated; }").contains("lex"));
    assert!(err_of("/* never closed").contains("lex"));
}

#[test]
fn parser_diagnostics_carry_lines() {
    let e = err_of("int main() {\n    return 1 +;\n}");
    assert!(e.contains("line 2"), "{e}");
    assert!(e.contains("parse"), "{e}");
    assert!(err_of("int main( { return 0; }").contains("parse"));
    assert!(err_of("int main() { if (1 { return 0; } }").contains("parse"));
    assert!(err_of("int a[3] = {1, 2, 3, 4};").contains("parse"));
}

#[test]
fn sema_diagnostics() {
    for (src, needle) in [
        ("int main() { return missing; }", "unknown variable"),
        ("int main() { return nowhere(); }", "unknown function"),
        ("int main() { int x; int x; return 0; }", "redeclared"),
        ("int main() { return rand(1, 2); }", "expects"),
        ("int f(int* p, int* q) { return p * q; } int main() { return 0; }", "pointer"),
        ("void f() { return 1; } int main() { return 0; }", "void"),
        ("int main() { break; }", "break"),
        ("int main() { continue; }", "continue"),
        ("int x = 1; int x = 2; int main() { return 0; }", "redefined"),
        ("int malloc(int n) { return n; } int main() { return 0; }", "builtin"),
        ("int main() { int y; return &y; }", "address"),
    ] {
        let e = err_of(src);
        assert!(e.contains(needle), "expected `{needle}` in `{e}` for {src}");
    }
}

#[test]
fn codegen_diagnostics() {
    let err = compile(
        "int main() { return 0; }",
        &CompileOptions::for_isa(IsaKind::Risc).with_function_isa("ghost", IsaKind::Vliw2),
    )
    .expect_err("unknown override");
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn large_but_valid_programs_compile() {
    // A stress program: deep expression nesting and many locals must not
    // blow the compiler up on any width.
    let mut src = String::from("int main() { int acc = 1;\n");
    for i in 0..120 {
        src.push_str(&format!("int v{i} = acc + {i}; acc = v{i} ^ (acc << 1);\n"));
    }
    src.push_str("return acc & 255; }\n");
    for isa in [IsaKind::Risc, IsaKind::Vliw8] {
        compile(&src, &CompileOptions::for_isa(isa))
            .unwrap_or_else(|e| panic!("stress compile on {}: {e}", isa.name()));
    }
}

#[test]
fn deeply_nested_control_flow_compiles() {
    let mut src = String::from("int main() { int x = 0;\n");
    for _ in 0..30 {
        src.push_str("if (x < 100) { while (x % 7 != 3) { x++; }\n");
    }
    src.push_str("x += 1;\n");
    for _ in 0..30 {
        src.push_str("}\n");
    }
    src.push_str("return x & 255; }\n");
    compile(&src, &CompileOptions::for_isa(IsaKind::Vliw4)).expect("nested control flow");
}
