//! IR optimizations: constant folding, strength reduction, block-local copy
//! propagation, and dead-code elimination.

use std::collections::HashMap;

use kahrisma_adl::AluOp;

use crate::ir::*;

/// Runs the optimization pipeline on one function to a fixpoint (bounded).
pub(crate) fn optimize(f: &mut IrFunction) {
    for _ in 0..4 {
        let mut changed = false;
        changed |= fold_constants(f);
        changed |= propagate_copies(f);
        changed |= eliminate_dead_code(f);
        if !changed {
            break;
        }
    }
}

fn as_const(op: Operand) -> Option<i32> {
    match op {
        Operand::Const(c) => Some(c),
        Operand::Reg(_) => None,
    }
}

/// Folds constant expressions and strength-reduces multiplications and
/// unsigned divisions by powers of two.
fn fold_constants(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            let new = match inst {
                Inst::Bin { op, dst, a, b } => match (as_const(*a), as_const(*b)) {
                    (Some(x), Some(y)) => {
                        let v = op.eval(x as u32, y as u32) as i32;
                        Some(Inst::Li { dst: *dst, value: v })
                    }
                    (None, Some(y)) => match op {
                        AluOp::Mul if y > 0 && (y as u32).is_power_of_two() => Some(Inst::Bin {
                            op: AluOp::Sll,
                            dst: *dst,
                            a: *a,
                            b: Operand::Const(y.trailing_zeros() as i32),
                        }),
                        AluOp::Divu if y > 0 && (y as u32).is_power_of_two() => Some(Inst::Bin {
                            op: AluOp::Srl,
                            dst: *dst,
                            a: *a,
                            b: Operand::Const(y.trailing_zeros() as i32),
                        }),
                        AluOp::Mul if y == 1 => Some(Inst::Bin {
                            op: AluOp::Add,
                            dst: *dst,
                            a: *a,
                            b: Operand::Const(0),
                        }),
                        _ => None,
                    },
                    (Some(x), None) => match op {
                        // Commute constants right for the immediate forms.
                        AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Mul => {
                            Some(Inst::Bin {
                                op: *op,
                                dst: *dst,
                                a: *b,
                                b: Operand::Const(x),
                            })
                        }
                        _ => None,
                    },
                    _ => None,
                },
                Inst::Cmp { cond, dst, a, b } => match (as_const(*a), as_const(*b)) {
                    (Some(x), Some(y)) => Some(Inst::Li {
                        dst: *dst,
                        value: i32::from(cond.eval(x as u32, y as u32)),
                    }),
                    _ => None,
                },
                Inst::Br { cond, a, b, then_bb, else_bb } => {
                    match (as_const(*a), as_const(*b)) {
                        (Some(x), Some(y)) => {
                            let target =
                                if cond.eval(x as u32, y as u32) { *then_bb } else { *else_bb };
                            Some(Inst::Jmp(target))
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(n) = new {
                *inst = n;
                changed = true;
            }
        }
    }
    changed
}

/// Block-local copy/constant propagation: replaces uses of vregs known to
/// hold a constant or a copy of another operand.
fn propagate_copies(f: &mut IrFunction) -> bool {
    // A vreg may be written in several places (the IR is not SSA); only
    // propagate facts about vregs with exactly one definition, or reset
    // facts at redefinitions within the block (cross-block facts are only
    // kept for single-def vregs).
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    for i in f.insts() {
        if let Some(d) = i.def() {
            *def_count.entry(d).or_insert(0) += 1;
        }
    }
    let mut changed = false;
    // Global facts for single-def vregs.
    let mut global_facts: HashMap<VReg, Operand> = HashMap::new();
    for i in f.insts() {
        if let Some(d) = i.def() {
            if def_count.get(&d) == Some(&1) {
                match i {
                    Inst::Li { value, .. } => {
                        global_facts.insert(d, Operand::Const(*value));
                    }
                    Inst::Bin { op: AluOp::Add, a, b: Operand::Const(0), .. } => {
                        // Copy: only safe when the source is itself
                        // single-def (otherwise its value may differ at the
                        // use site).
                        if let Operand::Reg(src) = a {
                            if def_count.get(src) == Some(&1) {
                                global_facts.insert(d, *a);
                            }
                        } else {
                            global_facts.insert(d, *a);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    let rewrite = |o: &mut Operand, facts: &HashMap<VReg, Operand>, changed: &mut bool| {
        if let Operand::Reg(r) = o {
            if let Some(v) = facts.get(r) {
                *o = *v;
                *changed = true;
            }
        }
    };
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } | Inst::Br { a, b, .. } => {
                    rewrite(a, &global_facts, &mut changed);
                    rewrite(b, &global_facts, &mut changed);
                }
                Inst::Load { base, .. } => rewrite(base, &global_facts, &mut changed),
                Inst::Store { src, base, .. } => {
                    rewrite(src, &global_facts, &mut changed);
                    rewrite(base, &global_facts, &mut changed);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        rewrite(a, &global_facts, &mut changed);
                    }
                }
                Inst::Ret(Some(v)) => rewrite(v, &global_facts, &mut changed),
                _ => {}
            }
        }
    }
    changed
}

/// Removes side-effect-free instructions whose results are never used.
fn eliminate_dead_code(f: &mut IrFunction) -> bool {
    let mut used: HashMap<VReg, u32> = HashMap::new();
    let mut uses_buf = Vec::new();
    for i in f.insts() {
        uses_buf.clear();
        i.uses(&mut uses_buf);
        for &u in &uses_buf {
            *used.entry(u).or_insert(0) += 1;
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        b.insts.retain(|i| {
            let dead = match i {
                Inst::Bin { dst, .. }
                | Inst::Cmp { dst, .. }
                | Inst::Li { dst, .. }
                | Inst::La { dst, .. }
                | Inst::LocalAddr { dst, .. }
                | Inst::Load { dst, .. } => used.get(dst).copied().unwrap_or(0) == 0,
                // Calls, stores and terminators always stay.
                _ => false,
            };
            if dead {
                changed = true;
            }
            !dead
        });
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_adl::CondOp;

    fn func(insts: Vec<Inst>) -> IrFunction {
        let vreg_count = 64;
        IrFunction {
            name: "t".into(),
            params: vec![0],
            blocks: vec![Block { insts }],
            vreg_count,
            stack_arrays: Vec::new(),
            returns_value: true,
        }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = func(vec![
            Inst::Bin { op: AluOp::Add, dst: 1, a: Operand::Const(2), b: Operand::Const(3) },
            Inst::Ret(Some(Operand::Reg(1))),
        ]);
        optimize(&mut f);
        // Fully folded: the constant propagates into the return and the
        // defining instruction becomes dead.
        assert_eq!(f.blocks[0].insts, vec![Inst::Ret(Some(Operand::Const(5)))]);
    }

    #[test]
    fn strength_reduces_mul_by_power_of_two() {
        let mut f = func(vec![
            Inst::Bin { op: AluOp::Mul, dst: 1, a: Operand::Reg(0), b: Operand::Const(8) },
            Inst::Ret(Some(Operand::Reg(1))),
        ]);
        optimize(&mut f);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: AluOp::Sll, b: Operand::Const(3), .. }
        ));
    }

    #[test]
    fn commutes_constant_to_rhs() {
        let mut f = func(vec![
            Inst::Bin { op: AluOp::Add, dst: 1, a: Operand::Const(5), b: Operand::Reg(0) },
            Inst::Ret(Some(Operand::Reg(1))),
        ]);
        optimize(&mut f);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: AluOp::Add, a: Operand::Reg(0), b: Operand::Const(5), .. }
        ));
    }

    #[test]
    fn propagates_single_def_constants() {
        let mut f = func(vec![
            Inst::Li { dst: 1, value: 7 },
            Inst::Bin { op: AluOp::Add, dst: 2, a: Operand::Reg(0), b: Operand::Reg(1) },
            Inst::Ret(Some(Operand::Reg(2))),
        ]);
        optimize(&mut f);
        // r1's constant is propagated and the Li becomes dead.
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: AluOp::Add, a: Operand::Reg(0), b: Operand::Const(7), .. }
        ));
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn does_not_propagate_multi_def() {
        let mut f = func(vec![
            Inst::Li { dst: 1, value: 7 },
            Inst::Bin { op: AluOp::Add, dst: 2, a: Operand::Reg(0), b: Operand::Reg(1) },
            Inst::Li { dst: 1, value: 9 }, // second def of r1
            Inst::Bin { op: AluOp::Add, dst: 3, a: Operand::Reg(2), b: Operand::Reg(1) },
            Inst::Ret(Some(Operand::Reg(3))),
        ]);
        optimize(&mut f);
        // r1 is multi-def: both adds must keep reading the register.
        for i in f.insts() {
            if let Inst::Bin { b, .. } = i {
                assert_eq!(*b, Operand::Reg(1));
            }
        }
    }

    #[test]
    fn removes_dead_pure_code_keeps_effects() {
        let mut f = func(vec![
            Inst::Li { dst: 5, value: 1 }, // dead
            Inst::Load { dst: 6, base: Operand::Reg(0), offset: 0 }, // dead load: removable
            Inst::Store { src: Operand::Const(1), base: Operand::Reg(0), offset: 0 }, // effect
            Inst::Call { dst: Some(7), func: "rand".into(), args: vec![] }, // dead dst, call stays
            Inst::Ret(Some(Operand::Const(0))),
        ]);
        optimize(&mut f);
        let kinds: Vec<_> = f.blocks[0].insts.iter().collect();
        assert_eq!(kinds.len(), 3);
        assert!(matches!(kinds[0], Inst::Store { .. }));
        assert!(matches!(kinds[1], Inst::Call { .. }));
    }

    #[test]
    fn folds_constant_branches() {
        let mut f = IrFunction {
            name: "t".into(),
            params: vec![],
            blocks: vec![
                Block {
                    insts: vec![Inst::Br {
                        cond: CondOp::Lt,
                        a: Operand::Const(1),
                        b: Operand::Const(2),
                        then_bb: 1,
                        else_bb: 2,
                    }],
                },
                Block { insts: vec![Inst::Ret(Some(Operand::Const(1)))] },
                Block { insts: vec![Inst::Ret(Some(Operand::Const(0)))] },
            ],
            vreg_count: 0,
            stack_arrays: Vec::new(),
            returns_value: true,
        };
        optimize(&mut f);
        assert_eq!(f.blocks[0].insts[0], Inst::Jmp(1));
    }
}
