//! Machine-level representation: physical registers, resolved frame
//! offsets, and label-based control flow — the input of the VLIW scheduler
//! and the assembly emitter.

use kahrisma_adl::{AluOp, CondOp};

/// A machine operation over physical registers.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MOp {
    /// `op rd, rs1, rs2`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// `opi rd, rs1, imm` — the immediate fits the encoding by construction.
    AluImm { op: AluOp, rd: u8, rs1: u8, imm: i32 },
    /// `lui rd, hi` (upper 19 bits of a 32-bit constant).
    LuiConst { rd: u8, hi: u32 },
    /// `ori rd, rs1, lo` (low 13 bits of a 32-bit constant).
    OriConst { rd: u8, rs1: u8, lo: u32 },
    /// `lui rd, %hi(symbol)`.
    LuiSym { rd: u8, symbol: String },
    /// `ori rd, rs1, %lo(symbol)`.
    OriSym { rd: u8, rs1: u8, symbol: String },
    /// `lw rd, off(base)`.
    Load { rd: u8, base: u8, off: i32 },
    /// `sw rs, off(base)`.
    Store { rs: u8, base: u8, off: i32 },
    /// Conditional branch to a local label.
    Br { cond: CondOp, rs1: u8, rs2: u8, label: String },
    /// Unconditional jump to a local label.
    Jmp { label: String },
    /// Call to a function symbol (expanded to the cross-ISA sequence by the
    /// emitter when the callee's ISA differs).
    Call { func: String },
    /// Return (`jr ra`).
    Ret,
}

impl MOp {
    /// Physical registers read by the operation.
    pub(crate) fn reads(&self) -> Vec<u8> {
        match self {
            MOp::Alu { rs1, rs2, .. } => vec![*rs1, *rs2],
            MOp::AluImm { rs1, .. }
            | MOp::OriConst { rs1, .. }
            | MOp::OriSym { rs1, .. } => vec![*rs1],
            MOp::Load { base, .. } => vec![*base],
            MOp::Store { rs, base, .. } => vec![*rs, *base],
            MOp::Br { rs1, rs2, .. } => vec![*rs1, *rs2],
            MOp::Ret => vec![kahrisma_isa::abi::RA],
            // Calls read the argument registers and sp; they are scheduling
            // barriers anyway, so the exact set is immaterial.
            MOp::Call { .. } => vec![],
            _ => vec![],
        }
    }

    /// Physical register written by the operation, if any.
    pub(crate) fn writes(&self) -> Option<u8> {
        match self {
            MOp::Alu { rd, .. }
            | MOp::AluImm { rd, .. }
            | MOp::LuiConst { rd, .. }
            | MOp::OriConst { rd, .. }
            | MOp::LuiSym { rd, .. }
            | MOp::OriSym { rd, .. }
            | MOp::Load { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Whether the operation accesses data memory, and whether it stores.
    pub(crate) fn mem_access(&self) -> Option<bool> {
        match self {
            MOp::Load { .. } => Some(false),
            MOp::Store { .. } => Some(true),
            _ => None,
        }
    }

    /// Whether the operation is a scheduling barrier (control transfer or
    /// call): nothing may move across it.
    pub(crate) fn is_barrier(&self) -> bool {
        matches!(self, MOp::Br { .. } | MOp::Jmp { .. } | MOp::Call { .. } | MOp::Ret)
    }

    /// Latency assumed by the scheduler (L1-hit latency for loads).
    pub(crate) fn latency(&self) -> u32 {
        match self {
            MOp::Alu { op, .. } | MOp::AluImm { op, .. } => match op {
                AluOp::Mul | AluOp::Mulh | AluOp::Mulhu => kahrisma_isa::ops::MUL_DELAY,
                AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
                    kahrisma_isa::ops::DIV_DELAY
                }
                _ => 1,
            },
            MOp::Load { .. } => 3,
            _ => 1,
        }
    }
}

/// A machine basic block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MBlock {
    /// Local label of the block.
    pub label: String,
    pub ops: Vec<MOp>,
}

/// A machine function, ready for scheduling and emission.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MFunc {
    pub name: String,
    pub blocks: Vec<MBlock>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_writes_classification() {
        let add = MOp::Alu { op: AluOp::Add, rd: 8, rs1: 9, rs2: 10 };
        assert_eq!(add.reads(), vec![9, 10]);
        assert_eq!(add.writes(), Some(8));
        assert_eq!(add.latency(), 1);

        let mul = MOp::Alu { op: AluOp::Mul, rd: 8, rs1: 9, rs2: 10 };
        assert_eq!(mul.latency(), kahrisma_isa::ops::MUL_DELAY);

        let lw = MOp::Load { rd: 8, base: 29, off: 4 };
        assert_eq!(lw.mem_access(), Some(false));
        assert_eq!(lw.latency(), 3);

        let sw = MOp::Store { rs: 8, base: 29, off: 4 };
        assert_eq!(sw.mem_access(), Some(true));
        assert_eq!(sw.writes(), None);

        assert!(MOp::Call { func: "f".into() }.is_barrier());
        assert!(MOp::Ret.is_barrier());
        assert!(!add.is_barrier());
        assert_eq!(MOp::Ret.reads(), vec![31]);
    }
}
