//! Lowering from the typed AST to IR.

use std::collections::HashMap;

use kahrisma_adl::{AluOp, CondOp};

use crate::ast::{BinOp, UnOp};
use crate::error::{CompileError, Phase};
use crate::ir::*;
use crate::sema::{TExpr, TExprKind, TFunc, TLval, TProgram, TStmt};

struct LoopCtx {
    break_bb: BlockId,
    continue_bb: BlockId,
}

struct Lowerer<'a> {
    f: IrFunction,
    current: BlockId,
    vars: HashMap<String, VReg>,
    loops: Vec<LoopCtx>,
    strings: &'a mut Vec<(String, String)>,
    string_ids: &'a mut HashMap<String, String>,
    unit: &'a str,
}

fn err(msg: impl Into<String>) -> CompileError {
    CompileError::new(Phase::Lower, 0, msg)
}

impl<'a> Lowerer<'a> {
    fn vreg(&mut self) -> VReg {
        let r = self.f.vreg_count;
        self.f.vreg_count += 1;
        r
    }

    fn new_block(&mut self) -> BlockId {
        self.f.blocks.push(Block::default());
        self.f.blocks.len() - 1
    }

    fn emit(&mut self, inst: Inst) {
        let b = &mut self.f.blocks[self.current];
        // Dead code after a terminator (e.g. statements after `return`) is
        // silently dropped.
        if !b.is_terminated() {
            b.insts.push(inst);
        }
    }

    fn switch_to(&mut self, bb: BlockId) {
        self.current = bb;
    }

    fn terminate_with_jmp(&mut self, target: BlockId) {
        self.emit(Inst::Jmp(target));
    }

    fn string_label(&mut self, s: &str) -> String {
        if let Some(l) = self.string_ids.get(s) {
            return l.clone();
        }
        let label = format!(".str.{}.{}", self.unit, self.strings.len());
        self.strings.push((label.clone(), s.to_string()));
        self.string_ids.insert(s.to_string(), label.clone());
        label
    }

    fn var(&mut self, name: &str) -> VReg {
        if let Some(&r) = self.vars.get(name) {
            return r;
        }
        let r = self.vreg();
        self.vars.insert(name.to_string(), r);
        r
    }

    /// Lowers an expression into an operand (constants stay immediate).
    fn expr(&mut self, e: &TExpr) -> Result<Operand, CompileError> {
        match &e.kind {
            TExprKind::Int(v) => Ok(Operand::Const(*v)),
            TExprKind::Str(s) => {
                let label = self.string_label(s);
                let dst = self.vreg();
                self.emit(Inst::La { dst, symbol: label });
                Ok(Operand::Reg(dst))
            }
            TExprKind::Local(name) => Ok(Operand::Reg(self.var(name))),
            TExprKind::GlobalAddr(name) => {
                let dst = self.vreg();
                self.emit(Inst::La { dst, symbol: name.clone() });
                Ok(Operand::Reg(dst))
            }
            TExprKind::LocalArrayAddr(name) => {
                let slot = self
                    .vars
                    .get(format!("$array${name}").as_str())
                    .copied()
                    .ok_or_else(|| err(format!("unknown stack array `{name}`")))?;
                let dst = self.vreg();
                self.emit(Inst::LocalAddr { dst, slot });
                Ok(Operand::Reg(dst))
            }
            TExprKind::Load(addr) => {
                let (base, offset) = self.addr_with_offset(addr)?;
                let dst = self.vreg();
                self.emit(Inst::Load { dst, base, offset });
                Ok(Operand::Reg(dst))
            }
            TExprKind::Unary(op, inner) => {
                let v = self.expr(inner)?;
                let dst = self.vreg();
                match op {
                    UnOp::Neg => self.emit(Inst::Bin {
                        op: AluOp::Sub,
                        dst,
                        a: Operand::Const(0),
                        b: v,
                    }),
                    UnOp::Not => self.emit(Inst::Bin {
                        op: AluOp::Xor,
                        dst,
                        a: v,
                        b: Operand::Const(-1),
                    }),
                    UnOp::LNot => self.emit(Inst::Cmp {
                        cond: CondOp::Eq,
                        dst,
                        a: v,
                        b: Operand::Const(0),
                    }),
                }
                Ok(Operand::Reg(dst))
            }
            TExprKind::Binary(op, lhs, rhs) => self.binary_value(*op, lhs, rhs, e),
            TExprKind::Call(func, args) => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let dst = self.vreg();
                self.emit(Inst::Call { dst: Some(dst), func: func.clone(), args: ops });
                Ok(Operand::Reg(dst))
            }
        }
    }

    /// Splits an address expression into `(base, constant_offset)` so simple
    /// `p[2]` accesses fold into the load/store offset field.
    fn addr_with_offset(&mut self, addr: &TExpr) -> Result<(Operand, i32), CompileError> {
        if let TExprKind::Binary(BinOp::Add, a, b) = &addr.kind {
            if let TExprKind::Binary(BinOp::Mul, idx, four) = &b.kind {
                if let (TExprKind::Int(i), TExprKind::Int(4)) = (&idx.kind, &four.kind) {
                    let off = i.checked_mul(4).filter(|o| (-4096..4096).contains(o));
                    if let Some(off) = off {
                        let base = self.expr(a)?;
                        return Ok((base, off));
                    }
                }
            }
        }
        Ok((self.expr(addr)?, 0))
    }

    /// Lowers a binary expression producing a value.
    fn binary_value(
        &mut self,
        op: BinOp,
        lhs: &TExpr,
        rhs: &TExpr,
        whole: &TExpr,
    ) -> Result<Operand, CompileError> {
        if op.is_logical() {
            // Short-circuit evaluation producing 0/1.
            let dst = self.vreg();
            let rhs_bb = self.new_block();
            let short_bb = self.new_block();
            let join_bb = self.new_block();
            let l = self.expr(lhs)?;
            let (then_bb, else_bb, short_val) = match op {
                BinOp::LAnd => (rhs_bb, short_bb, 0),
                BinOp::LOr => (short_bb, rhs_bb, 1),
                _ => unreachable!("logical op"),
            };
            self.emit(Inst::Br { cond: CondOp::Ne, a: l, b: Operand::Const(0), then_bb, else_bb });
            self.switch_to(short_bb);
            self.emit(Inst::Li { dst, value: short_val });
            self.terminate_with_jmp(join_bb);
            self.switch_to(rhs_bb);
            let r = self.expr(rhs)?;
            self.emit(Inst::Cmp { cond: CondOp::Ne, dst, a: r, b: Operand::Const(0) });
            self.terminate_with_jmp(join_bb);
            self.switch_to(join_bb);
            return Ok(Operand::Reg(dst));
        }

        let unsigned = lhs.ty.is_unsigned() || rhs.ty.is_unsigned();
        if op.is_comparison() {
            let a = self.expr(lhs)?;
            let b = self.expr(rhs)?;
            let dst = self.vreg();
            let cond = comparison_cond(op, unsigned);
            // Gt/Le are encoded by swapping operands of Lt/Ge at this level.
            let (a, b) = if matches!(op, BinOp::Gt | BinOp::Le) { (b, a) } else { (a, b) };
            self.emit(Inst::Cmp { cond, dst, a, b });
            return Ok(Operand::Reg(dst));
        }

        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => {
                if unsigned {
                    AluOp::Divu
                } else {
                    AluOp::Div
                }
            }
            BinOp::Mod => {
                if unsigned {
                    AluOp::Remu
                } else {
                    AluOp::Rem
                }
            }
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Sll,
            BinOp::Shr => {
                if whole.ty.is_unsigned() || lhs.ty.is_unsigned() {
                    AluOp::Srl
                } else {
                    AluOp::Sra
                }
            }
            _ => unreachable!("handled above"),
        };
        let a = self.expr(lhs)?;
        let b = self.expr(rhs)?;
        let dst = self.vreg();
        self.emit(Inst::Bin { op: alu, dst, a, b });
        Ok(Operand::Reg(dst))
    }

    /// Lowers a condition with direct branch fusion.
    fn cond_branch(
        &mut self,
        cond: &TExpr,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> Result<(), CompileError> {
        match &cond.kind {
            TExprKind::Binary(op, lhs, rhs) if op.is_comparison() => {
                let unsigned = lhs.ty.is_unsigned() || rhs.ty.is_unsigned();
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                let c = comparison_cond(*op, unsigned);
                let (a, b) = if matches!(op, BinOp::Gt | BinOp::Le) { (b, a) } else { (a, b) };
                self.emit(Inst::Br { cond: c, a, b, then_bb, else_bb });
                Ok(())
            }
            TExprKind::Binary(BinOp::LAnd, lhs, rhs) => {
                let mid = self.new_block();
                self.cond_branch(lhs, mid, else_bb)?;
                self.switch_to(mid);
                self.cond_branch(rhs, then_bb, else_bb)
            }
            TExprKind::Binary(BinOp::LOr, lhs, rhs) => {
                let mid = self.new_block();
                self.cond_branch(lhs, then_bb, mid)?;
                self.switch_to(mid);
                self.cond_branch(rhs, then_bb, else_bb)
            }
            TExprKind::Unary(UnOp::LNot, inner) => self.cond_branch(inner, else_bb, then_bb),
            _ => {
                let v = self.expr(cond)?;
                self.emit(Inst::Br {
                    cond: CondOp::Ne,
                    a: v,
                    b: Operand::Const(0),
                    then_bb,
                    else_bb,
                });
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &TLval, value: &TExpr) -> Result<(), CompileError> {
        match target {
            TLval::Local(name) => {
                let v = self.expr(value)?;
                let dst = self.var(name);
                match v {
                    Operand::Const(c) => self.emit(Inst::Li { dst, value: c }),
                    Operand::Reg(r) => self.emit(Inst::Bin {
                        op: AluOp::Add,
                        dst,
                        a: Operand::Reg(r),
                        b: Operand::Const(0),
                    }),
                }
                Ok(())
            }
            TLval::Mem(addr) => {
                let (base, offset) = self.addr_with_offset(addr)?;
                let v = self.expr(value)?;
                self.emit(Inst::Store { src: v, base, offset });
                Ok(())
            }
        }
    }

    fn stmts(&mut self, body: &[TStmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &TStmt) -> Result<(), CompileError> {
        match s {
            TStmt::DeclScalar { name, init } => {
                if let Some(e) = init {
                    self.assign(&TLval::Local(name.clone()), e)?;
                } else {
                    let dst = self.var(name);
                    self.emit(Inst::Li { dst, value: 0 });
                }
                Ok(())
            }
            TStmt::DeclArray { name, words } => {
                let slot = self.f.stack_arrays.len() as u32;
                self.f.stack_arrays.push(*words);
                // Remember the slot id under a reserved key.
                let key = format!("$array${name}");
                self.vars.insert(key, slot);
                Ok(())
            }
            TStmt::Assign { target, value } => self.assign(target, value),
            TStmt::Expr(e) => {
                // Evaluate for side effects; drop pure values.
                if let TExprKind::Call(func, args) = &e.kind {
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        ops.push(self.expr(a)?);
                    }
                    self.emit(Inst::Call { dst: None, func: func.clone(), args: ops });
                } else {
                    let _ = self.expr(e)?;
                }
                Ok(())
            }
            TStmt::If { cond, then_body, else_body } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.cond_branch(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.stmts(then_body)?;
                self.terminate_with_jmp(join_bb);
                self.switch_to(else_bb);
                self.stmts(else_body)?;
                self.terminate_with_jmp(join_bb);
                self.switch_to(join_bb);
                Ok(())
            }
            TStmt::While { cond, body } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate_with_jmp(head);
                self.switch_to(head);
                self.cond_branch(cond, body_bb, exit)?;
                self.loops.push(LoopCtx { break_bb: exit, continue_bb: head });
                self.switch_to(body_bb);
                self.stmts(body)?;
                self.terminate_with_jmp(head);
                self.loops.pop();
                self.switch_to(exit);
                Ok(())
            }
            TStmt::For { step, cond, body } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate_with_jmp(head);
                self.switch_to(head);
                match cond {
                    Some(c) => self.cond_branch(c, body_bb, exit)?,
                    None => self.terminate_with_jmp(body_bb),
                }
                self.loops.push(LoopCtx { break_bb: exit, continue_bb: step_bb });
                self.switch_to(body_bb);
                self.stmts(body)?;
                self.terminate_with_jmp(step_bb);
                self.loops.pop();
                self.switch_to(step_bb);
                self.stmts(step)?;
                self.terminate_with_jmp(head);
                self.switch_to(exit);
                Ok(())
            }
            TStmt::Return(value) => {
                let v = value.as_ref().map(|e| self.expr(e)).transpose()?;
                self.emit(Inst::Ret(v));
                Ok(())
            }
            TStmt::Break => {
                let bb = self.loops.last().ok_or_else(|| err("break outside loop"))?.break_bb;
                self.terminate_with_jmp(bb);
                Ok(())
            }
            TStmt::Continue => {
                let bb =
                    self.loops.last().ok_or_else(|| err("continue outside loop"))?.continue_bb;
                self.terminate_with_jmp(bb);
                Ok(())
            }
        }
    }
}

fn comparison_cond(op: BinOp, unsigned: bool) -> CondOp {
    match (op, unsigned) {
        (BinOp::Eq, _) => CondOp::Eq,
        (BinOp::Ne, _) => CondOp::Ne,
        (BinOp::Lt | BinOp::Gt, false) => CondOp::Lt,
        (BinOp::Lt | BinOp::Gt, true) => CondOp::Ltu,
        (BinOp::Ge | BinOp::Le, false) => CondOp::Ge,
        (BinOp::Ge | BinOp::Le, true) => CondOp::Geu,
        _ => unreachable!("not a comparison"),
    }
}

/// Lowers a typed program to IR.
pub(crate) fn lower(program: &TProgram) -> Result<IrProgram, CompileError> {
    let mut out = IrProgram {
        globals: program.globals.clone(),
        strings: Vec::new(),
        functions: Vec::new(),
    };
    let mut string_ids = HashMap::new();
    for f in &program.functions {
        out.functions.push(lower_function(f, &mut out.strings, &mut string_ids)?);
    }
    Ok(out)
}

fn lower_function(
    f: &TFunc,
    strings: &mut Vec<(String, String)>,
    string_ids: &mut HashMap<String, String>,
) -> Result<IrFunction, CompileError> {
    let mut l = Lowerer {
        f: IrFunction {
            name: f.name.clone(),
            params: Vec::new(),
            blocks: vec![Block::default()],
            vreg_count: 0,
            stack_arrays: Vec::new(),
            returns_value: f.ret != crate::ast::Type::Void,
        },
        current: 0,
        vars: HashMap::new(),
        loops: Vec::new(),
        strings,
        string_ids,
        unit: "u",
    };
    for (pname, _) in &f.params {
        let r = l.var(pname);
        l.f.params.push(r);
    }
    l.stmts(&f.body)?;
    // Implicit return at the end of the function.
    if !l.f.blocks[l.current].is_terminated() {
        let v = if l.f.returns_value { Some(Operand::Const(0)) } else { None };
        l.emit(Inst::Ret(v));
    }
    // Terminate any stray unterminated blocks (unreachable joins).
    for b in &mut l.f.blocks {
        if !b.is_terminated() {
            b.insts.push(Inst::Ret(if l.f.returns_value {
                Some(Operand::Const(0))
            } else {
                None
            }));
        }
    }
    Ok(l.f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> IrProgram {
        lower(&check(&parse(&lex(src).unwrap()).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn lowers_arithmetic() {
        let p = lower_src("int f(int a, int b) { return a + b * 2; }");
        let f = &p.functions[0];
        assert!(f.insts().any(|i| matches!(i, Inst::Bin { op: AluOp::Mul, .. })));
        assert!(f.insts().any(|i| matches!(i, Inst::Bin { op: AluOp::Add, .. })));
        assert!(f.insts().any(|i| matches!(i, Inst::Ret(Some(_)))));
    }

    #[test]
    fn while_loop_structure() {
        let p = lower_src("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        let f = &p.functions[0];
        // head block must end with a conditional branch.
        assert!(f.insts().any(|i| matches!(i, Inst::Br { cond: CondOp::Lt, .. })));
        assert!(f.blocks.iter().all(Block::is_terminated));
    }

    #[test]
    fn loads_fold_constant_offsets() {
        let p = lower_src("int f(int* p) { return p[3]; }");
        let f = &p.functions[0];
        assert!(
            f.insts().any(|i| matches!(i, Inst::Load { offset: 12, .. })),
            "{:?}",
            f.blocks
        );
    }

    #[test]
    fn variable_index_is_computed() {
        let p = lower_src("int f(int* p, int i) { return p[i]; }");
        let f = &p.functions[0];
        // i*4 must appear as a multiply (later strength-reduced by opt).
        assert!(f.insts().any(|i| matches!(i, Inst::Bin { op: AluOp::Mul, .. })));
        assert!(f.insts().any(|i| matches!(i, Inst::Load { offset: 0, .. })));
    }

    #[test]
    fn strings_are_interned() {
        let p = lower_src("void f() { puts(\"x\"); puts(\"x\"); puts(\"y\"); }");
        assert_eq!(p.strings.len(), 2);
    }

    #[test]
    fn stack_arrays_get_slots() {
        let p = lower_src("int f() { int a[8]; int b[4]; a[0] = 1; return b[0] + a[0]; }");
        let f = &p.functions[0];
        assert_eq!(f.stack_arrays, vec![8, 4]);
        assert!(f.insts().any(|i| matches!(i, Inst::LocalAddr { slot: 0, .. })));
        assert!(f.insts().any(|i| matches!(i, Inst::LocalAddr { slot: 1, .. })));
    }

    #[test]
    fn short_circuit_produces_branches() {
        let p = lower_src("int f(int a, int b) { if (a && b) return 1; return 0; }");
        let f = &p.functions[0];
        let branches = f.insts().filter(|i| matches!(i, Inst::Br { .. })).count();
        assert!(branches >= 2, "expected 2+ branches, got {branches}");
    }

    #[test]
    fn logical_value_materializes() {
        let p = lower_src("int f(int a, int b) { int c = a || b; return c; }");
        let f = &p.functions[0];
        assert!(f.insts().any(|i| matches!(i, Inst::Cmp { cond: CondOp::Ne, .. })));
    }

    #[test]
    fn break_and_continue_target_right_blocks() {
        let p = lower_src(
            "int f(int n) { int i; int s = 0; for (i = 0; i < n; i++) { if (i == 2) continue; if (i == 5) break; s += i; } return s; }",
        );
        let f = &p.functions[0];
        assert!(f.blocks.iter().all(Block::is_terminated));
        // All jump targets are valid blocks.
        for i in f.insts() {
            for s in i.successors() {
                assert!(s < f.blocks.len());
            }
        }
    }

    #[test]
    fn implicit_return_added() {
        let p = lower_src("void f(int n) { if (n) putchar(65); }");
        let f = &p.functions[0];
        assert!(f.blocks.iter().all(Block::is_terminated));
        assert!(f.insts().any(|i| matches!(i, Inst::Ret(None))));
    }

    #[test]
    fn calls_lower_with_args() {
        let p = lower_src("int g(int x) { return x; } int f() { return g(7); }");
        let f = p.functions.iter().find(|f| f.name == "f").unwrap();
        assert!(f.insts().any(
            |i| matches!(i, Inst::Call { func, args, dst: Some(_) } if func == "g" && args.len() == 1)
        ));
    }
}
