//! Assembly emission: machine code → mixed-ISA KAHRISMA assembly text.

use std::collections::HashMap;
use std::fmt::Write as _;

use kahrisma_adl::{AluOp, CondOp};
use kahrisma_isa::IsaKind;

use crate::CompileOptions;
use crate::error::{CompileError, Phase};
use crate::ir::IrProgram;
use crate::machine::MOp;
use crate::regalloc::allocate;
use crate::sched::schedule;
use crate::sema::BUILTINS;

fn reg(r: u8) -> String {
    format!("r{r}")
}

fn alu_mnemonic(op: AluOp) -> &'static str {
    // Register-register mnemonics match `AluOp`'s display names.
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Nor => "nor",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn alu_imm_mnemonic(op: AluOp) -> Option<&'static str> {
    Some(match op {
        AluOp::Add => "addi",
        AluOp::Slt => "slti",
        AluOp::Sltu => "sltiu",
        AluOp::And => "andi",
        AluOp::Or => "ori",
        AluOp::Xor => "xori",
        AluOp::Sll => "slli",
        AluOp::Srl => "srli",
        AluOp::Sra => "srai",
        _ => return None,
    })
}

fn cond_mnemonic(c: CondOp) -> &'static str {
    match c {
        CondOp::Eq => "beq",
        CondOp::Ne => "bne",
        CondOp::Lt => "blt",
        CondOp::Ge => "bge",
        CondOp::Ltu => "bltu",
        CondOp::Geu => "bgeu",
    }
}

struct FuncEmitter<'a> {
    out: &'a mut String,
    current_isa: IsaKind,
    callee_isa: &'a dyn Fn(&str) -> IsaKind,
}

impl FuncEmitter<'_> {
    /// Formats a single non-call machine op as assembly text.
    fn op_text(op: &MOp) -> String {
        match op {
            MOp::Alu { op, rd, rs1, rs2 } => {
                format!("{} {}, {}, {}", alu_mnemonic(*op), reg(*rd), reg(*rs1), reg(*rs2))
            }
            MOp::AluImm { op, rd, rs1, imm } => {
                let m = alu_imm_mnemonic(*op).expect("imm form exists by construction");
                format!("{m} {}, {}, {imm}", reg(*rd), reg(*rs1))
            }
            MOp::LuiConst { rd, hi } => format!("lui {}, {hi}", reg(*rd)),
            MOp::OriConst { rd, rs1, lo } => format!("ori {}, {}, {lo}", reg(*rd), reg(*rs1)),
            MOp::LuiSym { rd, symbol } => format!("lui {}, %hi({symbol})", reg(*rd)),
            MOp::OriSym { rd, rs1, symbol } => {
                format!("ori {}, {}, %lo({symbol})", reg(*rd), reg(*rs1))
            }
            MOp::Load { rd, base, off } => format!("lw {}, {off}({})", reg(*rd), reg(*base)),
            MOp::Store { rs, base, off } => format!("sw {}, {off}({})", reg(*rs), reg(*base)),
            MOp::Br { cond, rs1, rs2, label } => {
                format!("{} {}, {}, {label}", cond_mnemonic(*cond), reg(*rs1), reg(*rs2))
            }
            MOp::Jmp { label } => format!("b {label}"),
            MOp::Ret => "jr ra".to_string(),
            MOp::Call { .. } => unreachable!("calls are emitted as sequences"),
        }
    }

    fn emit_bundle(&mut self, ops: &[MOp]) {
        // Calls expand into their (possibly cross-ISA) sequence.
        if let [MOp::Call { func }] = ops {
            let callee = (self.callee_isa)(func);
            if callee != self.current_isa {
                // Cross-ISA call (paper §V-D): switch, call in the callee's
                // ISA, and switch back — the switch-back is encoded in the
                // callee's ISA because control returns in that ISA.
                let _ = writeln!(self.out, "    switchtarget {}", callee.name());
                let _ = writeln!(self.out, "    .isa {}", callee.name());
                let _ = writeln!(self.out, "    jal {func}");
                let _ = writeln!(self.out, "    switchtarget {}", self.current_isa.name());
                let _ = writeln!(self.out, "    .isa {}", self.current_isa.name());
            } else {
                let _ = writeln!(self.out, "    jal {func}");
            }
            return;
        }
        match ops {
            [single] => {
                let _ = writeln!(self.out, "    {}", Self::op_text(single));
            }
            many => {
                let parts: Vec<String> = many.iter().map(Self::op_text).collect();
                let _ = writeln!(self.out, "    {{ {} }}", parts.join(" | "));
            }
        }
    }
}

fn escape_asm_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\0' => out.push_str("\\0"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out
}

/// Emits the complete assembly unit for an IR program.
pub(crate) fn emit(ir: &IrProgram, options: &CompileOptions) -> Result<String, CompileError> {
    // Resolve each callee's ISA: user functions take the default or their
    // override; builtins (the generated C-library stubs) are RISC.
    let mut func_isa: HashMap<String, IsaKind> = HashMap::new();
    for f in &ir.functions {
        let isa = options.function_isa.get(&f.name).copied().unwrap_or(options.isa);
        func_isa.insert(f.name.clone(), isa);
    }
    for name in options.function_isa.keys() {
        if !func_isa.contains_key(name) {
            return Err(CompileError::new(
                Phase::Codegen,
                0,
                format!("ISA override for unknown function `{name}`"),
            ));
        }
    }
    let default_isa = options.isa;
    let callee_isa = |name: &str| -> IsaKind {
        if let Some(&isa) = func_isa.get(name) {
            return isa;
        }
        if BUILTINS.iter().any(|(n, _, _)| *n == name) {
            return IsaKind::Risc; // C-library stubs are generated in RISC (§V-E)
        }
        // Externals declared by prototype: separate compilation assumes a
        // consistent target ISA across units (documented convention).
        default_isa
    };

    let mut out = String::new();
    let _ = writeln!(out, "; generated by kcc (KAHRISMA retargetable compiler)");

    // Text section: every function scheduled for its ISA.
    let _ = writeln!(out, ".text");
    for f in &ir.functions {
        let isa = func_isa[&f.name];
        let m = allocate(f);
        let _ = writeln!(out, "\n.isa {}", isa.name());
        let _ = writeln!(out, ".global {}", f.name);
        let _ = writeln!(out, ".func {}", f.name);
        let _ = writeln!(out, "{}:", f.name);
        let mut fe = FuncEmitter { out: &mut out, current_isa: isa, callee_isa: &callee_isa };
        for (bi, block) in m.blocks.iter().enumerate() {
            if bi > 0 {
                let _ = writeln!(fe.out, "{}:", block.label);
            }
            for bundle in schedule(&block.ops, isa.width()) {
                fe.emit_bundle(&bundle);
            }
        }
        let _ = writeln!(out, ".endfunc");
    }

    // Data sections.
    let zero_init: Vec<_> = ir.globals.iter().filter(|g| g.init.is_empty()).collect();
    let init: Vec<_> = ir.globals.iter().filter(|g| !g.init.is_empty()).collect();
    if !init.is_empty() {
        let _ = writeln!(out, "\n.data");
        for g in init {
            let words = g.array.unwrap_or(1);
            let _ = writeln!(out, ".global {}", g.name);
            let values: Vec<String> = g.init.iter().map(|v| (*v as i32).to_string()).collect();
            let _ = writeln!(out, "{}: .word {}", g.name, values.join(", "));
            let remaining = words.saturating_sub(g.init.len() as u32);
            if remaining > 0 {
                let _ = writeln!(out, "    .space {}", remaining * 4);
            }
        }
    }
    if !zero_init.is_empty() {
        let _ = writeln!(out, "\n.bss");
        for g in zero_init {
            let words = g.array.unwrap_or(1);
            let _ = writeln!(out, ".global {}", g.name);
            let _ = writeln!(out, "{}: .space {}", g.name, words * 4);
        }
    }
    if !ir.strings.is_empty() {
        let _ = writeln!(out, "\n.rodata");
        for (label, s) in &ir.strings {
            let _ = writeln!(out, "{label}: .asciz \"{}\"", escape_asm_string(s));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn compile_for(src: &str, isa: IsaKind) -> String {
        compile(src, &CompileOptions::for_isa(isa)).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn emits_assemblable_risc() {
        let asm = compile_for(
            "int tab[3] = {1,2,3};
             int zeroes[8];
             int sum(int* p, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += p[i]; return s; }
             int main() { puts(\"go\"); return sum(tab, 3); }",
            IsaKind::Risc,
        );
        assert!(asm.contains(".isa risc"));
        assert!(asm.contains(".func sum"));
        assert!(asm.contains(".bss"));
        assert!(asm.contains(".rodata"));
        // Must assemble cleanly.
        kahrisma_asm::assemble("t.s", &asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
    }

    #[test]
    fn emits_bundles_for_vliw() {
        let asm = compile_for(
            "int f(int a, int b, int c, int d) { return (a + b) * (c - d) + (a ^ c); }",
            IsaKind::Vliw4,
        );
        assert!(asm.contains(".isa vliw4"));
        assert!(asm.contains(" | "), "expected at least one multi-op bundle:\n{asm}");
        kahrisma_asm::assemble("t.s", &asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
    }

    #[test]
    fn cross_isa_call_sequence() {
        let asm = compile(
            "int helper(int x) { return x + 1; } int main() { return helper(41); }",
            &CompileOptions::for_isa(IsaKind::Vliw2).with_function_isa("helper", IsaKind::Risc),
        )
        .unwrap();
        assert!(asm.contains("switchtarget risc"));
        assert!(asm.contains("switchtarget vliw2"));
        kahrisma_asm::assemble("t.s", &asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
    }

    #[test]
    fn libc_calls_from_vliw_switch_to_risc() {
        let asm = compile_for("int main() { putchar(65); return 0; }", IsaKind::Vliw4);
        assert!(asm.contains("switchtarget risc"));
        assert!(asm.contains("switchtarget vliw4"));
    }

    #[test]
    fn unknown_override_rejected() {
        let err = compile(
            "int main() { return 0; }",
            &CompileOptions::for_isa(IsaKind::Risc).with_function_isa("nope", IsaKind::Vliw2),
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn string_escapes_survive() {
        let asm = compile_for("int main() { puts(\"a\\nb\\\"c\"); return 0; }", IsaKind::Risc);
        assert!(asm.contains("\\n"));
        assert!(asm.contains("\\\""));
        kahrisma_asm::assemble("t.s", &asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
    }
}
