//! The compiler's intermediate representation.
//!
//! A conventional three-address, virtual-register IR over basic blocks
//! (non-SSA: a source variable maps to one virtual register that may be
//! written repeatedly — sufficient for linear-scan allocation).

use kahrisma_adl::{AluOp, CondOp};

use crate::ast::GlobalDecl;

/// A virtual register.
pub(crate) type VReg = u32;

/// A basic-block index within a function.
pub(crate) type BlockId = usize;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    Reg(VReg),
    Const(i32),
}

/// An IR instruction. `Br`, `Jmp` and `Ret` are terminators and appear only
/// as the last instruction of a block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Inst {
    /// `dst = a <op> b`.
    Bin { op: AluOp, dst: VReg, a: Operand, b: Operand },
    /// `dst = cond(a, b) ? 1 : 0` — materialized comparison.
    Cmp { cond: CondOp, dst: VReg, a: Operand, b: Operand },
    /// `dst = value`.
    Li { dst: VReg, value: i32 },
    /// `dst = &symbol` (global or string label).
    La { dst: VReg, symbol: String },
    /// `dst = &stack_array[slot]`.
    LocalAddr { dst: VReg, slot: u32 },
    /// `dst = mem[base + offset]` (word).
    Load { dst: VReg, base: Operand, offset: i32 },
    /// `mem[base + offset] = src` (word).
    Store { src: Operand, base: Operand, offset: i32 },
    /// Function call.
    Call { dst: Option<VReg>, func: String, args: Vec<Operand> },
    /// Conditional branch terminator.
    Br { cond: CondOp, a: Operand, b: Operand, then_bb: BlockId, else_bb: BlockId },
    /// Unconditional jump terminator.
    Jmp(BlockId),
    /// Return terminator.
    Ret(Option<Operand>),
}

impl Inst {
    /// Whether the instruction terminates a block.
    pub(crate) fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Jmp(_) | Inst::Ret(_))
    }

    /// Virtual register defined by the instruction, if any.
    pub(crate) fn def(&self) -> Option<VReg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Li { dst, .. }
            | Inst::La { dst, .. }
            | Inst::LocalAddr { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Appends the virtual registers used by the instruction to `out`.
    pub(crate) fn uses(&self, out: &mut Vec<VReg>) {
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } | Inst::Br { a, b, .. } => {
                push(a);
                push(b);
            }
            Inst::Load { base, .. } => push(base),
            Inst::Store { src, base, .. } => {
                push(src);
                push(base);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Inst::Ret(Some(v)) => push(v),
            _ => {}
        }
    }

    /// Successor blocks of a terminator.
    pub(crate) fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Inst::Jmp(t) => vec![*t],
            _ => Vec::new(),
        }
    }
}

/// A basic block: straight-line instructions with a terminator last.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Block {
    pub insts: Vec<Inst>,
}

impl Block {
    pub(crate) fn is_terminated(&self) -> bool {
        self.insts.last().is_some_and(Inst::is_terminator)
    }
}

/// An IR function.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IrFunction {
    pub name: String,
    /// Parameter virtual registers, in ABI order.
    pub params: Vec<VReg>,
    pub blocks: Vec<Block>,
    /// Number of virtual registers used.
    pub vreg_count: u32,
    /// Stack arrays: size of slot `i` in words.
    pub stack_arrays: Vec<u32>,
    /// Whether the function returns a value.
    pub returns_value: bool,
}

impl IrFunction {
    /// Iterates all instructions in block order.
    pub(crate) fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }
}

/// A compiled translation unit at the IR level.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct IrProgram {
    pub globals: Vec<GlobalDecl>,
    /// String literals: `(label, bytes)`.
    pub strings: Vec<(String, String)>,
    pub functions: Vec<IrFunction>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin { op: AluOp::Add, dst: 3, a: Operand::Reg(1), b: Operand::Const(5) };
        assert_eq!(i.def(), Some(3));
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(uses, vec![1]);

        let c = Inst::Call { dst: None, func: "f".into(), args: vec![Operand::Reg(7)] };
        assert_eq!(c.def(), None);
        uses.clear();
        c.uses(&mut uses);
        assert_eq!(uses, vec![7]);
    }

    #[test]
    fn terminators_and_successors() {
        let br = Inst::Br {
            cond: CondOp::Eq,
            a: Operand::Reg(0),
            b: Operand::Const(0),
            then_bb: 1,
            else_bb: 2,
        };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![1, 2]);
        assert!(Inst::Ret(None).is_terminator());
        assert!(Inst::Ret(None).successors().is_empty());
        assert!(!Inst::Li { dst: 0, value: 1 }.is_terminator());
    }
}
