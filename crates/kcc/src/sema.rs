//! Semantic analysis: scoping, type checking, lvalue normalization.
//!
//! Produces a typed program in which pointer arithmetic is explicitly scaled
//! (all KC element types are 4 bytes), array/deref accesses are normalized
//! into explicit address computations plus [`TExprKind::Load`] nodes, and
//! every local has a unique name.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{CompileError, Phase};

/// Names and arities of the C-library builtins backed by the simulator's
/// `simop` emulation (paper §V-E). `(name, arg_count, returns_pointer)`.
pub(crate) const BUILTINS: &[(&str, usize, bool)] = &[
    ("exit", 1, false),
    ("putchar", 1, false),
    ("print_int", 1, false),
    ("print_uint", 1, false),
    ("print_hex", 1, false),
    ("puts", 1, false),
    ("malloc", 1, true),
    ("free", 1, false),
    ("memcpy", 3, true),
    ("memset", 3, true),
    ("srand", 1, false),
    ("rand", 0, false),
    ("clock", 0, false),
    ("getchar", 0, false),
    ("abort", 0, false),
    // Fabric builtins: core identity, synchronization, and word atomics
    // (resolved at quantum barriers on a multi-core fabric, local
    // no-ops / immediate read-modify-writes standalone).
    ("core_id", 0, false),
    ("core_count", 0, false),
    ("spawn", 3, false),
    ("park", 0, false),
    ("spawn_arg", 0, false),
    ("join", 1, false),
    ("barrier", 0, false),
    ("atomic_swap", 2, false),
    ("atomic_add", 2, false),
    ("shared_base", 0, true),
];

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TExpr {
    pub kind: TExprKind,
    pub ty: Type,
}

/// Typed expression variants (lvalues already normalized to addresses).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TExprKind {
    Int(i32),
    /// String literal (materialized in `.rodata` by the lowerer).
    Str(String),
    /// Read of a scalar local or parameter (unique name).
    Local(String),
    /// Address of a global symbol (scalar, array, or string).
    GlobalAddr(String),
    /// Address of a stack array (unique name).
    LocalArrayAddr(String),
    /// Word load from the address produced by the inner expression.
    Load(Box<TExpr>),
    Unary(UnOp, Box<TExpr>),
    Binary(BinOp, Box<TExpr>, Box<TExpr>),
    Call(String, Vec<TExpr>),
}

/// A typed assignment target.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TLval {
    /// Scalar local (unique name).
    Local(String),
    /// Word store to the address produced by the expression.
    Mem(TExpr),
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TStmt {
    DeclScalar { name: String, init: Option<TExpr> },
    DeclArray { name: String, words: u32 },
    Assign { target: TLval, value: TExpr },
    Expr(TExpr),
    If { cond: TExpr, then_body: Vec<TStmt>, else_body: Vec<TStmt> },
    While { cond: TExpr, body: Vec<TStmt> },
    For { step: Vec<TStmt>, cond: Option<TExpr>, body: Vec<TStmt> },
    Return(Option<TExpr>),
    Break,
    Continue,
}

/// A typed function.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TFunc {
    pub name: String,
    pub ret: Type,
    /// Parameters with unique names.
    pub params: Vec<(String, Type)>,
    pub body: Vec<TStmt>,
}

/// A typed program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TProgram {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<TFunc>,
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(Phase::Sema, line, msg)
}

#[derive(Debug, Clone)]
enum Binding {
    /// Scalar local with its unique name.
    Scalar(String, Type),
    /// Stack array with its unique name and element type.
    Array(String, Type),
}

struct Checker<'a> {
    program: &'a Program,
    globals: HashMap<&'a str, &'a GlobalDecl>,
    functions: HashMap<&'a str, &'a FuncDecl>,
    scopes: Vec<HashMap<String, Binding>>,
    next_unique: u32,
    current_ret: Type,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    fn unique(&mut self, name: &str) -> String {
        self.next_unique += 1;
        format!("{name}${}", self.next_unique)
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &str, binding: Binding, line: u32) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.contains_key(name) {
            return Err(err(line, format!("`{name}` redeclared in the same scope")));
        }
        scope.insert(name.to_string(), binding);
        Ok(())
    }

    fn check_function(&mut self, f: &'a FuncDecl) -> Result<TFunc, CompileError> {
        self.current_ret = f.ret.clone();
        self.scopes.push(HashMap::new());
        let mut params = Vec::new();
        for (name, ty) in &f.params {
            if *ty == Type::Void {
                return Err(err(f.line, format!("parameter `{name}` has type void")));
            }
            let uname = self.unique(name);
            self.declare(name, Binding::Scalar(uname.clone(), ty.clone()), f.line)?;
            params.push((uname, ty.clone()));
        }
        let body = self.check_body(&f.body)?;
        self.scopes.pop();
        Ok(TFunc { name: f.name.clone(), ret: f.ret.clone(), params, body })
    }

    fn check_body(&mut self, stmts: &[Stmt]) -> Result<Vec<TStmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let result = stmts.iter().map(|s| self.check_stmt(s)).collect();
        self.scopes.pop();
        result
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<TStmt, CompileError> {
        match stmt {
            Stmt::Decl { name, ty, array, init, line } => {
                if *ty == Type::Void {
                    return Err(err(*line, format!("`{name}` declared void")));
                }
                let uname = self.unique(name);
                if let Some(n) = array {
                    self.declare(name, Binding::Array(uname.clone(), ty.clone()), *line)?;
                    Ok(TStmt::DeclArray { name: uname, words: *n })
                } else {
                    let tinit = init
                        .as_ref()
                        .map(|e| self.check_scalar_expr(e))
                        .transpose()?;
                    self.declare(name, Binding::Scalar(uname.clone(), ty.clone()), *line)?;
                    Ok(TStmt::DeclScalar { name: uname, init: tinit })
                }
            }
            Stmt::Expr(e) => {
                let te = self.check_expr(e)?;
                Ok(TStmt::Expr(te))
            }
            Stmt::Assign { target, op, value, line } => {
                let (lval, lval_ty) = self.check_lvalue(target)?;
                let tvalue = self.check_scalar_expr(value)?;
                let final_value = if let Some(op) = op {
                    // Compound assignment re-reads the target.
                    let read = match &lval {
                        TLval::Local(name) => {
                            TExpr { kind: TExprKind::Local(name.clone()), ty: lval_ty.clone() }
                        }
                        TLval::Mem(addr) => TExpr {
                            kind: TExprKind::Load(Box::new(addr.clone())),
                            ty: lval_ty.clone(),
                        },
                    };
                    self.binary(*op, read, tvalue, *line)?
                } else {
                    tvalue
                };
                Ok(TStmt::Assign { target: lval, value: final_value })
            }
            Stmt::If { cond, then_body, else_body } => Ok(TStmt::If {
                cond: self.check_scalar_expr(cond)?,
                then_body: self.check_body(then_body)?,
                else_body: self.check_body(else_body)?,
            }),
            Stmt::While { cond, body } => {
                self.loop_depth += 1;
                let r = TStmt::While {
                    cond: self.check_scalar_expr(cond)?,
                    body: self.check_body(body)?,
                };
                self.loop_depth -= 1;
                Ok(r)
            }
            Stmt::For { init, cond, step, body } => {
                // The init statement's declarations scope over the loop.
                self.scopes.push(HashMap::new());
                let mut out = Vec::new();
                if let Some(i) = init {
                    out.push(self.check_stmt(i)?);
                }
                self.loop_depth += 1;
                let tcond = cond.as_ref().map(|c| self.check_scalar_expr(c)).transpose()?;
                let tbody = self.check_body(body)?;
                let tstep = match step {
                    Some(s) => vec![self.check_stmt(s)?],
                    None => Vec::new(),
                };
                self.loop_depth -= 1;
                self.scopes.pop();
                out.push(TStmt::For { step: tstep, cond: tcond, body: tbody });
                // Wrap in a block-equivalent sequence: return a single
                // statement when there is no init.
                if out.len() == 1 {
                    Ok(out.pop().expect("one statement"))
                } else {
                    // Represent `{ init; for…; }` as an If with a constant
                    // true condition to avoid adding a Block variant — no:
                    // keep it simple with a dedicated sequence.
                    Ok(TStmt::If {
                        cond: TExpr { kind: TExprKind::Int(1), ty: Type::Int },
                        then_body: out,
                        else_body: Vec::new(),
                    })
                }
            }
            Stmt::Return(value, line) => {
                let tvalue = value.as_ref().map(|e| self.check_scalar_expr(e)).transpose()?;
                match (&self.current_ret, &tvalue) {
                    (Type::Void, Some(_)) => Err(err(*line, "void function returns a value")),
                    (Type::Void, None) => Ok(TStmt::Return(None)),
                    (_, None) => Err(err(*line, "non-void function must return a value")),
                    (_, Some(_)) => Ok(TStmt::Return(tvalue)),
                }
            }
            Stmt::Break(line) => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "break outside a loop"));
                }
                Ok(TStmt::Break)
            }
            Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "continue outside a loop"));
                }
                Ok(TStmt::Continue)
            }
            Stmt::Block(stmts) => Ok(TStmt::If {
                cond: TExpr { kind: TExprKind::Int(1), ty: Type::Int },
                then_body: self.check_body(stmts)?,
                else_body: Vec::new(),
            }),
        }
    }

    /// Checks an lvalue expression and returns its target plus element type.
    fn check_lvalue(&mut self, target: &Expr) -> Result<(TLval, Type), CompileError> {
        match &target.kind {
            ExprKind::Var(name) => {
                if let Some(binding) = self.lookup(name).cloned() {
                    match binding {
                        Binding::Scalar(uname, ty) => return Ok((TLval::Local(uname), ty)),
                        Binding::Array(_, _) => {
                            return Err(err(target.line, format!("cannot assign to array `{name}`")));
                        }
                    }
                }
                if let Some(g) = self.globals.get(name.as_str()) {
                    if g.array.is_some() {
                        return Err(err(target.line, format!("cannot assign to array `{name}`")));
                    }
                    let addr = TExpr {
                        kind: TExprKind::GlobalAddr(name.clone()),
                        ty: Type::Ptr(Box::new(g.ty.clone())),
                    };
                    return Ok((TLval::Mem(addr), g.ty.clone()));
                }
                Err(err(target.line, format!("unknown variable `{name}`")))
            }
            ExprKind::Deref(inner) => {
                let addr = self.check_scalar_expr(inner)?;
                let elem = addr
                    .ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| err(target.line, "dereference of a non-pointer"))?;
                Ok((TLval::Mem(addr), elem))
            }
            ExprKind::Index(base, index) => {
                let addr = self.index_addr(base, index, target.line)?;
                let elem = addr.ty.pointee().cloned().expect("index_addr returns pointer");
                Ok((TLval::Mem(addr), elem))
            }
            _ => Err(err(target.line, "expression is not assignable")),
        }
    }

    /// Computes the address expression `base + index * 4`.
    fn index_addr(
        &mut self,
        base: &Expr,
        index: &Expr,
        line: u32,
    ) -> Result<TExpr, CompileError> {
        let tbase = self.check_scalar_expr(base)?;
        if !tbase.ty.is_ptr() {
            return Err(err(line, format!("indexed value has type {}", tbase.ty)));
        }
        let tindex = self.check_scalar_expr(index)?;
        if tindex.ty.is_ptr() {
            return Err(err(line, "array index must be an integer"));
        }
        self.binary(BinOp::Add, tbase, tindex, line)
    }

    /// Checks an expression that must produce a scalar (or pointer) value.
    fn check_scalar_expr(&mut self, e: &Expr) -> Result<TExpr, CompileError> {
        let t = self.check_expr(e)?;
        if t.ty == Type::Void {
            return Err(err(e.line, "void value used in an expression"));
        }
        Ok(t)
    }

    fn check_expr(&mut self, e: &Expr) -> Result<TExpr, CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                // Accept the full 32-bit range, signed or unsigned spelling
                // (e.g. `0x80000000`); the value wraps into two's complement.
                if *v < -(1i64 << 31) || *v >= (1i64 << 32) {
                    return Err(err(line, format!("constant {v} exceeds 32 bits")));
                }
                Ok(TExpr { kind: TExprKind::Int(*v as u32 as i32), ty: Type::Int })
            }
            ExprKind::Str(s) => Ok(TExpr {
                kind: TExprKind::Str(s.clone()),
                ty: Type::Ptr(Box::new(Type::Int)),
            }),
            ExprKind::Var(name) => {
                if let Some(binding) = self.lookup(name).cloned() {
                    return Ok(match binding {
                        Binding::Scalar(uname, ty) => {
                            TExpr { kind: TExprKind::Local(uname), ty }
                        }
                        Binding::Array(uname, elem) => TExpr {
                            kind: TExprKind::LocalArrayAddr(uname),
                            ty: Type::Ptr(Box::new(elem)),
                        },
                    });
                }
                if let Some(g) = self.globals.get(name.as_str()) {
                    let addr = TExpr {
                        kind: TExprKind::GlobalAddr(name.clone()),
                        ty: Type::Ptr(Box::new(g.ty.clone())),
                    };
                    return Ok(if g.array.is_some() {
                        addr // arrays decay to pointers
                    } else {
                        TExpr { ty: g.ty.clone(), kind: TExprKind::Load(Box::new(addr)) }
                    });
                }
                Err(err(line, format!("unknown variable `{name}`")))
            }
            ExprKind::Unary(op, inner) => {
                let t = self.check_scalar_expr(inner)?;
                if t.ty.is_ptr() && *op != UnOp::LNot {
                    return Err(err(line, "arithmetic unary operator on a pointer"));
                }
                let ty = match op {
                    UnOp::LNot => Type::Int,
                    _ => t.ty.clone(),
                };
                Ok(TExpr { kind: TExprKind::Unary(*op, Box::new(t)), ty })
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let tl = self.check_scalar_expr(lhs)?;
                let tr = self.check_scalar_expr(rhs)?;
                self.binary(*op, tl, tr, line)
            }
            ExprKind::Index(base, index) => {
                let addr = self.index_addr(base, index, line)?;
                let elem = addr.ty.pointee().cloned().expect("pointer");
                Ok(TExpr { ty: elem, kind: TExprKind::Load(Box::new(addr)) })
            }
            ExprKind::Deref(inner) => {
                let addr = self.check_scalar_expr(inner)?;
                let elem = addr
                    .ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| err(line, "dereference of a non-pointer"))?;
                Ok(TExpr { ty: elem, kind: TExprKind::Load(Box::new(addr)) })
            }
            ExprKind::AddrOf(inner) => match &inner.kind {
                ExprKind::Var(name) => {
                    if self.lookup(name).is_some() {
                        // Stack arrays already decay to their address; taking
                        // the address of a scalar local would force it into
                        // memory, which the register allocator does not
                        // model — reject it (use a global or an array).
                        if let Some(Binding::Array(uname, elem)) = self.lookup(name).cloned() {
                            return Ok(TExpr {
                                kind: TExprKind::LocalArrayAddr(uname),
                                ty: Type::Ptr(Box::new(elem)),
                            });
                        }
                        return Err(err(
                            line,
                            "taking the address of a scalar local is not supported",
                        ));
                    }
                    if let Some(g) = self.globals.get(name.as_str()) {
                        return Ok(TExpr {
                            kind: TExprKind::GlobalAddr(name.clone()),
                            ty: Type::Ptr(Box::new(g.ty.clone())),
                        });
                    }
                    Err(err(line, format!("unknown variable `{name}`")))
                }
                ExprKind::Index(base, index) => self.index_addr(base, index, line),
                ExprKind::Deref(inner) => self.check_scalar_expr(inner),
                _ => Err(err(line, "cannot take the address of this expression")),
            },
            ExprKind::Call(name, args) => {
                let mut targs = Vec::with_capacity(args.len());
                for a in args {
                    targs.push(self.check_scalar_expr(a)?);
                }
                if let Some(f) = self.functions.get(name.as_str()) {
                    if f.params.len() != targs.len() {
                        return Err(err(
                            line,
                            format!(
                                "`{name}` expects {} arguments, got {}",
                                f.params.len(),
                                targs.len()
                            ),
                        ));
                    }
                    return Ok(TExpr {
                        ty: f.ret.clone(),
                        kind: TExprKind::Call(name.clone(), targs),
                    });
                }
                if let Some(&(_, nargs, ret_ptr)) =
                    BUILTINS.iter().find(|(n, _, _)| n == name)
                {
                    if nargs != targs.len() {
                        return Err(err(
                            line,
                            format!("builtin `{name}` expects {nargs} arguments"),
                        ));
                    }
                    let ty = if ret_ptr { Type::Ptr(Box::new(Type::Int)) } else { Type::Int };
                    return Ok(TExpr { ty, kind: TExprKind::Call(name.clone(), targs) });
                }
                Err(err(line, format!("unknown function `{name}`")))
            }
        }
    }

    /// Type-checks a binary operation, scaling pointer arithmetic.
    fn binary(
        &mut self,
        op: BinOp,
        lhs: TExpr,
        rhs: TExpr,
        line: u32,
    ) -> Result<TExpr, CompileError> {
        let scale = |e: TExpr| -> TExpr {
            let four = TExpr { kind: TExprKind::Int(4), ty: Type::Int };
            TExpr {
                ty: e.ty.clone(),
                kind: TExprKind::Binary(BinOp::Mul, Box::new(e), Box::new(four)),
            }
        };
        let ty = match (op, lhs.ty.is_ptr(), rhs.ty.is_ptr()) {
            (BinOp::Add, true, false) => {
                let rhs = scale(rhs);
                return Ok(TExpr {
                    ty: lhs.ty.clone(),
                    kind: TExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                });
            }
            (BinOp::Add, false, true) => {
                let lhs = scale(lhs);
                return Ok(TExpr {
                    ty: rhs.ty.clone(),
                    kind: TExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                });
            }
            (BinOp::Sub, true, false) => {
                let rhs = scale(rhs);
                return Ok(TExpr {
                    ty: lhs.ty.clone(),
                    kind: TExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                });
            }
            (BinOp::Sub, true, true) => {
                // Pointer difference in elements.
                let diff = TExpr {
                    ty: Type::Int,
                    kind: TExprKind::Binary(BinOp::Sub, Box::new(lhs), Box::new(rhs)),
                };
                let four = TExpr { kind: TExprKind::Int(4), ty: Type::Int };
                return Ok(TExpr {
                    ty: Type::Int,
                    kind: TExprKind::Binary(BinOp::Div, Box::new(diff), Box::new(four)),
                });
            }
            (op, l, r) if (l || r) && !op.is_comparison() && !op.is_logical() => {
                return Err(err(line, format!("invalid pointer operation {op:?}")));
            }
            (op, _, _) if op.is_comparison() || op.is_logical() => Type::Int,
            _ => {
                if lhs.ty.is_unsigned() || rhs.ty.is_unsigned() {
                    Type::Uint
                } else {
                    Type::Int
                }
            }
        };
        Ok(TExpr { ty, kind: TExprKind::Binary(op, Box::new(lhs), Box::new(rhs)) })
    }
}

/// Type-checks a program.
pub(crate) fn check(program: &Program) -> Result<TProgram, CompileError> {
    let mut globals = HashMap::new();
    for g in &program.globals {
        if g.ty == Type::Void {
            return Err(err(g.line, format!("global `{}` declared void", g.name)));
        }
        if globals.insert(g.name.as_str(), g).is_some() {
            return Err(err(g.line, format!("global `{}` redefined", g.name)));
        }
    }
    let mut functions = HashMap::new();
    for f in &program.functions {
        if functions.insert(f.name.as_str(), f).is_some() {
            return Err(err(f.line, format!("function `{}` redefined", f.name)));
        }
        if BUILTINS.iter().any(|(n, _, _)| *n == f.name) {
            return Err(err(f.line, format!("`{}` shadows a builtin", f.name)));
        }
        if globals.contains_key(f.name.as_str()) {
            return Err(err(f.line, format!("`{}` is both a global and a function", f.name)));
        }
    }
    // Prototypes declare externals (or forward-declare definitions, which
    // win). Calls check against the prototype's signature; the symbol is
    // resolved by the linker, assuming the unit's target ISA.
    for p in &program.prototypes {
        functions.entry(p.name.as_str()).or_insert(p);
    }
    let mut checker = Checker {
        program,
        globals,
        functions,
        scopes: Vec::new(),
        next_unique: 0,
        current_ret: Type::Void,
        loop_depth: 0,
    };
    let mut out = TProgram { globals: program.globals.clone(), functions: Vec::new() };
    for f in &checker.program.functions.to_vec() {
        let func = checker
            .program
            .functions
            .iter()
            .find(|x| x.name == f.name)
            .expect("function present");
        out.functions.push(checker.check_function(func)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TProgram, CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        let p = check_src(
            "int tab[4] = {1,2,3,4};
             int sum(int* p, int n) {
                 int s = 0;
                 int i;
                 for (i = 0; i < n; i++) s += p[i];
                 return s;
             }
             int main() { return sum(tab, 4); }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn pointer_arithmetic_is_scaled() {
        let p = check_src("int a[2]; int f(int* p) { return *(p + 1); }").unwrap();
        // The address expression must contain a *4 scale.
        let f = &p.functions[0];
        let TStmt::Return(Some(e)) = &f.body[0] else { panic!("{:?}", f.body) };
        let TExprKind::Load(addr) = &e.kind else { panic!("{:?}", e.kind) };
        let TExprKind::Binary(BinOp::Add, _, rhs) = &addr.kind else { panic!("{:?}", addr.kind) };
        assert!(matches!(&rhs.kind, TExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn unsigned_propagates() {
        let p = check_src("int f(uint a, int b) { return a / b; }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(e.ty, Type::Uint);
    }

    #[test]
    fn comparisons_are_int() {
        let p = check_src("int f(uint a, uint b) { return a < b; }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(e.ty, Type::Int);
    }

    #[test]
    fn locals_get_unique_names_per_scope() {
        let p = check_src("int f() { int x = 1; { int x = 2; } return x; }").unwrap();
        let body = &p.functions[0].body;
        let TStmt::DeclScalar { name: outer, .. } = &body[0] else { panic!() };
        let TStmt::If { then_body, .. } = &body[1] else { panic!("{body:?}") };
        let TStmt::DeclScalar { name: inner, .. } = &then_body[0] else { panic!() };
        assert_ne!(outer, inner);
        let TStmt::Return(Some(e)) = &body[2] else { panic!() };
        assert_eq!(e.kind, TExprKind::Local(outer.clone()));
    }

    #[test]
    fn builtins_resolve() {
        assert!(check_src("int f() { putchar(65); return rand(); }").is_ok());
        assert!(check_src("int* f() { return malloc(64); }").is_ok());
        assert!(check_src("int f() { return rand(1); }").is_err()); // arity
    }

    #[test]
    fn rejects_type_errors() {
        assert!(check_src("int f() { return y; }").is_err());
        assert!(check_src("int f(int a) { return *a; }").is_err());
        assert!(check_src("int f(int* p, int* q) { return p * q; }").is_err());
        assert!(check_src("int a[2]; int f() { a = 0; return 0; }").is_err());
        assert!(check_src("void f() { return 1; }").is_err());
        assert!(check_src("int f() { return; }").is_err());
        assert!(check_src("int f() { break; return 0; }").is_err());
        assert!(check_src("int f() { int x; int x; return 0; }").is_err());
        assert!(check_src("int f() { int x; return &x; }").is_err());
        assert!(check_src("int g() {return 0;} int g() {return 1;}").is_err());
        assert!(check_src("int puts(int x) { return x; }").is_err());
        assert!(check_src("int f(int a, int b) { return f(a); }").is_err());
    }

    #[test]
    fn pointer_difference_divides() {
        let p = check_src("int f(int* a, int* b) { return a - b; }").unwrap();
        let TStmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(&e.kind, TExprKind::Binary(BinOp::Div, _, _)));
        assert_eq!(e.ty, Type::Int);
    }

    #[test]
    fn string_literals_are_pointers() {
        let p = check_src("void f() { puts(\"hi\"); }").unwrap();
        let TStmt::Expr(e) = &p.functions[0].body[0] else { panic!() };
        let TExprKind::Call(_, args) = &e.kind else { panic!() };
        assert!(args[0].ty.is_ptr());
    }
}
