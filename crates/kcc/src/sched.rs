//! Latency-aware VLIW list scheduling.
//!
//! Packs the machine operations of each basic block into issue-width
//! bundles. Dependencies follow the paper's compiler model:
//!
//! * true register dependencies with operation latencies (ALU 1, MUL 3,
//!   DIV 12, load = L1-hit 3);
//! * anti dependencies may share a bundle (the hardware and simulator read
//!   all sources before any write-back, §V-B);
//! * output dependencies are ordered into distinct bundles;
//! * the **pessimistic memory model** of §VI-A: every memory operation
//!   depends on the last store, every store on all memory operations since
//!   the previous store ("we do not have an alias analysis and use at the
//!   moment the same pessimistic model for scheduling"). Multiple memory
//!   operations may share a bundle — the DOE hardware's slots drift to
//!   absorb L1 port conflicts dynamically (§III), so the schedule does not
//!   serialize them statically;
//! * a conditional branch shares the final bundle of its block (every other
//!   operation is ordered before it); unconditional jumps, calls and
//!   returns occupy their own bundle (the call's return address is the
//!   following instruction).

use crate::machine::MOp;

/// A scheduled bundle: up to `width` operations issued together.
pub(crate) type Bundle = Vec<MOp>;

/// Schedules one block's operations into bundles for the given issue width.
pub(crate) fn schedule(ops: &[MOp], width: u8) -> Vec<Bundle> {
    let width = usize::from(width).max(1);
    let mut bundles = Vec::new();
    let mut region = Vec::new();
    for op in ops {
        if matches!(op, MOp::Br { .. }) {
            // A conditional branch closes its region but may share the
            // region's final bundle: every other operation of the region is
            // ordered (weakly) before it.
            region.push(op.clone());
            bundles.extend(schedule_region(&region, width));
            region.clear();
        } else if op.is_barrier() {
            if !region.is_empty() {
                bundles.extend(schedule_region(&region, width));
                region.clear();
            }
            bundles.push(vec![op.clone()]);
        } else {
            region.push(op.clone());
        }
    }
    if !region.is_empty() {
        bundles.extend(schedule_region(&region, width));
    }
    bundles
}

/// List-schedules a barrier-free region.
fn schedule_region(ops: &[MOp], width: usize) -> Vec<Bundle> {
    let n = ops.len();
    if n == 0 {
        return Vec::new();
    }
    if width == 1 {
        // RISC: keep the original order, one op per bundle.
        return ops.iter().map(|o| vec![o.clone()]).collect();
    }

    // Dependence edges: (from, to, latency).
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut pred_count = vec![0u32; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>, pred_count: &mut Vec<u32>, i: usize, j: usize, lat: u32| {
        succs[i].push((j, lat));
        pred_count[j] += 1;
    };

    let reads: Vec<Vec<u8>> = ops.iter().map(MOp::reads).collect();
    let writes: Vec<Option<u8>> = ops.iter().map(MOp::writes).collect();

    for j in 0..n {
        for i in (0..j).rev() {
            // True dependence (RAW).
            if let Some(w) = writes[i] {
                if w != 0 && reads[j].contains(&w) {
                    add_edge(&mut succs, &mut pred_count, i, j, ops[i].latency());
                }
                // Output dependence (WAW): distinct bundles.
                if w != 0 && writes[j] == Some(w) {
                    add_edge(&mut succs, &mut pred_count, i, j, 1);
                }
            }
            // Anti dependence (WAR): same bundle is fine (read-before-write).
            if let Some(wj) = writes[j] {
                if wj != 0 && reads[i].contains(&wj) {
                    add_edge(&mut succs, &mut pred_count, i, j, 0);
                }
            }
        }
    }
    // A trailing conditional branch is ordered after every other operation
    // (it may still share the final bundle via zero-latency edges).
    if let Some(last) = ops.last() {
        if matches!(last, MOp::Br { .. }) {
            let b = n - 1;
            for i in 0..b {
                add_edge(&mut succs, &mut pred_count, i, b, 0);
            }
        }
    }
    // Memory ordering. Stack-frame accesses (sp-based with constant
    // offsets: spills, callee-saves, outgoing arguments) are compiler-
    // private and provably disambiguated — they only conflict with the
    // same slot. All other memory operations follow the paper's pessimistic
    // model: every access depends on the last store, every store on all
    // accesses since the previous store.
    let sp_slot = |op: &MOp| -> Option<i32> {
        match op {
            MOp::Load { base, off, .. } | MOp::Store { base, off, .. }
                if *base == kahrisma_isa::abi::SP =>
            {
                Some(*off)
            }
            _ => None,
        }
    };
    let mut last_store: Option<usize> = None;
    let mut since_store: Vec<usize> = Vec::new();
    let mut slot_last_store: std::collections::HashMap<i32, usize> = std::collections::HashMap::new();
    let mut slot_loads_since: std::collections::HashMap<i32, Vec<usize>> = std::collections::HashMap::new();
    for (j, op) in ops.iter().enumerate() {
        let Some(is_store) = op.mem_access() else { continue };
        if let Some(slot) = sp_slot(op) {
            if is_store {
                if let Some(&s) = slot_last_store.get(&slot) {
                    add_edge(&mut succs, &mut pred_count, s, j, 1);
                }
                for &l in slot_loads_since.get(&slot).map(Vec::as_slice).unwrap_or(&[]) {
                    add_edge(&mut succs, &mut pred_count, l, j, 0);
                }
                slot_last_store.insert(slot, j);
                slot_loads_since.remove(&slot);
            } else {
                if let Some(&s) = slot_last_store.get(&slot) {
                    add_edge(&mut succs, &mut pred_count, s, j, 1);
                }
                slot_loads_since.entry(slot).or_default().push(j);
            }
            continue;
        }
        if is_store {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut pred_count, s, j, 1);
            }
            for &l in &since_store {
                add_edge(&mut succs, &mut pred_count, l, j, 0);
            }
            last_store = Some(j);
            since_store.clear();
        } else {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut pred_count, s, j, 1);
            }
            since_store.push(j);
        }
    }

    // Priorities: critical-path height.
    let mut height = vec![1u64; n];
    for i in (0..n).rev() {
        for &(j, lat) in &succs[i] {
            height[i] = height[i].max(u64::from(lat) + height[j]);
        }
    }

    // List scheduling.
    let mut ready_cycle = vec![0u64; n]; // earliest cycle once preds done
    let mut remaining_preds = pred_count;
    let mut unscheduled = n;
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut scheduled_cycle = vec![u64::MAX; n];
    let mut cycle = 0u64;
    let mut bundles_at: Vec<Bundle> = Vec::new();

    while unscheduled > 0 {
        let mut bundle = Vec::new();
        // Repeat selection until the bundle stops growing: issuing an op may
        // release zero-latency (WAR) successors that can legally join the
        // same bundle — all sources are read before any write-back (§V-B).
        loop {
            // Candidates ready at this cycle, best priority first; the
            // original index breaks ties to keep the schedule deterministic.
            let mut candidates: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| ready_cycle[i] <= cycle)
                .collect();
            candidates.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));
            let mut progressed = false;
            for &i in &candidates {
                if bundle.len() >= width {
                    break;
                }
                bundle.push(ops[i].clone());
                scheduled_cycle[i] = cycle;
                progressed = true;
                ready.retain(|&r| r != i);
                for &(j, lat) in &succs[i] {
                    remaining_preds[j] -= 1;
                    let rc = cycle + u64::from(lat);
                    ready_cycle[j] = ready_cycle[j].max(rc);
                    if remaining_preds[j] == 0 {
                        ready.push(j);
                    }
                }
                unscheduled -= 1;
            }
            if !progressed || bundle.len() >= width {
                break;
            }
        }
        if !bundle.is_empty() {
            bundles_at.push(bundle);
        }
        cycle += 1;
        // Guard against scheduler bugs (the loop must always make progress
        // within the maximum latency horizon).
        debug_assert!(cycle < 1_000_000, "scheduler failed to make progress");
    }
    bundles_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_adl::AluOp;

    fn add(rd: u8, rs1: u8, rs2: u8) -> MOp {
        MOp::Alu { op: AluOp::Add, rd, rs1, rs2 }
    }

    fn mul(rd: u8, rs1: u8, rs2: u8) -> MOp {
        MOp::Alu { op: AluOp::Mul, rd, rs1, rs2 }
    }

    fn lw(rd: u8, base: u8) -> MOp {
        MOp::Load { rd, base, off: 0 }
    }

    fn sw(rs: u8, base: u8) -> MOp {
        MOp::Store { rs, base, off: 0 }
    }

    fn flat(bundles: &[Bundle]) -> Vec<&MOp> {
        bundles.iter().flatten().collect()
    }

    #[test]
    fn independent_ops_share_a_bundle() {
        let ops = [add(8, 9, 10), add(11, 12, 13), add(14, 9, 12), add(15, 10, 13)];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 4);
    }

    #[test]
    fn width_one_preserves_order() {
        let ops = [add(8, 9, 10), mul(11, 8, 8), sw(11, 29)];
        let bundles = schedule(&ops, 1);
        assert_eq!(bundles.len(), 3);
        assert_eq!(*bundles[0][0].writes().as_ref().unwrap(), 8);
    }

    #[test]
    fn raw_dependence_separates_bundles() {
        let ops = [add(8, 9, 10), add(11, 8, 9)];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn war_can_share_a_bundle() {
        // op2 overwrites a register op1 reads — legal in one bundle.
        let ops = [add(8, 9, 10), add(9, 11, 12)];
        let bundles = schedule(&ops, 2);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn waw_is_ordered() {
        let ops = [add(8, 9, 10), add(8, 11, 12)];
        let bundles = schedule(&ops, 2);
        assert_eq!(bundles.len(), 2);
        // Program order preserved: the final value comes from the second op.
        assert!(matches!(bundles[1][0], MOp::Alu { rs1: 11, .. }));
    }

    #[test]
    fn independent_loads_may_share_a_bundle() {
        // The DOE hardware absorbs L1 port conflicts by drifting, so the
        // schedule does not serialize parallel loads statically.
        let ops = [lw(8, 29), lw(9, 29), lw(10, 29), lw(11, 29)];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 4);
    }

    #[test]
    fn branch_shares_final_bundle() {
        let ops = [
            add(8, 9, 10),
            MOp::Br { cond: kahrisma_adl::CondOp::Ne, rs1: 11, rs2: 0, label: "x".into() },
        ];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 1, "{bundles:?}");
        assert_eq!(bundles[0].len(), 2);
        assert!(matches!(bundles[0][1], MOp::Br { .. }));
    }

    #[test]
    fn branch_waits_for_its_condition() {
        // The branch reads r8, produced in the same region: it must land in
        // a later bundle than the producer.
        let ops = [
            add(8, 9, 10),
            MOp::Br { cond: kahrisma_adl::CondOp::Ne, rs1: 8, rs2: 0, label: "x".into() },
        ];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn pessimistic_store_ordering() {
        // load; store; load — the second load may not move before the store.
        let ops = [lw(8, 29), sw(9, 29), lw(10, 29)];
        let bundles = schedule(&ops, 4);
        let order: Vec<_> = flat(&bundles);
        let pos = |m: &dyn Fn(&MOp) -> bool| order.iter().position(|o| m(o)).unwrap();
        let first_load = pos(&|o: &MOp| matches!(o, MOp::Load { rd: 8, .. }));
        let store = pos(&|o: &MOp| matches!(o, MOp::Store { .. }));
        let second_load = pos(&|o: &MOp| matches!(o, MOp::Load { rd: 10, .. }));
        assert!(first_load < store);
        assert!(store < second_load);
    }

    #[test]
    fn barriers_get_their_own_bundle() {
        let ops = [add(8, 9, 10), MOp::Call { func: "f".into() }, add(11, 9, 10)];
        let bundles = schedule(&ops, 4);
        assert_eq!(bundles.len(), 3);
        assert!(matches!(bundles[1][0], MOp::Call { .. }));
        assert_eq!(bundles[1].len(), 1);
    }

    #[test]
    fn latency_influences_placement() {
        // mul (3 cycles) then dependent add: with independent filler work,
        // the filler packs before the dependent add.
        let ops = [mul(8, 9, 10), add(11, 8, 9), add(12, 13, 14), add(15, 13, 9)];
        let bundles = schedule(&ops, 2);
        // The dependent add must be in a bundle after the independents.
        let flatpos: Vec<&MOp> = flat(&bundles);
        let dep = flatpos.iter().position(|o| matches!(o, MOp::Alu { rd: 11, .. })).unwrap();
        let f1 = flatpos.iter().position(|o| matches!(o, MOp::Alu { rd: 12, .. })).unwrap();
        assert!(f1 < dep, "filler should schedule before the dependent op");
    }

    #[test]
    fn schedule_is_deterministic() {
        let ops = [add(8, 9, 10), add(11, 12, 13), mul(14, 8, 11), lw(15, 29), sw(14, 29)];
        let a = schedule(&ops, 4);
        let b = schedule(&ops, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_no_bundles() {
        assert!(schedule(&[], 4).is_empty());
    }
}
