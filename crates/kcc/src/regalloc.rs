//! Linear-scan register allocation and machine-code selection.
//!
//! Allocation runs over live intervals derived from block-level dataflow
//! liveness. Intervals that cross a call site are restricted to callee-saved
//! registers (or spilled), so no caller-save/restore code is needed around
//! calls. Spilled virtual registers live in stack slots and are accessed
//! through reserved scratch registers (`at`, `gp`, `rv2`), which are never
//! allocated.

use std::collections::{HashMap, HashSet};

use kahrisma_adl::{AluOp, CondOp};
use kahrisma_isa::abi;

use crate::ir::*;
use crate::machine::{MBlock, MFunc, MOp};

/// Scratch registers reserved for spill access and constant materialization.
const SCRATCH: [u8; 3] = [abi::AT, abi::GP, abi::RV2];

/// Allocatable caller-saved registers (clobbered by calls).
const T_REGS: [u8; 8] = [8, 9, 10, 11, 12, 13, 14, 15];
/// Allocatable callee-saved registers (preserved across calls).
const S_REGS: [u8; 12] = [16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u8),
    Slot(u32),
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VReg,
    start: u32,
    end: u32,
    crosses_call: bool,
}

/// Converts an IR function into scheduled-ready machine code.
pub(crate) fn allocate(f: &IrFunction) -> MFunc {
    // ---- Instruction positions ------------------------------------------
    // Params are defined at position 0; instructions start at 1.
    let mut pos = 1u32;
    let mut block_range = Vec::with_capacity(f.blocks.len());
    let mut inst_pos: Vec<Vec<u32>> = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let start = pos;
        let mut ps = Vec::with_capacity(b.insts.len());
        for _ in &b.insts {
            ps.push(pos);
            pos += 1;
        }
        block_range.push((start, pos.saturating_sub(1).max(start)));
        inst_pos.push(ps);
    }

    // ---- Block-level liveness -------------------------------------------
    let nblocks = f.blocks.len();
    let mut use_set: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut def_set: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut uses_buf = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for i in &b.insts {
            uses_buf.clear();
            i.uses(&mut uses_buf);
            for &u in &uses_buf {
                if !def_set[bi].contains(&u) {
                    use_set[bi].insert(u);
                }
            }
            if let Some(d) = i.def() {
                def_set[bi].insert(d);
            }
        }
    }
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    loop {
        let mut changed = false;
        for bi in (0..nblocks).rev() {
            let mut out = HashSet::new();
            if let Some(term) = f.blocks[bi].insts.last() {
                for s in term.successors() {
                    out.extend(live_in[s].iter().copied());
                }
            }
            let mut inn: HashSet<VReg> = use_set[bi].clone();
            for &v in &out {
                if !def_set[bi].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Live intervals ---------------------------------------------------
    let mut starts: HashMap<VReg, u32> = HashMap::new();
    let mut ends: HashMap<VReg, u32> = HashMap::new();
    let touch = |v: VReg, p: u32, starts: &mut HashMap<VReg, u32>, ends: &mut HashMap<VReg, u32>| {
        starts.entry(v).and_modify(|s| *s = (*s).min(p)).or_insert(p);
        ends.entry(v).and_modify(|e| *e = (*e).max(p)).or_insert(p);
    };
    for &param in &f.params {
        touch(param, 0, &mut starts, &mut ends);
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let (bstart, bend) = block_range[bi];
        for &v in &live_in[bi] {
            touch(v, bstart, &mut starts, &mut ends);
        }
        for &v in &live_out[bi] {
            touch(v, bend, &mut starts, &mut ends);
        }
        for (ii, i) in b.insts.iter().enumerate() {
            let p = inst_pos[bi][ii];
            uses_buf.clear();
            i.uses(&mut uses_buf);
            for &u in &uses_buf {
                touch(u, p, &mut starts, &mut ends);
            }
            if let Some(d) = i.def() {
                touch(d, p, &mut starts, &mut ends);
            }
        }
    }

    // Call positions (for caller-saved restrictions).
    let mut call_positions = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, i) in b.insts.iter().enumerate() {
            if matches!(i, Inst::Call { .. }) {
                call_positions.push(inst_pos[bi][ii]);
            }
        }
    }
    let crosses_call = |start: u32, end: u32| -> bool {
        call_positions.iter().any(|&c| start < c && c < end)
    };

    let mut intervals: Vec<Interval> = starts
        .iter()
        .map(|(&v, &s)| {
            let e = ends[&v];
            Interval { vreg: v, start: s, end: e, crosses_call: crosses_call(s, e) }
        })
        .collect();
    // The vreg index breaks ties so allocation is fully deterministic.
    intervals.sort_by_key(|i| (i.start, i.end, i.vreg));

    // ---- Linear scan -------------------------------------------------------
    let mut loc: HashMap<VReg, Loc> = HashMap::new();
    let mut free_t: Vec<u8> = T_REGS.to_vec();
    // Leaf functions (no calls) may also allocate the return-value register
    // and the argument registers that carry no incoming parameter: nothing
    // clobbers them, and WAR dependencies order the prologue's argument
    // moves before any reuse. Argument registers that do carry parameters
    // stay reserved so the prologue moves never overwrite each other.
    if call_positions.is_empty() {
        free_t.push(abi::RV);
        let reg_params = f.params.len().min(usize::from(abi::NUM_ARG_REGS)) as u8;
        for i in reg_params..abi::NUM_ARG_REGS {
            free_t.push(abi::A0 + i);
        }
    }
    let mut free_s: Vec<u8> = S_REGS.to_vec();
    let mut active: Vec<Interval> = Vec::new(); // sorted by end
    let mut spill_slots = 0u32;
    let mut used_s_regs: HashSet<u8> = HashSet::new();

    for iv in &intervals {
        // Expire finished intervals.
        let mut i = 0;
        while i < active.len() {
            if active[i].end < iv.start {
                let done = active.remove(i);
                if let Some(Loc::Reg(r)) = loc.get(&done.vreg).copied() {
                    if S_REGS.contains(&r) {
                        free_s.push(r);
                    } else {
                        free_t.push(r);
                    }
                }
            } else {
                i += 1;
            }
        }
        // Pick a register.
        let reg = if iv.crosses_call {
            free_s.pop()
        } else {
            free_t.pop().or_else(|| free_s.pop())
        };
        match reg {
            Some(r) => {
                if S_REGS.contains(&r) {
                    used_s_regs.insert(r);
                }
                loc.insert(iv.vreg, Loc::Reg(r));
                let at = active.partition_point(|a| a.end <= iv.end);
                active.insert(at, *iv);
            }
            None => {
                // Steal from the active interval with the furthest end whose
                // register class is acceptable for this interval.
                let victim = active
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, a)| {
                        let Some(Loc::Reg(r)) = loc.get(&a.vreg).copied() else { return false };
                        !iv.crosses_call || S_REGS.contains(&r)
                    })
                    .map(|(idx, a)| (idx, *a));
                match victim {
                    Some((vidx, v)) if v.end > iv.end => {
                        let Some(Loc::Reg(r)) = loc.get(&v.vreg).copied() else { unreachable!() };
                        loc.insert(v.vreg, Loc::Slot(spill_slots));
                        spill_slots += 1;
                        active.remove(vidx);
                        loc.insert(iv.vreg, Loc::Reg(r));
                        let at = active.partition_point(|a| a.end <= iv.end);
                        active.insert(at, *iv);
                    }
                    _ => {
                        loc.insert(iv.vreg, Loc::Slot(spill_slots));
                        spill_slots += 1;
                    }
                }
            }
        }
    }

    // ---- Frame layout ------------------------------------------------------
    let mut out_arg_words = 0u32;
    let mut has_calls = false;
    for i in f.insts() {
        if let Inst::Call { args, .. } = i {
            has_calls = true;
            out_arg_words = out_arg_words.max(args.len().saturating_sub(4) as u32);
        }
    }
    let out_args_base = 0u32;
    let arrays_base = out_args_base + out_arg_words * 4;
    let mut array_offsets = Vec::with_capacity(f.stack_arrays.len());
    let mut cursor = arrays_base;
    for &words in &f.stack_arrays {
        array_offsets.push(cursor);
        cursor += words * 4;
    }
    let spill_base = cursor;
    cursor += spill_slots * 4;
    let mut saved: Vec<u8> = used_s_regs.into_iter().collect();
    saved.sort_unstable();
    let save_base = cursor;
    cursor += saved.len() as u32 * 4;
    // Leaf functions never clobber `ra`, so they skip the save/restore.
    let save_ra = has_calls;
    let ra_off = cursor;
    if save_ra {
        cursor += 4;
    }
    let frame = cursor.div_ceil(abi::STACK_ALIGN) * abi::STACK_ALIGN;

    // ---- Code selection ------------------------------------------------------
    let ctx = Emitter {
        f,
        loc,
        spill_base,
        array_offsets,
        save_base,
        saved,
        save_ra,
        ra_off,
        frame,
    };
    ctx.emit()
}

struct Emitter<'a> {
    f: &'a IrFunction,
    loc: HashMap<VReg, Loc>,
    spill_base: u32,
    array_offsets: Vec<u32>,
    save_base: u32,
    saved: Vec<u8>,
    save_ra: bool,
    ra_off: u32,
    frame: u32,
}

impl Emitter<'_> {
    fn slot_off(&self, slot: u32) -> i32 {
        (self.spill_base + slot * 4) as i32
    }

    fn label(&self, bb: BlockId) -> String {
        format!(".L{}_{}", self.f.name, bb)
    }

    /// Materializes a 32-bit constant into `rd`.
    fn li(ops: &mut Vec<MOp>, rd: u8, value: i32) {
        if (-8192..8192).contains(&value) {
            ops.push(MOp::AluImm { op: AluOp::Add, rd, rs1: abi::ZERO, imm: value });
        } else {
            let u = value as u32;
            ops.push(MOp::LuiConst { rd, hi: u >> 13 });
            ops.push(MOp::OriConst { rd, rs1: rd, lo: u & 0x1FFF });
        }
    }

    /// Reads an operand into a register, using `scratch` when necessary.
    fn read(&self, ops: &mut Vec<MOp>, op: Operand, scratch: u8) -> u8 {
        match op {
            Operand::Const(c) => {
                if c == 0 {
                    return abi::ZERO;
                }
                Self::li(ops, scratch, c);
                scratch
            }
            Operand::Reg(v) => match self.loc[&v] {
                Loc::Reg(r) => r,
                Loc::Slot(s) => {
                    ops.push(MOp::Load { rd: scratch, base: abi::SP, off: self.slot_off(s) });
                    scratch
                }
            },
        }
    }

    /// Returns the register a definition should target, plus the spill-back
    /// slot when the value lives in memory.
    fn def(&self, v: VReg, scratch: u8) -> (u8, Option<i32>) {
        match self.loc[&v] {
            Loc::Reg(r) => (r, None),
            Loc::Slot(s) => (scratch, Some(self.slot_off(s))),
        }
    }

    fn spill_back(ops: &mut Vec<MOp>, reg: u8, slot: Option<i32>) {
        if let Some(off) = slot {
            ops.push(MOp::Store { rs: reg, base: abi::SP, off });
        }
    }

    /// Copies `src` register into the location of vreg `dst`.
    fn write_move(&self, ops: &mut Vec<MOp>, dst: VReg, src: u8) {
        match self.loc[&dst] {
            Loc::Reg(r) => {
                if r != src {
                    ops.push(MOp::AluImm { op: AluOp::Add, rd: r, rs1: src, imm: 0 });
                }
            }
            Loc::Slot(s) => {
                ops.push(MOp::Store { rs: src, base: abi::SP, off: self.slot_off(s) });
            }
        }
    }

    fn emit(&self) -> MFunc {
        let mut blocks = Vec::with_capacity(self.f.blocks.len());
        for (bi, b) in self.f.blocks.iter().enumerate() {
            let mut ops = Vec::new();
            if bi == 0 {
                self.prologue(&mut ops);
            }
            for inst in &b.insts {
                self.inst(&mut ops, inst, bi);
            }
            blocks.push(MBlock { label: self.label(bi), ops });
        }
        MFunc { name: self.f.name.clone(), blocks }
    }

    fn prologue(&self, ops: &mut Vec<MOp>) {
        let frame = self.frame as i32;
        if frame > 0 {
            // Frames beyond the immediate range are not supported (KC stack
            // arrays are small); keep the check explicit.
            assert!(frame < 8192, "frame size {frame} exceeds the immediate range");
            ops.push(MOp::AluImm { op: AluOp::Add, rd: abi::SP, rs1: abi::SP, imm: -frame });
        }
        if self.save_ra {
            ops.push(MOp::Store { rs: abi::RA, base: abi::SP, off: self.ra_off as i32 });
        }
        for (i, &s) in self.saved.iter().enumerate() {
            ops.push(MOp::Store { rs: s, base: abi::SP, off: (self.save_base + 4 * i as u32) as i32 });
        }
        // Move incoming arguments into their allocated homes.
        for (i, &param) in self.f.params.iter().enumerate() {
            if !self.loc.contains_key(&param) {
                continue; // unused parameter
            }
            if i < usize::from(abi::NUM_ARG_REGS) {
                self.write_move(ops, param, abi::A0 + i as u8);
            } else {
                let off = self.frame as i32 + 4 * (i as i32 - i32::from(abi::NUM_ARG_REGS));
                let (rd, back) = self.def(param, SCRATCH[0]);
                ops.push(MOp::Load { rd, base: abi::SP, off });
                Self::spill_back(ops, rd, back);
            }
        }
    }

    fn epilogue(&self, ops: &mut Vec<MOp>) {
        for (i, &s) in self.saved.iter().enumerate() {
            ops.push(MOp::Load { rd: s, base: abi::SP, off: (self.save_base + 4 * i as u32) as i32 });
        }
        if self.save_ra {
            ops.push(MOp::Load { rd: abi::RA, base: abi::SP, off: self.ra_off as i32 });
        }
        if self.frame > 0 {
            ops.push(MOp::AluImm {
                op: AluOp::Add,
                rd: abi::SP,
                rs1: abi::SP,
                imm: self.frame as i32,
            });
        }
        ops.push(MOp::Ret);
    }

    fn inst(&self, ops: &mut Vec<MOp>, inst: &Inst, bi: BlockId) {
        match inst {
            Inst::Bin { op, dst, a, b } => self.bin(ops, *op, *dst, *a, *b),
            Inst::Cmp { cond, dst, a, b } => self.cmp(ops, *cond, *dst, *a, *b),
            Inst::Li { dst, value } => {
                let (rd, back) = self.def(*dst, SCRATCH[0]);
                Self::li(ops, rd, *value);
                Self::spill_back(ops, rd, back);
            }
            Inst::La { dst, symbol } => {
                let (rd, back) = self.def(*dst, SCRATCH[0]);
                ops.push(MOp::LuiSym { rd, symbol: symbol.clone() });
                ops.push(MOp::OriSym { rd, rs1: rd, symbol: symbol.clone() });
                Self::spill_back(ops, rd, back);
            }
            Inst::LocalAddr { dst, slot } => {
                let off = self.array_offsets[*slot as usize] as i32;
                let (rd, back) = self.def(*dst, SCRATCH[0]);
                ops.push(MOp::AluImm { op: AluOp::Add, rd, rs1: abi::SP, imm: off });
                Self::spill_back(ops, rd, back);
            }
            Inst::Load { dst, base, offset } => {
                let b = self.read(ops, *base, SCRATCH[0]);
                let (rd, back) = self.def(*dst, SCRATCH[1]);
                ops.push(MOp::Load { rd, base: b, off: *offset });
                Self::spill_back(ops, rd, back);
            }
            Inst::Store { src, base, offset } => {
                let b = self.read(ops, *base, SCRATCH[0]);
                let s = self.read(ops, *src, SCRATCH[1]);
                ops.push(MOp::Store { rs: s, base: b, off: *offset });
            }
            Inst::Call { dst, func, args } => {
                for (i, a) in args.iter().enumerate() {
                    if i < usize::from(abi::NUM_ARG_REGS) {
                        let target = abi::A0 + i as u8;
                        match a {
                            Operand::Const(c) => Self::li(ops, target, *c),
                            Operand::Reg(v) => match self.loc[v] {
                                Loc::Reg(r) => {
                                    ops.push(MOp::AluImm {
                                        op: AluOp::Add,
                                        rd: target,
                                        rs1: r,
                                        imm: 0,
                                    });
                                }
                                Loc::Slot(s) => ops.push(MOp::Load {
                                    rd: target,
                                    base: abi::SP,
                                    off: self.slot_off(s),
                                }),
                            },
                        }
                    } else {
                        let r = self.read(ops, *a, SCRATCH[0]);
                        let off = 4 * (i as i32 - i32::from(abi::NUM_ARG_REGS));
                        ops.push(MOp::Store { rs: r, base: abi::SP, off });
                    }
                }
                ops.push(MOp::Call { func: func.clone() });
                if let Some(d) = dst {
                    if self.loc.contains_key(d) {
                        self.write_move(ops, *d, abi::RV);
                    }
                }
            }
            Inst::Br { cond, a, b, then_bb, else_bb } => {
                let ra = self.read(ops, *a, SCRATCH[0]);
                let rb = self.read(ops, *b, SCRATCH[1]);
                ops.push(MOp::Br { cond: *cond, rs1: ra, rs2: rb, label: self.label(*then_bb) });
                if *else_bb != bi + 1 {
                    ops.push(MOp::Jmp { label: self.label(*else_bb) });
                }
                // A fall-through else edge still needs the jump when it is
                // the last block; the scheduler/emitter keep layout order,
                // so only the adjacent case may elide it.
                if *else_bb == bi + 1 {
                    // fall through
                }
            }
            Inst::Jmp(target) => {
                if *target != bi + 1 {
                    ops.push(MOp::Jmp { label: self.label(*target) });
                }
            }
            Inst::Ret(value) => {
                if let Some(v) = value {
                    match v {
                        Operand::Const(c) => Self::li(ops, abi::RV, *c),
                        Operand::Reg(reg) => match self.loc.get(reg) {
                            Some(Loc::Reg(r)) => ops.push(MOp::AluImm {
                                op: AluOp::Add,
                                rd: abi::RV,
                                rs1: *r,
                                imm: 0,
                            }),
                            Some(Loc::Slot(s)) => ops.push(MOp::Load {
                                rd: abi::RV,
                                base: abi::SP,
                                off: self.slot_off(*s),
                            }),
                            None => Self::li(ops, abi::RV, 0),
                        },
                    }
                }
                self.epilogue(ops);
            }
        }
    }

    fn bin(&self, ops: &mut Vec<MOp>, op: AluOp, dst: VReg, a: Operand, b: Operand) {
        if !self.loc.contains_key(&dst) {
            return; // fully dead definition
        }
        let imm_ok = |op: AluOp, c: i32| -> bool {
            match op {
                AluOp::Add | AluOp::Slt | AluOp::Sltu => (-8192..8192).contains(&c),
                AluOp::And | AluOp::Or | AluOp::Xor => (0..8192).contains(&c),
                AluOp::Sll | AluOp::Srl | AluOp::Sra => (0..32).contains(&c),
                _ => false,
            }
        };
        let (rd, back) = self.def(dst, SCRATCH[2]);
        match (a, b) {
            (a, Operand::Const(c)) if imm_ok(op, c) => {
                let ra = self.read(ops, a, SCRATCH[0]);
                ops.push(MOp::AluImm { op, rd, rs1: ra, imm: c });
            }
            (a, Operand::Const(c)) if op == AluOp::Sub && imm_ok(AluOp::Add, -c) => {
                let ra = self.read(ops, a, SCRATCH[0]);
                ops.push(MOp::AluImm { op: AluOp::Add, rd, rs1: ra, imm: -c });
            }
            _ => {
                let ra = self.read(ops, a, SCRATCH[0]);
                let rb = self.read(ops, b, SCRATCH[1]);
                ops.push(MOp::Alu { op, rd, rs1: ra, rs2: rb });
            }
        }
        Self::spill_back(ops, rd, back);
    }

    fn cmp(&self, ops: &mut Vec<MOp>, cond: CondOp, dst: VReg, a: Operand, b: Operand) {
        if !self.loc.contains_key(&dst) {
            return;
        }
        let (rd, back) = self.def(dst, SCRATCH[2]);
        let ra = self.read(ops, a, SCRATCH[0]);
        let rb = self.read(ops, b, SCRATCH[1]);
        match cond {
            CondOp::Lt => ops.push(MOp::Alu { op: AluOp::Slt, rd, rs1: ra, rs2: rb }),
            CondOp::Ltu => ops.push(MOp::Alu { op: AluOp::Sltu, rd, rs1: ra, rs2: rb }),
            CondOp::Ge => {
                ops.push(MOp::Alu { op: AluOp::Slt, rd, rs1: ra, rs2: rb });
                ops.push(MOp::AluImm { op: AluOp::Xor, rd, rs1: rd, imm: 1 });
            }
            CondOp::Geu => {
                ops.push(MOp::Alu { op: AluOp::Sltu, rd, rs1: ra, rs2: rb });
                ops.push(MOp::AluImm { op: AluOp::Xor, rd, rs1: rd, imm: 1 });
            }
            CondOp::Eq => {
                ops.push(MOp::Alu { op: AluOp::Xor, rd, rs1: ra, rs2: rb });
                ops.push(MOp::AluImm { op: AluOp::Sltu, rd, rs1: rd, imm: 1 });
            }
            CondOp::Ne => {
                ops.push(MOp::Alu { op: AluOp::Xor, rd, rs1: ra, rs2: rb });
                ops.push(MOp::Alu { op: AluOp::Sltu, rd, rs1: abi::ZERO, rs2: rd });
            }
        }
        Self::spill_back(ops, rd, back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_func(insts: Vec<Inst>, params: Vec<VReg>, vregs: u32) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params,
            blocks: vec![Block { insts }],
            vreg_count: vregs,
            stack_arrays: Vec::new(),
            returns_value: true,
        }
    }

    #[test]
    fn allocates_simple_add() {
        let f = simple_func(
            vec![
                Inst::Bin { op: AluOp::Add, dst: 2, a: Operand::Reg(0), b: Operand::Reg(1) },
                Inst::Ret(Some(Operand::Reg(2))),
            ],
            vec![0, 1],
            3,
        );
        let m = allocate(&f);
        assert_eq!(m.blocks.len(), 1);
        // Must contain the add, the return-value move, and a ret.
        assert!(m.blocks[0].ops.iter().any(|o| matches!(o, MOp::Alu { op: AluOp::Add, .. })));
        assert!(m.blocks[0].ops.iter().any(|o| matches!(o, MOp::Ret)));
    }

    #[test]
    fn call_crossing_values_use_callee_saved() {
        // v2 is live across the call → must land in an s-register.
        let f = simple_func(
            vec![
                Inst::Li { dst: 2, value: 5 },
                Inst::Call { dst: Some(3), func: "g".into(), args: vec![] },
                Inst::Bin { op: AluOp::Add, dst: 4, a: Operand::Reg(2), b: Operand::Reg(3) },
                Inst::Ret(Some(Operand::Reg(4))),
            ],
            vec![],
            5,
        );
        let m = allocate(&f);
        let ops = &m.blocks[0].ops;
        // Find the li (addi rd, zero, 5): its target must be an s-register.
        let li = ops
            .iter()
            .find_map(|o| match o {
                MOp::AluImm { op: AluOp::Add, rd, rs1: 0, imm: 5 } => Some(*rd),
                _ => None,
            })
            .expect("li present");
        assert!(S_REGS.contains(&li), "li target r{li} is not callee-saved");
        // Callee-saved register must be saved and restored.
        assert!(ops.iter().any(|o| matches!(o, MOp::Store { rs, .. } if *rs == li)));
        assert!(ops.iter().any(|o| matches!(o, MOp::Load { rd, .. } if *rd == li)));
    }

    #[test]
    fn spills_when_pressure_exceeds_pool() {
        // 30 simultaneously live values exceed the 20 allocatable registers.
        let mut insts = Vec::new();
        for v in 0..30u32 {
            insts.push(Inst::Li { dst: v, value: v as i32 });
        }
        // Use them all afterwards so they're simultaneously live.
        let mut acc = 30u32;
        insts.push(Inst::Bin { op: AluOp::Add, dst: acc, a: Operand::Reg(0), b: Operand::Reg(1) });
        for v in 2..30u32 {
            let next = acc + 1;
            insts.push(Inst::Bin {
                op: AluOp::Add,
                dst: next,
                a: Operand::Reg(acc),
                b: Operand::Reg(v),
            });
            acc = next;
        }
        insts.push(Inst::Ret(Some(Operand::Reg(acc))));
        let f = simple_func(insts, vec![], 64);
        let m = allocate(&f);
        // Spill traffic must exist: stores to sp beyond the save area.
        let has_spill_store = m.blocks[0]
            .ops
            .iter()
            .any(|o| matches!(o, MOp::Store { base, .. } if *base == abi::SP));
        assert!(has_spill_store);
    }

    #[test]
    fn big_constants_materialize_via_lui_ori() {
        let f = simple_func(
            vec![Inst::Li { dst: 0, value: 0x12345678 }, Inst::Ret(Some(Operand::Reg(0)))],
            vec![],
            1,
        );
        let m = allocate(&f);
        assert!(m.blocks[0].ops.iter().any(|o| matches!(o, MOp::LuiConst { .. })));
        assert!(m.blocks[0].ops.iter().any(|o| matches!(o, MOp::OriConst { .. })));
    }

    #[test]
    fn stack_arrays_addressed_off_sp() {
        let mut f = simple_func(
            vec![
                Inst::LocalAddr { dst: 0, slot: 0 },
                Inst::Store { src: Operand::Const(7), base: Operand::Reg(0), offset: 4 },
                Inst::Ret(Some(Operand::Const(0))),
            ],
            vec![],
            1,
        );
        f.stack_arrays = vec![16];
        let m = allocate(&f);
        assert!(m.blocks[0]
            .ops
            .iter()
            .any(|o| matches!(o, MOp::AluImm { op: AluOp::Add, rs1: 29, .. })));
    }

    #[test]
    fn more_than_four_args_go_on_stack() {
        let f = simple_func(
            vec![
                Inst::Call {
                    dst: Some(0),
                    func: "g".into(),
                    args: vec![
                        Operand::Const(1),
                        Operand::Const(2),
                        Operand::Const(3),
                        Operand::Const(4),
                        Operand::Const(5),
                        Operand::Const(6),
                    ],
                },
                Inst::Ret(Some(Operand::Reg(0))),
            ],
            vec![],
            1,
        );
        let m = allocate(&f);
        let ops = &m.blocks[0].ops;
        // Outgoing stack stores at sp+0 and sp+4.
        assert!(ops.iter().any(|o| matches!(o, MOp::Store { base: 29, off: 0, .. })));
        assert!(ops.iter().any(|o| matches!(o, MOp::Store { base: 29, off: 4, .. })));
    }

    #[test]
    fn comparison_materialization() {
        for (cond, expect_two_ops) in [
            (CondOp::Lt, false),
            (CondOp::Ge, true),
            (CondOp::Eq, true),
            (CondOp::Ne, true),
        ] {
            let f = simple_func(
                vec![
                    Inst::Cmp { cond, dst: 2, a: Operand::Reg(0), b: Operand::Reg(1) },
                    Inst::Ret(Some(Operand::Reg(2))),
                ],
                vec![0, 1],
                3,
            );
            let m = allocate(&f);
            let n = m.blocks[0]
                .ops
                .iter()
                .filter(|o| {
                    matches!(
                        o,
                        MOp::Alu { op: AluOp::Slt | AluOp::Sltu | AluOp::Xor, .. }
                            | MOp::AluImm { op: AluOp::Sltu | AluOp::Xor, .. }
                    )
                })
                .count();
            assert_eq!(n == 2, expect_two_ops, "{cond:?} emitted {n} ops");
        }
    }
}
