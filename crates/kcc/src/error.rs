//! Compiler diagnostics.

use std::fmt;

/// A compilation error with source-line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line the error was detected on (0 when unknown).
    pub line: u32,
    /// Compilation phase that rejected the input.
    pub phase: Phase,
    /// Problem description.
    pub message: String,
}

/// Compiler phase names for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis / type checking.
    Sema,
    /// IR lowering.
    Lower,
    /// Code generation.
    Codegen,
}

impl CompileError {
    pub(crate) fn new(phase: Phase, line: u32, message: impl Into<String>) -> Self {
        CompileError { line, phase, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "type",
            Phase::Lower => "lower",
            Phase::Codegen => "codegen",
        };
        if self.line > 0 {
            write!(f, "line {}: {} error: {}", self.line, phase, self.message)
        } else {
            write!(f, "{} error: {}", phase, self.message)
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_line_and_phase() {
        let e = CompileError::new(Phase::Sema, 12, "mismatched types");
        assert_eq!(e.to_string(), "line 12: type error: mismatched types");
        let e = CompileError::new(Phase::Codegen, 0, "too many arguments");
        assert_eq!(e.to_string(), "codegen error: too many arguments");
    }
}
