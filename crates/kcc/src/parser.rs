//! Recursive-descent parser for KC.

use crate::ast::*;
use crate::error::{CompileError, Phase};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

enum ParsedFunc {
    Definition(FuncDecl),
    Prototype(FuncDecl),
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(Phase::Parse, line, msg)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(err(self.line(), format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            other => Err(err(self.line(), format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses a base type (`int`, `uint`, `void`) plus pointer stars.
    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let mut ty = match self.next() {
            Some(Tok::KwInt) => Type::Int,
            Some(Tok::KwUint) => Type::Uint,
            Some(Tok::KwVoid) => Type::Void,
            other => return Err(err(self.line(), format!("expected type, found {other:?}"))),
        };
        while self.eat(&Tok::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Some(Tok::KwInt | Tok::KwUint | Tok::KwVoid))
    }

    fn parse_program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        while self.peek().is_some() {
            let line = self.line();
            let ty = self.parse_type()?;
            let name = self.ident()?;
            if self.peek() == Some(&Tok::LParen) {
                match self.parse_function(ty, name, line)? {
                    ParsedFunc::Definition(f) => program.functions.push(f),
                    ParsedFunc::Prototype(f) => program.prototypes.push(f),
                }
            } else {
                program.globals.push(self.parse_global(ty, name, line)?);
            }
        }
        Ok(program)
    }

    fn parse_global(
        &mut self,
        ty: Type,
        name: String,
        line: u32,
    ) -> Result<GlobalDecl, CompileError> {
        let mut array = None;
        if self.eat(&Tok::LBracket) {
            match self.next() {
                Some(Tok::Int(n)) if *n > 0 => array = Some(*n as u32),
                other => return Err(err(line, format!("bad array size {other:?}"))),
            }
            self.expect(&Tok::RBracket, "]")?;
        }
        let mut init = Vec::new();
        if self.eat(&Tok::Assign) {
            if array.is_some() {
                self.expect(&Tok::LBrace, "{")?;
                loop {
                    init.push(self.parse_const_int()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    // Allow a trailing comma before `}`.
                    if self.peek() == Some(&Tok::RBrace) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace, "}")?;
                if init.len() > array.unwrap_or(0) as usize {
                    return Err(err(line, "too many initializers"));
                }
            } else {
                init.push(self.parse_const_int()?);
            }
        }
        self.expect(&Tok::Semi, ";")?;
        Ok(GlobalDecl { name, ty, array, init, line })
    }

    /// Constant integer expression (literals with optional unary minus).
    fn parse_const_int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat(&Tok::Minus);
        match self.next() {
            Some(Tok::Int(v)) => Ok(if neg { -v } else { *v }),
            other => Err(err(self.line(), format!("expected constant, found {other:?}"))),
        }
    }

    /// Parses a function definition or a prototype.
    fn parse_function(
        &mut self,
        ret: Type,
        name: String,
        line: u32,
    ) -> Result<ParsedFunc, CompileError> {
        self.expect(&Tok::LParen, "(")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                if self.peek() == Some(&Tok::KwVoid) && params.is_empty() {
                    // `f(void)`.
                    let save = self.pos;
                    self.next();
                    if self.eat(&Tok::RParen) {
                        break;
                    }
                    self.pos = save;
                }
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                // `int a[]` parameter syntax decays to a pointer.
                let ty = if self.eat(&Tok::LBracket) {
                    self.expect(&Tok::RBracket, "]")?;
                    Type::Ptr(Box::new(ty))
                } else {
                    ty
                };
                params.push((pname, ty));
                if !self.eat(&Tok::Comma) {
                    self.expect(&Tok::RParen, ")")?;
                    break;
                }
            }
        }
        if self.eat(&Tok::Semi) {
            return Ok(ParsedFunc::Prototype(FuncDecl {
                name,
                ret,
                params,
                body: Vec::new(),
                line,
            }));
        }
        self.expect(&Tok::LBrace, "{")?;
        let body = self.parse_block_body()?;
        Ok(ParsedFunc::Definition(FuncDecl { name, ret, params, body, line }))
    }

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(err(self.line(), "unexpected end of input in block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::LBrace) => {
                self.next();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            Some(Tok::KwIf) => {
                self.next();
                self.expect(&Tok::LParen, "(")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                let then_body = self.parse_stmt_as_block()?;
                let else_body =
                    if self.eat(&Tok::KwElse) { self.parse_stmt_as_block()? } else { Vec::new() };
                Ok(Stmt::If { cond, then_body, else_body })
            }
            Some(Tok::KwWhile) => {
                self.next();
                self.expect(&Tok::LParen, "(")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::KwFor) => {
                self.next();
                self.expect(&Tok::LParen, "(")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = self.parse_simple_stmt()?;
                    self.expect(&Tok::Semi, ";")?;
                    Some(Box::new(s))
                };
                let cond = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi, ";")?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.parse_simple_stmt()?))
                };
                self.expect(&Tok::RParen, ")")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            Some(Tok::KwReturn) => {
                self.next();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Return(value, line))
            }
            Some(Tok::KwBreak) => {
                self.next();
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Break(line))
            }
            Some(Tok::KwContinue) => {
                self.next();
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let s = self.parse_simple_stmt()?;
                self.expect(&Tok::Semi, ";")?;
                Ok(s)
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let s = self.parse_stmt()?;
        Ok(match s {
            Stmt::Block(b) => b,
            other => vec![other],
        })
    }

    /// Declaration, assignment, increment, or expression — no trailing `;`.
    fn parse_simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.is_type_start() {
            let ty = self.parse_type()?;
            let name = self.ident()?;
            let mut array = None;
            if self.eat(&Tok::LBracket) {
                match self.next() {
                    Some(Tok::Int(n)) if *n > 0 => array = Some(*n as u32),
                    other => return Err(err(line, format!("bad array size {other:?}"))),
                }
                self.expect(&Tok::RBracket, "]")?;
            }
            let init = if self.eat(&Tok::Assign) {
                if array.is_some() {
                    return Err(err(line, "local array initializers are not supported"));
                }
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { name, ty, array, init, line });
        }
        // Assignment or expression: parse an expression, then look for `=`,
        // compound assignment, or `++`/`--`.
        let target = self.parse_expr()?;
        let compound = match self.peek() {
            Some(Tok::Assign) => Some(None),
            Some(Tok::PlusEq) => Some(Some(BinOp::Add)),
            Some(Tok::MinusEq) => Some(Some(BinOp::Sub)),
            Some(Tok::StarEq) => Some(Some(BinOp::Mul)),
            Some(Tok::SlashEq) => Some(Some(BinOp::Div)),
            Some(Tok::PlusPlus) => {
                self.next();
                let one = Expr { kind: ExprKind::Int(1), line };
                return Ok(Stmt::Assign { target, op: Some(BinOp::Add), value: one, line });
            }
            Some(Tok::MinusMinus) => {
                self.next();
                let one = Expr { kind: ExprKind::Int(1), line };
                return Ok(Stmt::Assign { target, op: Some(BinOp::Sub), value: one, line });
            }
            _ => None,
        };
        if let Some(op) = compound {
            self.next();
            let value = self.parse_expr()?;
            Ok(Stmt::Assign { target, op, value, line })
        } else {
            Ok(Stmt::Expr(target))
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_bin(0)
    }

    /// Precedence-climbing binary expression parser.
    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::OrOr) => (BinOp::LOr, 1),
                Some(Tok::AndAnd) => (BinOp::LAnd, 2),
                Some(Tok::Pipe) => (BinOp::Or, 3),
                Some(Tok::Caret) => (BinOp::Xor, 4),
                Some(Tok::Amp) => (BinOp::And, 5),
                Some(Tok::EqEq) => (BinOp::Eq, 6),
                Some(Tok::Ne) => (BinOp::Ne, 6),
                Some(Tok::Lt) => (BinOp::Lt, 7),
                Some(Tok::Le) => (BinOp::Le, 7),
                Some(Tok::Gt) => (BinOp::Gt, 7),
                Some(Tok::Ge) => (BinOp::Ge, 7),
                Some(Tok::Shl) => (BinOp::Shl, 8),
                Some(Tok::Shr) => (BinOp::Shr, 8),
                Some(Tok::Plus) => (BinOp::Add, 9),
                Some(Tok::Minus) => (BinOp::Sub, 9),
                Some(Tok::Star) => (BinOp::Mul, 10),
                Some(Tok::Slash) => (BinOp::Div, 10),
                Some(Tok::Percent) => (BinOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.next();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                let e = self.parse_unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnOp::Neg, Box::new(e)), line })
            }
            Some(Tok::Tilde) => {
                self.next();
                let e = self.parse_unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnOp::Not, Box::new(e)), line })
            }
            Some(Tok::Bang) => {
                self.next();
                let e = self.parse_unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnOp::LNot, Box::new(e)), line })
            }
            Some(Tok::Star) => {
                self.next();
                let e = self.parse_unary()?;
                Ok(Expr { kind: ExprKind::Deref(Box::new(e)), line })
            }
            Some(Tok::Amp) => {
                self.next();
                let e = self.parse_unary()?;
                Ok(Expr { kind: ExprKind::AddrOf(Box::new(e)), line })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat(&Tok::LBracket) {
                let idx = self.parse_expr()?;
                self.expect(&Tok::RBracket, "]")?;
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr { kind: ExprKind::Int(*v), line }),
            Some(Tok::Str(s)) => Ok(Expr { kind: ExprKind::Str(s.clone()), line }),
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Tok::Comma) {
                                self.expect(&Tok::RParen, ")")?;
                                break;
                            }
                        }
                    }
                    Ok(Expr { kind: ExprKind::Call(name.clone(), args), line })
                } else {
                    Ok(Expr { kind: ExprKind::Var(name.clone()), line })
                }
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            other => Err(err(line, format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a token stream into a program.
pub(crate) fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert!(matches!(f.body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn parses_globals_and_arrays() {
        let p = parse_src("int x = 5; int tab[4] = {1, 2, 3, 4}; uint big[100];");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].init, vec![5]);
        assert_eq!(p.globals[1].array, Some(4));
        assert_eq!(p.globals[1].init, vec![1, 2, 3, 4]);
        assert_eq!(p.globals[2].array, Some(100));
        assert!(p.globals[2].init.is_empty());
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse_src("int f() { return 1 + 2 * 3 < 4 & 5; }");
        // ((1 + (2*3)) < 4) & 5
        match &p.functions[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Binary(BinOp::And, lhs, _) => match &lhs.kind {
                    ExprKind::Binary(BinOp::Lt, ll, _) => {
                        assert!(matches!(ll.kind, ExprKind::Binary(BinOp::Add, _, _)));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_flow_statements() {
        let p = parse_src(
            "void f(int n) {
                int i;
                for (i = 0; i < n; i++) { if (i == 3) break; else continue; }
                while (n > 0) n -= 1;
            }",
        );
        let body = &p.functions[0].body;
        assert!(matches!(body[1], Stmt::For { .. }));
        assert!(matches!(body[2], Stmt::While { .. }));
    }

    #[test]
    fn pointers_and_indexing() {
        let p = parse_src("int f(int* p, int a[]) { *p = a[2]; return p[1]; }");
        let f = &p.functions[0];
        assert_eq!(f.params[0].1, Type::Ptr(Box::new(Type::Int)));
        assert_eq!(f.params[1].1, Type::Ptr(Box::new(Type::Int)));
        assert!(matches!(
            &f.body[0],
            Stmt::Assign { target: Expr { kind: ExprKind::Deref(_), .. }, .. }
        ));
    }

    #[test]
    fn compound_assignment_and_increments() {
        let p = parse_src("void f() { int x = 0; x += 2; x *= 3; x--; }");
        let body = &p.functions[0].body;
        assert!(matches!(body[1], Stmt::Assign { op: Some(BinOp::Add), .. }));
        assert!(matches!(body[2], Stmt::Assign { op: Some(BinOp::Mul), .. }));
        assert!(matches!(body[3], Stmt::Assign { op: Some(BinOp::Sub), .. }));
    }

    #[test]
    fn calls_and_strings() {
        let p = parse_src("void f() { puts(\"hi\"); g(1, 2, 3); }");
        let body = &p.functions[0].body;
        match &body[0] {
            Stmt::Expr(Expr { kind: ExprKind::Call(name, args), .. }) => {
                assert_eq!(name, "puts");
                assert!(matches!(args[0].kind, ExprKind::Str(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&lex("int f( {").unwrap()).is_err());
        assert!(parse(&lex("int f() { return 1 }").unwrap()).is_err());
        assert!(parse(&lex("int x[0];").unwrap()).is_err());
        assert!(parse(&lex("int f() { int a[2] = 1; }").unwrap()).is_err());
        assert!(parse(&lex("bogus").unwrap()).is_err());
    }

    #[test]
    fn dangling_else_binds_inner() {
        let p = parse_src("void f(int a) { if (a) if (a > 1) g(); else h(); }");
        match &p.functions[0].body[0] {
            Stmt::If { then_body, else_body, .. } => {
                assert!(else_body.is_empty());
                assert!(matches!(&then_body[0], Stmt::If { else_body, .. } if !else_body.is_empty()));
            }
            other => panic!("{other:?}"),
        }
    }
}
