//! `kcc` — the retargetable KAHRISMA compiler.
//!
//! The paper's software framework (§IV) contains an LLVM-based retargetable
//! C/C++ compiler that (1) can target any ISA described in the ADL,
//! (2) emits the `.isa` pseudo directive for the assembler, and (3) supports
//! mixed-ISA applications by compiling individual functions for different
//! ISAs. This crate reproduces that role with a self-contained compiler for
//! a C-like language ("KC"):
//!
//! * **front end** — lexer, recursive-descent parser, and a type checker for
//!   a C subset (`int`/`uint` scalars, pointers, arrays, globals with
//!   initializers, functions with recursion, `if`/`while`/`for`, the full
//!   C operator set with short-circuit `&&`/`||`);
//! * **middle end** — a virtual-register IR with constant folding, copy
//!   propagation, and dead-code elimination;
//! * **back end** — linear-scan register allocation over dataflow liveness
//!   (call-crossing intervals prefer callee-saved registers), and a
//!   latency-aware **VLIW list scheduler** that packs operations into
//!   issue-width bundles using the *same pessimistic memory-dependence
//!   model* as the paper's scheduler (§VI-A: every memory operation depends
//!   on the previous store — "we do not have an alias analysis and use at
//!   the moment the same pessimistic model for scheduling");
//! * **mixed-ISA support** — per-function ISA assignment; cross-ISA calls
//!   are wrapped in `switchtarget` sequences with the switch-back encoded in
//!   the callee's ISA (the processor returns in that ISA, §V-D).
//!
//! The same source program can therefore be compiled for every issue width
//! of the family — exactly what Figure 4 and Table II require.
//!
//! # Example
//!
//! ```
//! use kahrisma_kcc::{compile, CompileOptions};
//! use kahrisma_isa::IsaKind;
//!
//! let source = r#"
//!     int add3(int a, int b, int c) { return a + b + c; }
//!     int main() { return add3(20, 21, 1); }
//! "#;
//! let asm = compile(source, &CompileOptions::for_isa(IsaKind::Vliw4))?;
//! assert!(asm.contains(".isa vliw4"));
//! # Ok::<(), kahrisma_kcc::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod emit;
mod error;
mod ir;
mod lexer;
mod lower;
mod machine;
mod opt;
mod parser;
mod regalloc;
mod sched;
mod sema;

pub use error::CompileError;

use std::collections::HashMap;

use kahrisma_isa::IsaKind;

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// ISA every function is compiled for unless overridden.
    pub isa: IsaKind,
    /// Per-function ISA overrides (mixed-ISA applications, paper §IV).
    pub function_isa: HashMap<String, IsaKind>,
    /// Run the IR optimizer (constant folding, copy propagation, DCE).
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { isa: IsaKind::Risc, function_isa: HashMap::new(), optimize: true }
    }
}

impl CompileOptions {
    /// Options targeting a single ISA for the whole program.
    #[must_use]
    pub fn for_isa(isa: IsaKind) -> Self {
        CompileOptions { isa, ..CompileOptions::default() }
    }

    /// Adds a per-function ISA override.
    #[must_use]
    pub fn with_function_isa(mut self, function: &str, isa: IsaKind) -> Self {
        self.function_isa.insert(function.to_string(), isa);
        self
    }
}

/// Compiles KC source code into KAHRISMA assembly for the configured ISA(s).
///
/// The output is a complete assembly unit (text, data, rodata sections,
/// `.isa`/`.func` directives) accepted by [`kahrisma_asm::assemble`]; link it
/// together with the generated C-library stubs, e.g. via
/// [`kahrisma_asm::build`].
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic, or
/// semantic problem, with line information.
pub fn compile(source: &str, options: &CompileOptions) -> Result<String, CompileError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    let program = sema::check(&ast)?;
    let mut ir = lower::lower(&program)?;
    if options.optimize {
        for f in &mut ir.functions {
            opt::optimize(f);
        }
    }
    emit::emit(&ir, options)
}

/// Convenience: compiles `source` and builds a runnable executable (links
/// against the generated C-library stubs).
///
/// # Errors
///
/// Returns compile errors boxed together with assembler/linker errors.
pub fn compile_to_executable(
    source: &str,
    options: &CompileOptions,
) -> Result<kahrisma_elf::Executable, Box<dyn std::error::Error + Send + Sync>> {
    let asm = compile(source, options)?;
    Ok(kahrisma_asm::build(&[("program.s", &asm)])?)
}
