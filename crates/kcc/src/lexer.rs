//! Lexical analysis for the KC language.

use crate::error::{CompileError, Phase};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    // Keywords.
    KwInt,
    KwUint,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PlusPlus,
    MinusMinus,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: u32,
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(Phase::Lex, line, msg)
}

/// Tokenizes KC source.
pub(crate) fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "uint" | "unsigned" => Tok::KwUint,
                    "void" => Tok::KwVoid,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    other => Tok::Ident(other.to_string()),
                };
                tokens.push(Token { tok, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let value = if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hstart = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hstart == i {
                        return Err(err(line, "empty hex literal"));
                    }
                    i64::from_str_radix(&source[hstart..i], 16)
                        .map_err(|_| err(line, "hex literal too large"))?
                } else {
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    source[start..i]
                        .parse()
                        .map_err(|_| err(line, "integer literal too large"))?
                };
                tokens.push(Token { tok: Tok::Int(value), line });
            }
            '\'' => {
                i += 1;
                let ch = if bytes.get(i) == Some(&b'\\') {
                    i += 1;
                    let e = *bytes.get(i).ok_or_else(|| err(line, "unterminated char"))?;
                    i += 1;
                    match e {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        other => return Err(err(line, format!("bad escape \\{}", other as char))),
                    }
                } else {
                    let c = *bytes.get(i).ok_or_else(|| err(line, "unterminated char"))?;
                    i += 1;
                    c
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal"));
                }
                i += 1;
                tokens.push(Token { tok: Tok::Int(i64::from(ch)), line });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err(line, "unterminated string literal")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            let e = *bytes.get(i).ok_or_else(|| err(line, "unterminated string"))?;
                            i += 1;
                            s.push(match e {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(line, format!("bad escape \\{}", other as char)));
                                }
                            });
                        }
                        Some(&c) => {
                            if c == b'\n' {
                                line += 1;
                            }
                            s.push(c as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { tok: Tok::Str(s), line });
            }
            _ => {
                let two = if i + 1 < bytes.len() { &source[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "+=" => (Tok::PlusEq, 2),
                    "-=" => (Tok::MinusEq, 2),
                    "*=" => (Tok::StarEq, 2),
                    "/=" => (Tok::SlashEq, 2),
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '~' => (Tok::Tilde, 1),
                        '!' => (Tok::Bang, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        other => return Err(err(line, format!("unexpected character `{other}`"))),
                    },
                };
                tokens.push(Token { tok, line });
                i += len;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("int x uint _y2 void while"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::KwUint,
                Tok::Ident("_y2".into()),
                Tok::KwVoid,
                Tok::KwWhile,
            ]
        );
        assert_eq!(toks("unsigned"), vec![Tok::KwUint]);
    }

    #[test]
    fn numbers_and_chars() {
        assert_eq!(toks("42 0x2A '\\n' 'A'"), vec![
            Tok::Int(42),
            Tok::Int(42),
            Tok::Int(10),
            Tok::Int(65)
        ]);
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(toks("<<=  >= >> > == = !="), vec![
            Tok::Shl,
            Tok::Assign,
            Tok::Ge,
            Tok::Shr,
            Tok::Gt,
            Tok::EqEq,
            Tok::Assign,
            Tok::Ne,
        ]);
        assert_eq!(toks("a+=b++ - --c"), vec![
            Tok::Ident("a".into()),
            Tok::PlusEq,
            Tok::Ident("b".into()),
            Tok::PlusPlus,
            Tok::Minus,
            Tok::MinusMinus,
            Tok::Ident("c".into()),
        ]);
    }

    #[test]
    fn comments_skipped_lines_tracked() {
        let ts = lex("a // c\nb /* x\ny */ c").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#""a\n\"b\"""#), vec![Tok::Str("a\n\"b\"".into())]);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("@").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
