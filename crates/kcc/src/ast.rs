//! Abstract syntax tree of the KC language.

/// A KC type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Type {
    /// Signed 32-bit integer.
    Int,
    /// Unsigned 32-bit integer.
    Uint,
    /// No value (function returns only).
    Void,
    /// Pointer to an element type.
    Ptr(Box<Type>),
}

impl Type {
    pub(crate) fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    pub(crate) fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    pub(crate) fn is_unsigned(&self) -> bool {
        matches!(self, Type::Uint | Type::Ptr(_))
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Uint => write!(f, "uint"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

impl BinOp {
    pub(crate) fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    pub(crate) fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
    /// Logical negation `!`.
    LNot,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ExprKind {
    Int(i64),
    Str(String),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `*ptr`.
    Deref(Box<Expr>),
    /// `&lvalue`.
    AddrOf(Box<Expr>),
    Call(String, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stmt {
    /// Local declaration: `int x = e;` or `int a[N];`.
    Decl {
        name: String,
        ty: Type,
        array: Option<u32>,
        init: Option<Expr>,
        line: u32,
    },
    /// Expression statement (calls).
    Expr(Expr),
    /// `lvalue = value;` — `op` is set for compound assignments (`+=`).
    Assign {
        target: Expr,
        op: Option<BinOp>,
        value: Expr,
        line: u32,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>, u32),
    Break(u32),
    Continue(u32),
    Block(Vec<Stmt>),
}

/// A global variable or array definition.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GlobalDecl {
    pub name: String,
    pub ty: Type,
    /// `Some(n)` for an array of `n` elements.
    pub array: Option<u32>,
    /// Initializer values (empty → zero-initialized).
    pub init: Vec<i64>,
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FuncDecl {
    pub name: String,
    pub ret: Type,
    pub params: Vec<(String, Type)>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A complete translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Program {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<FuncDecl>,
    /// Prototypes without definitions in this unit (externals resolved at
    /// link time; calls assume the unit's target ISA).
    pub prototypes: Vec<FuncDecl>,
}
