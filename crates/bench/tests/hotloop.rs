//! Integration tests for the flat-arena + superblock hot loop on real
//! workloads: the §VII-A "nearly 100 %" decode-cache hit rate, and the
//! acceptance criterion that the batched path is observationally identical
//! to the per-entry baseline (exit codes, instruction counts, cycle-model
//! statistics) across every shipped workload.

use kahrisma_bench::{Workload, build, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

/// §VII-A reports 99.991 % of detect & decode operations avoided and a
/// nearly-100 % cache hit rate on real workloads; the Dct workload must
/// reproduce that under the arena-backed cache.
#[test]
fn dct_decode_cache_hit_rate_is_nearly_100_percent() {
    let exe = build(Workload::Dct, IsaKind::Risc);
    // The paper's hit rate is a per-resolution figure, so it is asserted on
    // the per-entry path, where every instruction resolves through the
    // cache. (Under superblock batching only run heads resolve, so the few
    // cold misses weigh far more per resolution.)
    let per_entry =
        measure(&exe, SimConfig { superblocks: false, ..SimConfig::default() });
    assert_eq!(per_entry.exit_code, Workload::Dct.expected_exit());
    // ~100 %: every miss is a cold miss (first sight of an address), so the
    // ratio is bounded only by Dct's short run length; the paper's 99.991 %
    // comes from the much longer cjpeg run.
    assert!(
        per_entry.stats.cache_hit_ratio() > 0.98,
        "hit ratio {}",
        per_entry.stats.cache_hit_ratio()
    );
    let misses = per_entry.stats.cache_lookups - per_entry.stats.cache_hits;
    assert_eq!(misses, per_entry.stats.detect_decodes, "non-cold cache miss");

    let m = measure(&exe, SimConfig::default());
    assert_eq!(m.exit_code, Workload::Dct.expected_exit());
    // The detect & decode avoidance (paper: 99.991 % on cjpeg) holds under
    // batching too, at Dct's cold-miss floor.
    assert!(
        m.stats.decode_avoided_ratio() > 0.98,
        "decode avoided {}",
        m.stats.decode_avoided_ratio()
    );
    // Superblock batching actually engaged: far fewer dispatches than
    // instructions.
    assert!(m.stats.superblock_batches > 0);
    assert!(m.stats.superblock_batches < m.stats.instructions);
}

/// Every workload must produce identical exit codes, instruction counts,
/// and cycle-model statistics under the superblock-batched hot loop and the
/// per-entry baseline path (`--baseline-cache`).
#[test]
fn workloads_agree_between_superblock_and_baseline_paths() {
    for workload in Workload::ALL {
        // Each workload on a different ISA keeps runtime tractable while
        // covering RISC and several VLIW widths.
        let isa = match workload {
            Workload::Dct => IsaKind::Risc,
            Workload::Aes => IsaKind::Vliw4,
            Workload::Fft => IsaKind::Vliw2,
            Workload::Quicksort => IsaKind::Risc,
            Workload::Cjpeg => IsaKind::Vliw8,
            Workload::Djpeg => IsaKind::Vliw6,
            _ => IsaKind::Risc,
        };
        let exe = build(workload, isa);
        let model = match workload {
            Workload::Dct => Some(CycleModelKind::Doe),
            Workload::Aes => Some(CycleModelKind::Aie),
            Workload::Fft => Some(CycleModelKind::Ilp),
            _ => None,
        };
        let config = |superblocks: bool| SimConfig {
            superblocks,
            cycle_model: model,
            ..SimConfig::default()
        };
        let new = measure(&exe, config(true));
        let base = measure(&exe, config(false));
        let name = workload.name();
        assert_eq!(new.exit_code, workload.expected_exit(), "{name}");
        assert_eq!(new.exit_code, base.exit_code, "{name}");
        assert_eq!(new.stats.instructions, base.stats.instructions, "{name}");
        assert_eq!(new.stats.operations, base.stats.operations, "{name}");
        assert_eq!(new.stats.nops, base.stats.nops, "{name}");
        assert_eq!(new.stats.mem_reads, base.stats.mem_reads, "{name}");
        assert_eq!(new.stats.mem_writes, base.stats.mem_writes, "{name}");
        assert_eq!(new.stats.taken_branches, base.stats.taken_branches, "{name}");
        assert_eq!(new.stats.isa_switches, base.stats.isa_switches, "{name}");
        assert_eq!(new.stats.simops, base.stats.simops, "{name}");
        assert_eq!(new.cycles, base.cycles, "{name} cycle stats diverge");
    }
}
