//! Integration tests for the flat-arena + superblock hot loop on real
//! workloads: the §VII-A "nearly 100 %" decode-cache hit rate, and the
//! acceptance criterion that the batched path is observationally identical
//! to the per-entry baseline (exit codes, instruction counts, cycle-model
//! statistics) across every shipped workload.

use kahrisma_bench::{BUDGET, Workload, build, measure};
use kahrisma_core::{CycleModelKind, RunOutcome, SimConfig, Simulator, TierMode};
use kahrisma_isa::IsaKind;
use kahrisma_rtl::{RtlConfig, RtlPipeline};

/// The per-workload ISA assignment used across this suite: each workload on
/// a different ISA keeps runtime tractable while covering RISC and several
/// VLIW widths.
fn isa_for(workload: Workload) -> IsaKind {
    match workload {
        Workload::Dct | Workload::Quicksort => IsaKind::Risc,
        Workload::Aes => IsaKind::Vliw4,
        Workload::Fft => IsaKind::Vliw2,
        Workload::Cjpeg => IsaKind::Vliw8,
        Workload::Djpeg => IsaKind::Vliw6,
        _ => IsaKind::Risc,
    }
}

/// The per-workload cycle-model assignment used across this suite.
fn model_for(workload: Workload) -> Option<CycleModelKind> {
    match workload {
        Workload::Dct => Some(CycleModelKind::Doe),
        Workload::Aes => Some(CycleModelKind::Aie),
        Workload::Fft => Some(CycleModelKind::Ilp),
        _ => None,
    }
}

/// §VII-A reports 99.991 % of detect & decode operations avoided and a
/// nearly-100 % cache hit rate on real workloads; the Dct workload must
/// reproduce that under the arena-backed cache.
#[test]
fn dct_decode_cache_hit_rate_is_nearly_100_percent() {
    let exe = build(Workload::Dct, IsaKind::Risc);
    // The paper's hit rate is a per-resolution figure, so it is asserted on
    // the per-entry path, where every instruction resolves through the
    // cache. (Under superblock batching only run heads resolve, so the few
    // cold misses weigh far more per resolution.)
    let per_entry =
        measure(&exe, SimConfig { superblocks: false, ..SimConfig::default() });
    assert_eq!(per_entry.exit_code, Workload::Dct.expected_exit());
    // ~100 %: every miss is a cold miss (first sight of an address), so the
    // ratio is bounded only by Dct's short run length; the paper's 99.991 %
    // comes from the much longer cjpeg run.
    assert!(
        per_entry.stats.cache_hit_ratio() > 0.98,
        "hit ratio {}",
        per_entry.stats.cache_hit_ratio()
    );
    let misses = per_entry.stats.cache_lookups - per_entry.stats.cache_hits;
    assert_eq!(misses, per_entry.stats.detect_decodes, "non-cold cache miss");

    let m = measure(&exe, SimConfig::default());
    assert_eq!(m.exit_code, Workload::Dct.expected_exit());
    // The detect & decode avoidance (paper: 99.991 % on cjpeg) holds under
    // batching too, at Dct's cold-miss floor.
    assert!(
        m.stats.decode_avoided_ratio() > 0.98,
        "decode avoided {}",
        m.stats.decode_avoided_ratio()
    );
    // Superblock batching actually engaged: far fewer dispatches than
    // instructions.
    assert!(m.stats.superblock_batches > 0);
    assert!(m.stats.superblock_batches < m.stats.instructions);
}

/// Every workload must produce identical exit codes, instruction counts,
/// and cycle-model statistics under the superblock-batched hot loop and the
/// per-entry baseline path (`--baseline-cache`).
#[test]
fn workloads_agree_between_superblock_and_baseline_paths() {
    for workload in Workload::ALL {
        let exe = build(workload, isa_for(workload));
        let model = model_for(workload);
        let config = |superblocks: bool| SimConfig {
            superblocks,
            cycle_model: model,
            ..SimConfig::default()
        };
        let new = measure(&exe, config(true));
        let base = measure(&exe, config(false));
        let name = workload.name();
        assert_eq!(new.exit_code, workload.expected_exit(), "{name}");
        assert_eq!(new.exit_code, base.exit_code, "{name}");
        assert_eq!(new.stats.instructions, base.stats.instructions, "{name}");
        assert_eq!(new.stats.operations, base.stats.operations, "{name}");
        assert_eq!(new.stats.nops, base.stats.nops, "{name}");
        assert_eq!(new.stats.mem_reads, base.stats.mem_reads, "{name}");
        assert_eq!(new.stats.mem_writes, base.stats.mem_writes, "{name}");
        assert_eq!(new.stats.taken_branches, base.stats.taken_branches, "{name}");
        assert_eq!(new.stats.isa_switches, base.stats.isa_switches, "{name}");
        assert_eq!(new.stats.simops, base.stats.simops, "{name}");
        assert_eq!(new.cycles, base.cycles, "{name} cycle stats diverge");
    }
}

/// The IR-compiled tier must be observationally identical to the
/// interpreter across every workload/ISA pair — exit codes, every
/// functional counter, and cycle-model statistics. Where a cycle model is
/// attached (ILP/AIE/DOE) the tier disables itself (the compiled body
/// skips the per-instruction hooks the models need), so parity is exact by
/// construction; where no model is attached the tier must actually engage
/// and still change nothing but wall-clock.
#[test]
fn workloads_agree_between_interp_and_ir_tiers() {
    for workload in Workload::ALL {
        let exe = build(workload, isa_for(workload));
        let model = model_for(workload);
        // A low threshold so even short workloads promote early and spend
        // most of their run on the compiled tier.
        let config = |tier: TierMode| SimConfig {
            tier,
            tier_threshold: 4,
            cycle_model: model,
            ..SimConfig::default()
        };
        let ir = measure(&exe, config(TierMode::Ir));
        let interp = measure(&exe, config(TierMode::Interp));
        let name = workload.name();
        assert_eq!(ir.exit_code, workload.expected_exit(), "{name}");
        assert_eq!(ir.exit_code, interp.exit_code, "{name}");
        assert_eq!(ir.stats.instructions, interp.stats.instructions, "{name}");
        assert_eq!(ir.stats.operations, interp.stats.operations, "{name}");
        assert_eq!(ir.stats.nops, interp.stats.nops, "{name}");
        assert_eq!(ir.stats.mem_reads, interp.stats.mem_reads, "{name}");
        assert_eq!(ir.stats.mem_writes, interp.stats.mem_writes, "{name}");
        assert_eq!(ir.stats.taken_branches, interp.stats.taken_branches, "{name}");
        assert_eq!(ir.stats.isa_switches, interp.stats.isa_switches, "{name}");
        assert_eq!(ir.stats.simops, interp.stats.simops, "{name}");
        assert_eq!(ir.cycles, interp.cycles, "{name} cycle stats diverge");
        // The interpreter tier never promotes or runs IR.
        assert_eq!(interp.stats.tier_promotions, 0, "{name}");
        assert_eq!(interp.stats.ir_instructions, 0, "{name}");
        if model.is_some() {
            // An attached model bars the compiled tier outright.
            assert_eq!(ir.stats.ir_instructions, 0, "{name}: tier ran under a model");
        } else {
            assert!(ir.stats.tier_promotions > 0, "{name}: tier never engaged");
            assert!(ir.stats.ir_instructions > 0, "{name}: tier never executed");
            let ratio = ir.stats.ir_ratio();
            assert!(ratio > 0.0 && ratio <= 1.0, "{name}: ir_ratio {ratio}");
        }
    }
}

/// The cycle-accurate RTL reference pipeline drives per-instruction hooks,
/// so the compiled tier must disable itself under it: both tier modes
/// produce identical architectural results and identical cycle counts.
#[test]
fn rtl_pipeline_agrees_between_tiers() {
    let exe = build(Workload::Dct, IsaKind::Risc);
    let run = |tier: TierMode| {
        let config = SimConfig { tier, tier_threshold: 4, ..SimConfig::default() };
        let mut sim = Simulator::new(&exe, config).expect("load executable");
        sim.set_cycle_model(Box::new(RtlPipeline::new(RtlConfig::default())));
        let outcome = sim.run(BUDGET).expect("simulation error");
        let RunOutcome::Halted { exit_code } = outcome else {
            panic!("instruction budget exhausted");
        };
        (exit_code, *sim.stats(), sim.cycle_stats().expect("pipeline attached"))
    };
    let (ir_exit, ir_stats, ir_cycles) = run(TierMode::Ir);
    let (interp_exit, interp_stats, interp_cycles) = run(TierMode::Interp);
    assert_eq!(ir_exit, Workload::Dct.expected_exit());
    assert_eq!(ir_exit, interp_exit);
    assert_eq!(ir_stats.instructions, interp_stats.instructions);
    assert_eq!(ir_stats.operations, interp_stats.operations);
    assert_eq!(ir_cycles, interp_cycles, "RTL cycle counts diverge across tiers");
    // The RTL pipeline bars the compiled tier just like the approximate
    // models do.
    assert_eq!(ir_stats.ir_instructions, 0);
}
