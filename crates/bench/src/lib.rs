//! Benchmark harnesses regenerating the paper's tables and figures.
//!
//! Each evaluation artifact of the paper has a binary that prints the
//! corresponding rows/series, plus a Criterion bench for wall-clock
//! measurements (run binaries with `--release` for meaningful timings):
//!
//! | paper artifact | binary | bench |
//! |---|---|---|
//! | Table I (component cost)      | `table1`  | `benches/table1.rs` |
//! | §VII-A MIPS / cache hit rates | `simulator_performance` | — |
//! | Figure 4 (ILP vs real)        | `figure4` | `benches/figure4.rs` |
//! | Table II (DOE vs hardware)    | `table2`  | `benches/table2.rs` |
//! | design-choice ablations       | `ablation`| `benches/ablation.rs` |
//!
//! See `EXPERIMENTS.md` for recorded outputs and the comparison against the
//! paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use kahrisma_core::{
    CycleModelKind, CycleStats, MemoryHierarchy, RunOutcome, SimConfig, SimStats, Simulator,
};
use kahrisma_elf::Executable;
use kahrisma_isa::IsaKind;
pub use kahrisma_workloads::Workload;

/// Instruction budget for harness runs.
pub const BUDGET: u64 = 500_000_000;

/// Builds a workload for an ISA, panicking on (unexpected) toolchain errors.
///
/// # Panics
///
/// Panics if the shipped workload fails to compile — that would be a
/// toolchain regression, not a measurement condition.
#[must_use]
pub fn build(workload: Workload, isa: IsaKind) -> Executable {
    workload
        .build(isa)
        .unwrap_or_else(|e| panic!("{} for {}: {e}", workload.name(), isa.name()))
}

/// Outcome of one measured simulation.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Functional statistics.
    pub stats: SimStats,
    /// Cycle-model statistics, when a model ran.
    pub cycles: Option<CycleStats>,
    /// Wall-clock seconds of the simulation loop.
    pub seconds: f64,
    /// Program exit code.
    pub exit_code: u32,
}

impl Measured {
    /// The run's wall-clock throughput.
    #[must_use]
    pub fn throughput(&self) -> kahrisma_core::Throughput {
        self.stats.throughput(self.seconds)
    }

    /// Millions of simulated instructions per wall-clock second.
    #[must_use]
    pub fn mips(&self) -> f64 {
        self.throughput().mips
    }

    /// Wall-clock nanoseconds per simulated instruction.
    #[must_use]
    pub fn ns_per_instruction(&self) -> f64 {
        self.throughput().ns_per_instruction
    }
}

/// Runs `exe` under `config`, measuring the simulation loop only.
///
/// # Panics
///
/// Panics on simulation errors or when the program fails its self-check —
/// measurements of broken runs would be meaningless.
#[must_use]
pub fn measure(exe: &Executable, config: SimConfig) -> Measured {
    let mut sim = Simulator::new(exe, config).expect("load executable");
    let start = Instant::now();
    let outcome = sim.run(BUDGET).expect("simulation error");
    let seconds = start.elapsed().as_secs_f64();
    let RunOutcome::Halted { exit_code } = outcome else {
        panic!("instruction budget exhausted");
    };
    Measured { stats: *sim.stats(), cycles: sim.cycle_stats(), seconds, exit_code }
}

/// Runs `exe` several times and keeps the fastest run (warm caches,
/// stable timing) — standard practice for the Table I style measurements.
///
/// One simulator is reused across repeats via [`Simulator::reset`], so
/// later repeats run against a warm decode cache — exactly the steady
/// state these measurements are after.
///
/// # Panics
///
/// Panics on simulation errors or budget exhaustion, like [`measure`].
#[must_use]
pub fn measure_best_of(exe: &Executable, config: &SimConfig, repeats: u32) -> Measured {
    let mut sim = Simulator::new(exe, config.clone()).expect("load executable");
    let mut best: Option<Measured> = None;
    for repeat in 0..repeats.max(1) {
        if repeat > 0 {
            sim.reset();
        }
        let start = Instant::now();
        let outcome = sim.run(BUDGET).expect("simulation error");
        let seconds = start.elapsed().as_secs_f64();
        let RunOutcome::Halted { exit_code } = outcome else {
            panic!("instruction budget exhausted");
        };
        let m = Measured { stats: *sim.stats(), cycles: sim.cycle_stats(), seconds, exit_code };
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

/// Convenience: cycle statistics of a workload under a given model.
///
/// # Panics
///
/// Panics on toolchain or simulation errors.
#[must_use]
pub fn cycles_for(workload: Workload, isa: IsaKind, model: CycleModelKind) -> CycleStats {
    let exe = build(workload, isa);
    let m = measure(&exe, SimConfig::with_model(model));
    assert_eq!(m.exit_code, workload.expected_exit(), "self-check failed");
    m.cycles.expect("model configured")
}

/// The issue widths of Figure 4 / Table II with their ISAs.
#[must_use]
pub fn figure4_isas() -> [(u8, IsaKind); 5] {
    [
        (1, IsaKind::Risc),
        (2, IsaKind::Vliw2),
        (4, IsaKind::Vliw4),
        (6, IsaKind::Vliw6),
        (8, IsaKind::Vliw8),
    ]
}

/// A memory hierarchy with ideal (zero-latency, unlimited-port) memory,
/// used to isolate the memory model's cost in Table I.
#[must_use]
pub fn ideal_memory() -> MemoryHierarchy {
    MemoryHierarchy::new().with_memory(0)
}

/// Parses the campaign options shared by the table/figure binaries:
/// `--workers N`, `--manifest PATH` and `--quiet`. Unknown arguments
/// abort with a usage message — these harnesses take nothing else.
#[must_use]
pub fn campaign_options(binary: &str) -> kahrisma_campaign::RunOptions {
    let mut options = kahrisma_campaign::RunOptions {
        workers: std::thread::available_parallelism().map_or(1, usize::from),
        progress: true,
        ..kahrisma_campaign::RunOptions::default()
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{binary}: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--workers" => {
                options.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("{binary}: --workers expects a positive integer");
                    std::process::exit(2);
                });
            }
            "--manifest" => {
                options.manifest = Some(std::path::PathBuf::from(value("--manifest")));
            }
            "--quiet" => options.progress = false,
            other => {
                eprintln!(
                    "{binary}: unknown argument {other:?} \
                     (supported: --workers N, --manifest PATH, --quiet)"
                );
                std::process::exit(2);
            }
        }
    }
    options
}

/// Runs a campaign for a table/figure binary, exiting with a message on
/// failure. The returned report always contains every cell of the spec.
#[must_use]
pub fn run_campaign(
    binary: &str,
    spec: &kahrisma_campaign::CampaignSpec,
    options: &kahrisma_campaign::RunOptions,
) -> kahrisma_campaign::Report {
    match kahrisma_campaign::runner::run(spec, options) {
        Ok(summary) => summary.report,
        Err(e) => {
            eprintln!("{binary}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let exe = build(Workload::Dct, IsaKind::Risc);
        let m = measure(&exe, SimConfig::default());
        assert_eq!(m.exit_code, Workload::Dct.expected_exit());
        assert!(m.mips() > 0.0);
        assert!(m.ns_per_instruction() > 0.0);
        assert!(m.cycles.is_none());
    }

    #[test]
    fn cycles_for_runs_models() {
        let s = cycles_for(Workload::Dct, IsaKind::Risc, CycleModelKind::Doe);
        assert!(s.cycles > 0);
        assert!(s.operations > 0);
    }

    #[test]
    fn best_of_keeps_minimum() {
        let exe = build(Workload::Dct, IsaKind::Risc);
        let m = measure_best_of(&exe, &SimConfig::default(), 2);
        assert!(m.seconds > 0.0);
    }
}
