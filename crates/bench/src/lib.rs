//! Benchmark harnesses regenerating the paper's tables and figures.
//!
//! Each evaluation artifact of the paper has a binary that prints the
//! corresponding rows/series, plus a Criterion bench for wall-clock
//! measurements (run binaries with `--release` for meaningful timings):
//!
//! | paper artifact | binary | bench |
//! |---|---|---|
//! | Table I (component cost)      | `table1`  | `benches/table1.rs` |
//! | §VII-A MIPS / cache hit rates | `simulator_performance` | — |
//! | Figure 4 (ILP vs real)        | `figure4` | `benches/figure4.rs` |
//! | Table II (DOE vs hardware)    | `table2`  | `benches/table2.rs` |
//! | design-choice ablations       | `ablation`| `benches/ablation.rs` |
//!
//! See `EXPERIMENTS.md` for recorded outputs and the comparison against the
//! paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use kahrisma_core::{
    CycleModelKind, CycleStats, MemoryHierarchy, RunOutcome, SimConfig, SimStats, Simulator,
};
use kahrisma_elf::Executable;
use kahrisma_isa::IsaKind;
pub use kahrisma_workloads::Workload;

/// Instruction budget for harness runs.
pub const BUDGET: u64 = 500_000_000;

/// Builds a workload for an ISA, panicking on (unexpected) toolchain errors.
///
/// # Panics
///
/// Panics if the shipped workload fails to compile — that would be a
/// toolchain regression, not a measurement condition.
#[must_use]
pub fn build(workload: Workload, isa: IsaKind) -> Executable {
    workload
        .build(isa)
        .unwrap_or_else(|e| panic!("{} for {}: {e}", workload.name(), isa.name()))
}

/// Outcome of one measured simulation.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Functional statistics.
    pub stats: SimStats,
    /// Cycle-model statistics, when a model ran.
    pub cycles: Option<CycleStats>,
    /// Wall-clock seconds of the simulation loop.
    pub seconds: f64,
    /// Program exit code.
    pub exit_code: u32,
}

impl Measured {
    /// Millions of simulated instructions per wall-clock second.
    #[must_use]
    pub fn mips(&self) -> f64 {
        self.stats.instructions as f64 / self.seconds / 1e6
    }

    /// Wall-clock nanoseconds per simulated instruction.
    #[must_use]
    pub fn ns_per_instruction(&self) -> f64 {
        self.seconds * 1e9 / self.stats.instructions as f64
    }
}

/// Runs `exe` under `config`, measuring the simulation loop only.
///
/// # Panics
///
/// Panics on simulation errors or when the program fails its self-check —
/// measurements of broken runs would be meaningless.
#[must_use]
pub fn measure(exe: &Executable, config: SimConfig) -> Measured {
    let mut sim = Simulator::new(exe, config).expect("load executable");
    let start = Instant::now();
    let outcome = sim.run(BUDGET).expect("simulation error");
    let seconds = start.elapsed().as_secs_f64();
    let RunOutcome::Halted { exit_code } = outcome else {
        panic!("instruction budget exhausted");
    };
    Measured { stats: *sim.stats(), cycles: sim.cycle_stats(), seconds, exit_code }
}

/// Runs `exe` several times and keeps the fastest run (warm caches,
/// stable timing) — standard practice for the Table I style measurements.
#[must_use]
pub fn measure_best_of(exe: &Executable, config: &SimConfig, repeats: u32) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..repeats.max(1) {
        let m = measure(exe, config.clone());
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

/// Convenience: cycle statistics of a workload under a given model.
///
/// # Panics
///
/// Panics on toolchain or simulation errors.
#[must_use]
pub fn cycles_for(workload: Workload, isa: IsaKind, model: CycleModelKind) -> CycleStats {
    let exe = build(workload, isa);
    let m = measure(&exe, SimConfig::with_model(model));
    assert_eq!(m.exit_code, workload.expected_exit(), "self-check failed");
    m.cycles.expect("model configured")
}

/// The issue widths of Figure 4 / Table II with their ISAs.
#[must_use]
pub fn figure4_isas() -> [(u8, IsaKind); 5] {
    [
        (1, IsaKind::Risc),
        (2, IsaKind::Vliw2),
        (4, IsaKind::Vliw4),
        (6, IsaKind::Vliw6),
        (8, IsaKind::Vliw8),
    ]
}

/// A memory hierarchy with ideal (zero-latency, unlimited-port) memory,
/// used to isolate the memory model's cost in Table I.
#[must_use]
pub fn ideal_memory() -> MemoryHierarchy {
    MemoryHierarchy::new().with_memory(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let exe = build(Workload::Dct, IsaKind::Risc);
        let m = measure(&exe, SimConfig::default());
        assert_eq!(m.exit_code, Workload::Dct.expected_exit());
        assert!(m.mips() > 0.0);
        assert!(m.ns_per_instruction() > 0.0);
        assert!(m.cycles.is_none());
    }

    #[test]
    fn cycles_for_runs_models() {
        let s = cycles_for(Workload::Dct, IsaKind::Risc, CycleModelKind::Doe);
        assert!(s.cycles > 0);
        assert!(s.operations > 0);
    }

    #[test]
    fn best_of_keeps_minimum() {
        let exe = build(Workload::Dct, IsaKind::Risc);
        let m = measure_best_of(&exe, &SimConfig::default(), 2);
        assert!(m.seconds > 0.0);
    }
}
