//! Regenerates **Table II** — "Simulator accuracy of dynamic operation
//! execution": cycle counts of the DCT application on RISC/VLIW2/VLIW4/VLIW8
//! processor instances from the cycle-accurate reference model ("Hardware")
//! versus the cycle-approximate DOE model ("Approximation"), with the
//! relative error, plus the approximate-vs-reference speedup the paper
//! quotes (§VII-C).
//!
//! Run with `cargo run --release -p kahrisma-bench --bin table2`.

use std::time::Instant;

use kahrisma_bench::{Workload, build, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;
use kahrisma_rtl::{RtlConfig, simulate};

fn main() {
    let configs = [
        ("RISC", IsaKind::Risc),
        ("VLIW2", IsaKind::Vliw2),
        ("VLIW4", IsaKind::Vliw4),
        ("VLIW8", IsaKind::Vliw8),
    ];
    println!("Table II: simulator accuracy of dynamic operation execution (DCT)");
    println!("{:<14}{:>12}{:>16}{:>9}", "Configuration", "Hardware", "Approximation", "Error");
    let mut rtl_total = 0.0;
    let mut doe_total = 0.0;
    let mut instr_total = 0u64;
    for (name, isa) in configs {
        let exe = build(Workload::Dct, isa);

        let rtl_start = Instant::now();
        let rtl = simulate(&exe, &RtlConfig::default(), 100_000_000).expect("rtl run");
        rtl_total += rtl_start.elapsed().as_secs_f64();
        assert_eq!(rtl.exit_code, Some(Workload::Dct.expected_exit()), "self-check");

        let doe_start = Instant::now();
        let doe = measure(&exe, SimConfig::with_model(CycleModelKind::Doe));
        doe_total += doe_start.elapsed().as_secs_f64();
        let approx = doe.cycles.expect("model").cycles;

        instr_total += rtl.instructions;
        let err = (approx as f64 - rtl.cycles as f64).abs() / rtl.cycles as f64 * 100.0;
        println!("{name:<14}{:>12}{:>16}{:>8.1}%", rtl.cycles, approx, err);
    }
    println!();
    println!(
        "reference model: {:.1} us/instr; approximation {:.2}x faster over {} instructions",
        rtl_total * 1e6 / instr_total as f64,
        rtl_total / doe_total,
        instr_total
    );
    println!("(the paper reports up to 2.8% error and a ~100,000x speedup over RTL simulation)");
}
