//! Regenerates **Table II** — "Simulator accuracy of dynamic operation
//! execution": cycle counts of the DCT application on RISC/VLIW2/VLIW4/VLIW8
//! processor instances from the cycle-accurate reference model ("Hardware")
//! versus the cycle-approximate DOE model ("Approximation"), with the
//! relative error, plus the approximate-vs-reference speedup the paper
//! quotes (§VII-C).
//!
//! The grid is the predefined `table2` campaign of `kahrisma-campaign`:
//! the RTL and DOE cells run through the campaign engine (`--workers N`
//! to parallelize, `--manifest PATH` to resume).
//!
//! Run with `cargo run --release -p kahrisma-bench --bin table2`.

use kahrisma_bench::{campaign_options, run_campaign};
use kahrisma_campaign::CampaignSpec;

fn main() {
    let spec: CampaignSpec = kahrisma_plan::grids::table2().into();
    let options = campaign_options("table2");
    let report = run_campaign("table2", &spec, &options);

    let configs = [("RISC", "risc"), ("VLIW2", "vliw2"), ("VLIW4", "vliw4"), ("VLIW8", "vliw8")];
    println!("Table II: simulator accuracy of dynamic operation execution (DCT)");
    println!("{:<14}{:>12}{:>16}{:>9}", "Configuration", "Hardware", "Approximation", "Error");
    let mut rtl_total = 0.0;
    let mut doe_total = 0.0;
    let mut instr_total = 0u64;
    for (name, isa) in configs {
        let cell = |engine: &str| {
            let key = format!("dct/{isa}/{engine}/superblock");
            report.get(&key).unwrap_or_else(|| panic!("cell {key} missing from report"))
        };
        let rtl = cell("rtl");
        let doe = cell("doe");
        let hardware = rtl.cycles.expect("rtl cycles");
        let approx = doe.cycles.expect("doe cycles");
        rtl_total += rtl.wall_seconds;
        doe_total += doe.wall_seconds;
        instr_total += rtl.instructions;
        let err = (approx as f64 - hardware as f64).abs() / hardware as f64 * 100.0;
        println!("{name:<14}{hardware:>12}{approx:>16}{err:>8.1}%");
    }
    println!();
    println!(
        "reference model: {:.1} us/instr; approximation {:.2}x faster over {} instructions",
        rtl_total * 1e6 / instr_total as f64,
        rtl_total / doe_total,
        instr_total
    );
    println!("(the paper reports up to 2.8% error and a ~100,000x speedup over RTL simulation)");
}
