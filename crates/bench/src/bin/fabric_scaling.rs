//! Fabric scaling curve: aggregate throughput of N identical cores sharing
//! one memory window, for N = 1, 2, 4, 8.
//!
//! Two throughput numbers are reported per point:
//!
//! * `aggregate_mips` — instructions divided by the **parallel critical
//!   path** (per quantum, the slowest core slice's host time, summed over
//!   quanta). This is the fabric's wall throughput on a host with at least
//!   as many idle CPUs as cores, and is measured with `host_threads = 1`
//!   so per-slice timings are not distorted by host oversubscription.
//! * `wall_mips` — instructions divided by the measured wall time of this
//!   (possibly single-CPU) host. On a 1-CPU runner this stays flat with N
//!   by construction; the scaling claim is about `aggregate_mips`.
//!
//! A second, deterministic curve runs the `parallel_dct` workload under
//! the modeled coherent memory system (`MemModel::Coherent`): the speedup
//! is `makespan(1 core) / makespan(N cores)` in **modeled cycles**, and
//! each point carries the coherence traffic (misses, invalidations,
//! writebacks, contention stalls) that limited it.
//!
//! Run with `cargo run --release -p kahrisma-bench --bin fabric_scaling`.
//! With `--json`, additionally writes the curves to `BENCH_fabric.json`.

use std::io::Write as _;

use kahrisma_core::STATS_SCHEMA_VERSION;
use kahrisma_fabric::{
    CoherentConfig, CoreSpec, Fabric, FabricConfig, FabricOutcome, FabricStats, MemModel,
};

const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BUDGET_PER_CORE: u64 = 2_000_000;
const REPEATS: u32 = 3;
const SPEC: &str = "dct:risc";
const COHERENT_SPEC: &str = "parallel_dct:risc";

struct Point {
    cores: usize,
    instructions: u64,
    quanta: u64,
    critical_path_s: f64,
    wall_s: f64,
}

impl Point {
    fn aggregate_mips(&self) -> f64 {
        self.instructions as f64 / self.critical_path_s / 1e6
    }

    fn wall_mips(&self) -> f64 {
        self.instructions as f64 / self.wall_s / 1e6
    }
}

/// Best-of-`REPEATS` (by critical path) sustained run of `cores` identical
/// cores. `restart_halted` keeps every core busy for the whole per-core
/// budget, so the measurement is steady-state throughput, not makespan of
/// one short program.
fn measure(cores: usize) -> Point {
    let specs: Vec<CoreSpec> = (0..cores)
        .map(|_| CoreSpec::parse(SPEC).expect("core spec"))
        .collect();
    let config = FabricConfig { restart_halted: true, ..FabricConfig::default() };
    let mut fabric = Fabric::new(specs, config).expect("build fabric");
    let mut best: Option<FabricStats> = None;
    for repeat in 0..REPEATS.max(1) {
        if repeat > 0 {
            fabric.reset();
        }
        fabric.run_for(BUDGET_PER_CORE).expect("fabric run");
        let stats = fabric.stats();
        if best
            .as_ref()
            .is_none_or(|b| stats.critical_path < b.critical_path)
        {
            best = Some(stats);
        }
    }
    let best = best.expect("at least one repeat");
    Point {
        cores,
        instructions: best.aggregate.instructions,
        quanta: best.quanta,
        critical_path_s: best.critical_path.as_secs_f64(),
        wall_s: best.wall.as_secs_f64(),
    }
}

struct CoherentPoint {
    cores: usize,
    makespan: u64,
    instructions: u64,
    accesses: u64,
    misses: u64,
    invalidations: u64,
    upgrades: u64,
    writebacks: u64,
    contention_stalls: u64,
    mem_cycles: u64,
}

/// One deterministic run of `parallel_dct` on `cores` cores under the
/// coherent memory model. No repeats: modeled cycles do not depend on the
/// host.
fn measure_coherent(cores: usize) -> CoherentPoint {
    let specs: Vec<CoreSpec> = (0..cores)
        .map(|_| CoreSpec::parse(COHERENT_SPEC).expect("core spec"))
        .collect();
    let config = FabricConfig {
        mem_model: MemModel::Coherent(CoherentConfig::default()),
        ..FabricConfig::default()
    };
    let mut fabric = Fabric::new(specs, config).expect("build fabric");
    let outcome = fabric.run_for(u64::MAX).expect("fabric run");
    assert_eq!(outcome, FabricOutcome::AllHalted, "workload must finish");
    let stats = fabric.stats();
    assert_eq!(stats.cores[0].exit_code, Some(42), "self-check failed");
    let report = stats.coherence.expect("coherent mode reports");
    let t = &report.total;
    CoherentPoint {
        cores,
        makespan: report.makespan,
        instructions: stats.aggregate.instructions,
        accesses: t.accesses,
        misses: t.misses,
        invalidations: t.invalidations_sent,
        upgrades: t.upgrades,
        writebacks: t.writebacks,
        contention_stalls: t.contention_stalls,
        mem_cycles: t.mem_cycles,
    }
}

fn emit_json(points: &[Point], coherent: &[CoherentPoint]) -> std::io::Result<()> {
    let base = points[0].aggregate_mips();
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"cores\": {}, \"instructions\": {}, \"quanta\": {}, \
                 \"critical_path_seconds\": {:.6}, \"wall_seconds\": {:.6}, \
                 \"aggregate_mips\": {:.4}, \"wall_mips\": {:.4}, \
                 \"speedup_vs_1core\": {:.4}}}",
                p.cores,
                p.instructions,
                p.quanta,
                p.critical_path_s,
                p.wall_s,
                p.aggregate_mips(),
                p.wall_mips(),
                p.aggregate_mips() / base,
            )
        })
        .collect();
    let base_makespan = coherent[0].makespan;
    let coherent_rows: Vec<String> = coherent
        .iter()
        .map(|p| {
            format!(
                "    {{\"cores\": {}, \"makespan_cycles\": {}, \"speedup_vs_1core\": {:.4}, \
                 \"instructions\": {}, \"accesses\": {}, \"misses\": {}, \
                 \"invalidations\": {}, \"upgrades\": {}, \"writebacks\": {}, \
                 \"contention_stalls\": {}, \"mem_cycles\": {}}}",
                p.cores,
                p.makespan,
                base_makespan as f64 / p.makespan as f64,
                p.instructions,
                p.accesses,
                p.misses,
                p.invalidations,
                p.upgrades,
                p.writebacks,
                p.contention_stalls,
                p.mem_cycles,
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"schema_version\": {STATS_SCHEMA_VERSION},\n  \"workload\": \"dct\",\n  \
         \"isa\": \"risc\",\n  \"quantum\": {},\n  \"budget_per_core\": {BUDGET_PER_CORE},\n  \
         \"repeats\": {REPEATS},\n  \"host_cpus\": {host_cpus},\n  \
         \"note\": \"aggregate_mips divides instructions by the parallel critical path \
         (per quantum, the slowest core slice's host time) measured at host_threads=1 — \
         the fabric's wall throughput on a host with >= cores idle CPUs. wall_mips is \
         the wall throughput actually observed on this {host_cpus}-CPU host.\",\n  \
         \"series\": [\n{}\n  ],\n  \
         \"coherent_workload\": \"parallel_dct\",\n  \
         \"coherent_note\": \"deterministic modeled-cycle curve: parallel_dct on N cores \
         under the MESI-approximate coherent memory model (default geometry); speedup is \
         makespan(1 core) / makespan(N cores), and the traffic counters show what limited \
         it.\",\n  \
         \"coherent_series\": [\n{}\n  ]\n}}\n",
        kahrisma_fabric::DEFAULT_QUANTUM,
        rows.join(",\n"),
        coherent_rows.join(",\n"),
    );
    let mut f = std::fs::File::create("BENCH_fabric.json")?;
    f.write_all(json.as_bytes())?;
    println!("  wrote BENCH_fabric.json");
    Ok(())
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    println!(
        "fabric scaling ({SPEC} x N, {BUDGET_PER_CORE} instructions/core, best of {REPEATS})"
    );
    let mut points = Vec::new();
    for cores in CORE_COUNTS {
        let p = measure(cores);
        println!(
            "  {:>2} cores: {:>9.3} aggregate MIPS ({:>7.3} wall MIPS, {} quanta)",
            p.cores,
            p.aggregate_mips(),
            p.wall_mips(),
            p.quanta,
        );
        points.push(p);
    }
    let speedup4 = points
        .iter()
        .find(|p| p.cores == 4)
        .map(|p| p.aggregate_mips() / points[0].aggregate_mips());
    if let Some(s) = speedup4 {
        println!("  4-core aggregate speedup vs 1 core: {s:.2}x");
    }
    println!(
        "coherent scaling ({COHERENT_SPEC} x N, modeled cycles, default geometry)"
    );
    let mut coherent = Vec::new();
    for cores in CORE_COUNTS {
        let p = measure_coherent(cores);
        println!(
            "  {:>2} cores: makespan {:>9} cycles ({:>5.2}x), {:>6} misses, \
             {:>6} invalidations, {:>8} stall cycles",
            p.cores,
            p.makespan,
            coherent.first().map_or(1.0, |b: &CoherentPoint| b.makespan as f64 / p.makespan as f64),
            p.misses,
            p.invalidations,
            p.contention_stalls,
        );
        coherent.push(p);
    }
    if json {
        if let Err(e) = emit_json(&points, &coherent) {
            eprintln!("fabric_scaling: cannot write BENCH_fabric.json: {e}");
            std::process::exit(1);
        }
    }
}
