//! Regenerates **Figure 4** — theoretical ILP versus the operations-per-
//! cycle achieved by real VLIW processor instances (issue widths 1, 2, 4,
//! 6, 8) for every evaluation application (§VII-B).
//!
//! The ILP bound comes from the ILP cycle model over the RISC binary ("as
//! input we simulate a RISC ISA"); the per-instance results come from the
//! DOE cycle model with the paper's memory hierarchy. Achieved throughput
//! is normalized to the RISC operation count (the width-independent work of
//! the program). The AES L1 miss rate is reported alongside, reproducing
//! the paper's observation that AES's working set exceeds the L1 and keeps
//! the 8-issue instance below its ILP bound.
//!
//! Run with `cargo run --release -p kahrisma-bench --bin figure4`.

use kahrisma_bench::{Workload, build, figure4_isas, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

fn main() {
    println!("Figure 4: ILP bound vs achieved operations/cycle (DOE model, paper memory)");
    println!(
        "{:<11}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}",
        "app", "ILP", "risc", "vliw2", "vliw4", "vliw6", "vliw8", "L1 miss"
    );
    for w in Workload::ALL {
        // Theoretical bound and work measure from the RISC binary.
        let risc_exe = build(w, IsaKind::Risc);
        let ilp_run = measure(&risc_exe, SimConfig::with_model(CycleModelKind::Ilp));
        assert_eq!(ilp_run.exit_code, w.expected_exit(), "{} self-check", w.name());
        let ilp = ilp_run.cycles.expect("ilp model").ops_per_cycle();
        let risc_ops = ilp_run.stats.operations;

        let mut opcs = Vec::new();
        let mut l1_miss = 0.0;
        for (_, isa) in figure4_isas() {
            let exe = build(w, isa);
            let m = measure(&exe, SimConfig::with_model(CycleModelKind::Doe));
            assert_eq!(m.exit_code, w.expected_exit(), "{} self-check on {}", w.name(), isa.name());
            let stats = m.cycles.expect("doe model");
            opcs.push(risc_ops as f64 / stats.cycles as f64);
            if isa == IsaKind::Vliw8 {
                l1_miss = stats
                    .memory
                    .iter()
                    .find_map(|l| l.cache)
                    .map(|c| c.miss_ratio() * 100.0)
                    .unwrap_or(0.0);
            }
        }
        println!(
            "{:<11}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>9.1}%",
            w.name(),
            ilp,
            opcs[0],
            opcs[1],
            opcs[2],
            opcs[3],
            opcs[4],
            l1_miss
        );
    }
    println!();
    println!("(paper: DCT and AES offer high ILP; FFT, jpeg, quicksort low ILP; the AES");
    println!(" 8-issue instance is limited by its L1-exceeding working set)");
}
