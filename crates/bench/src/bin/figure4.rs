//! Regenerates **Figure 4** — theoretical ILP versus the operations-per-
//! cycle achieved by real VLIW processor instances (issue widths 1, 2, 4,
//! 6, 8) for every evaluation application (§VII-B).
//!
//! The ILP bound comes from the ILP cycle model over the RISC binary ("as
//! input we simulate a RISC ISA"); the per-instance results come from the
//! DOE cycle model with the paper's memory hierarchy. Achieved throughput
//! is normalized to the RISC operation count (the width-independent work of
//! the program). The AES L1 miss rate is reported alongside, reproducing
//! the paper's observation that AES's working set exceeds the L1 and keeps
//! the 8-issue instance below its ILP bound.
//!
//! The 36-cell grid is the predefined `figure4` campaign of
//! `kahrisma-campaign` (`--workers N` to parallelize, `--manifest PATH`
//! to resume an interrupted sweep).
//!
//! Run with `cargo run --release -p kahrisma-bench --bin figure4`.

use kahrisma_bench::{Workload, campaign_options, run_campaign};
use kahrisma_campaign::CampaignSpec;
use kahrisma_isa::IsaKind;

fn main() {
    let spec: CampaignSpec = kahrisma_plan::grids::figure4().into();
    let options = campaign_options("figure4");
    let report = run_campaign("figure4", &spec, &options);

    println!("Figure 4: ILP bound vs achieved operations/cycle (DOE model, paper memory)");
    println!(
        "{:<11}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}{:>10}",
        "app", "ILP", "risc", "vliw2", "vliw4", "vliw6", "vliw8", "L1 miss"
    );
    for w in Workload::ALL {
        let cell = |key: String| {
            report.get(&key).unwrap_or_else(|| panic!("cell {key} missing from report"))
        };
        // Theoretical bound and work measure from the RISC binary.
        let ilp_cell = cell(format!("{}/risc/ilp/superblock", w.name()));
        let ilp = ilp_cell.ops_per_cycle().expect("ilp cycles");
        let risc_ops = ilp_cell.operations;

        let mut opcs = Vec::new();
        let mut l1_miss = 0.0;
        for isa in IsaKind::ALL {
            let doe = cell(format!("{}/{}/doe/superblock", w.name(), isa.name()));
            opcs.push(risc_ops as f64 / doe.cycles.expect("doe cycles") as f64);
            if isa == IsaKind::Vliw8 {
                l1_miss = doe.l1_miss_ratio.unwrap_or(0.0) * 100.0;
            }
        }
        println!(
            "{:<11}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>9.1}%",
            w.name(),
            ilp,
            opcs[0],
            opcs[1],
            opcs[2],
            opcs[3],
            opcs[4],
            l1_miss
        );
    }
    println!();
    println!("(paper: DCT and AES offer high ILP; FFT, jpeg, quicksort low ILP; the AES");
    println!(" 8-issue instance is limited by its L1-exceeding working set)");
}
