//! Regenerates the §VII-A simulator-performance narrative: MIPS without the
//! decode cache, with the cache, and with cache + instruction prediction
//! (the paper's 0.177 → 16.7 → 29.5 MIPS progression), the fraction of
//! detect & decode operations avoided by the cache (paper: 99.991 %), the
//! fraction of hash lookups avoided by the prediction (paper: 99.2 %), the
//! memory-access ratio (paper: 24.6 %), and the MIPS with each cycle model
//! (paper: 18.3 / 18.9 / 15.3).
//!
//! Run with `cargo run --release -p kahrisma-bench --bin simulator_performance`.

use kahrisma_bench::{Workload, build, measure_best_of};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

fn main() {
    let exe = build(Workload::Cjpeg, IsaKind::Risc);
    let repeats = 3;

    let no_cache =
        SimConfig { decode_cache: false, prediction: false, ..SimConfig::default() };
    let cache_only = SimConfig { prediction: false, ..SimConfig::default() };
    let pred = SimConfig::default();

    println!("simulator performance (cjpeg on RISC, best of {repeats})");
    let m0 = measure_best_of(&exe, &no_cache, repeats);
    println!("  without decode cache:        {:>8.3} MIPS", m0.mips());
    let m1 = measure_best_of(&exe, &cache_only, repeats);
    println!(
        "  with decode cache:           {:>8.3} MIPS   ({:.3}% of detect&decodes avoided)",
        m1.mips(),
        m1.stats.decode_avoided_ratio() * 100.0
    );
    let m2 = measure_best_of(&exe, &pred, repeats);
    println!(
        "  with instruction prediction: {:>8.3} MIPS   ({:.1}% of lookups avoided)",
        m2.mips(),
        m2.stats.lookup_avoided_ratio() * 100.0
    );
    println!(
        "  memory-accessing operations: {:>8.1} %",
        m2.stats.mem_ratio() * 100.0
    );
    for (name, kind) in [
        ("ILP", CycleModelKind::Ilp),
        ("AIE", CycleModelKind::Aie),
        ("DOE", CycleModelKind::Doe),
    ] {
        let m = measure_best_of(&exe, &SimConfig::with_model(kind), repeats);
        println!("  with {name} cycle model:        {:>8.3} MIPS", m.mips());
    }
    println!();
    println!("(paper: 0.177 / 16.7 / 29.5 MIPS; 99.991% decodes avoided; 99.2% lookups");
    println!(" avoided; 24.6% memory operations; 18.3 / 18.9 / 15.3 MIPS with models)");
}
