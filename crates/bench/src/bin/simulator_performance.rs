//! Regenerates the §VII-A simulator-performance narrative: MIPS without the
//! decode cache, with the cache, and with cache + instruction prediction
//! (the paper's 0.177 → 16.7 → 29.5 MIPS progression), the fraction of
//! detect & decode operations avoided by the cache (paper: 99.991 %), the
//! fraction of hash lookups avoided by the prediction (paper: 99.2 %), the
//! memory-access ratio (paper: 24.6 %), and the MIPS with each cycle model
//! (paper: 18.3 / 18.9 / 15.3) — plus the flat-arena + superblock hot loop
//! that goes beyond the paper's per-entry cache.
//!
//! Run with `cargo run --release -p kahrisma-bench --bin simulator_performance`.
//!
//! Flags:
//!
//! * `--json` — additionally measure the Dct/RISC hot-loop ablation
//!   (no-cache, cache, cache + prediction, arena + superblocks, IR tier) and
//!   the per-workload interp-vs-IR tier comparison, writing both to
//!   `BENCH_hotloop.json`.
//! * `--baseline-cache` — use the per-entry decode-cache path (no superblock
//!   batching) for the headline rows, i.e. the paper's original design.

use std::io::Write as _;

use kahrisma_bench::{Workload, build, measure_best_of};
use kahrisma_core::{CycleModelKind, SimConfig, TierMode};
use kahrisma_isa::IsaKind;

/// The hot-loop ablation ladder: each rung enables one more §V-A / tentpole
/// mechanism. `superblocks` is only honoured when the cache is on; the
/// interpreter rungs pin `TierMode::Interp` so each rung isolates exactly
/// one mechanism, and the final rung is the full default (IR tier).
fn ladder() -> [(&'static str, SimConfig); 5] {
    let base =
        SimConfig { superblocks: false, tier: TierMode::Interp, ..SimConfig::default() };
    [
        (
            "no-cache",
            SimConfig { decode_cache: false, prediction: false, ..base.clone() },
        ),
        ("cache", SimConfig { prediction: false, ..base.clone() }),
        ("cache+prediction", base.clone()),
        ("arena+superblock", SimConfig { superblocks: true, ..base }),
        ("ir-tier", SimConfig::default()),
    ]
}

/// The per-workload ISA assignment used across the bench suite (matches
/// `tests/hotloop.rs`).
fn workload_isa(workload: Workload) -> IsaKind {
    match workload {
        Workload::Dct | Workload::Quicksort => IsaKind::Risc,
        Workload::Fft => IsaKind::Vliw2,
        Workload::Aes => IsaKind::Vliw4,
        Workload::Djpeg => IsaKind::Vliw6,
        Workload::Cjpeg => IsaKind::Vliw8,
        // `Workload` is `#[non_exhaustive]`; future additions default to
        // the paper's baseline ISA.
        _ => IsaKind::Risc,
    }
}

fn emit_json(repeats: u32) -> std::io::Result<()> {
    let exe = build(Workload::Dct, IsaKind::Risc);
    let mut rows = Vec::new();
    // The dct run is sub-millisecond; best-of needs extra repeats for a
    // stable ladder.
    let ladder_reps = repeats.max(9);
    for (name, config) in ladder() {
        let m = measure_best_of(&exe, &config, ladder_reps);
        assert_eq!(m.exit_code, Workload::Dct.expected_exit(), "self-check failed");
        println!("  [json] {name:<18} {:>9.3} MIPS", m.mips());
        rows.push(format!(
            "    {{\"config\": \"{name}\", \"mips\": {:.4}, \"ns_per_instruction\": {:.2}, \
             \"instructions\": {}, \"cache_hit_ratio\": {:.6}, \"ir_ratio\": {:.6}}}",
            m.mips(),
            m.ns_per_instruction(),
            m.stats.instructions,
            m.stats.cache_hit_ratio(),
            m.stats.ir_ratio(),
        ));
    }
    // Interp-vs-IR across every workload/ISA pair: the tier must never
    // change results, only wall-clock.
    let interp = SimConfig { tier: TierMode::Interp, ..SimConfig::default() };
    let mut tier_rows = Vec::new();
    for workload in Workload::ALL {
        let isa = workload_isa(workload);
        let exe = build(workload, isa);
        // Short workloads (sub-millisecond runs) need more repeats to get
        // a stable best-of; the long ones are stable at the default.
        let reps = match workload {
            Workload::Cjpeg | Workload::Djpeg | Workload::Aes => repeats,
            _ => repeats.max(9),
        };
        let mi = measure_best_of(&exe, &interp, reps);
        let mr = measure_best_of(&exe, &SimConfig::default(), reps);
        assert_eq!(mi.exit_code, workload.expected_exit(), "self-check failed");
        assert_eq!(mr.exit_code, mi.exit_code, "tier changed the result");
        assert_eq!(mr.stats.instructions, mi.stats.instructions, "tier changed the result");
        let speedup = mr.mips() / mi.mips().max(f64::MIN_POSITIVE);
        println!(
            "  [json] {:<10} {:<6} interp {:>9.3} MIPS  ir {:>9.3} MIPS  ({speedup:.2}x, \
             {:.1}% via IR)",
            workload.name(),
            isa.name(),
            mi.mips(),
            mr.mips(),
            mr.stats.ir_ratio() * 100.0,
        );
        tier_rows.push(format!(
            "    {{\"workload\": \"{}\", \"isa\": \"{}\", \"interp_mips\": {:.4}, \
             \"ir_mips\": {:.4}, \"speedup\": {speedup:.4}, \"ir_ratio\": {:.6}, \
             \"ir_instructions\": {}}}",
            workload.name(),
            isa.name(),
            mi.mips(),
            mr.mips(),
            mr.stats.ir_ratio(),
            mr.stats.ir_instructions,
        ));
    }
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"workload\": \"dct\",\n  \"isa\": \"risc\",\n  \
         \"repeats\": {repeats},\n  \"unit\": \"MIPS (best of {repeats})\",\n  \
         \"configs\": [\n{}\n  ],\n  \"tiers\": [\n{}\n  ]\n}}\n",
        kahrisma_core::STATS_SCHEMA_VERSION,
        rows.join(",\n"),
        tier_rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_hotloop.json")?;
    f.write_all(json.as_bytes())?;
    println!("  wrote BENCH_hotloop.json");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let baseline_cache = args.iter().any(|a| a == "--baseline-cache");
    let repeats = 3;

    let exe = build(Workload::Cjpeg, IsaKind::Risc);
    // The headline progression uses the paper's per-entry cache mechanics
    // for the first three rows so the numbers are comparable to §VII-A; the
    // final row is this implementation's batched hot loop (skipped under
    // `--baseline-cache`).
    let per_entry =
        SimConfig { superblocks: false, tier: TierMode::Interp, ..SimConfig::default() };
    let no_cache =
        SimConfig { decode_cache: false, prediction: false, ..per_entry.clone() };
    let cache_only = SimConfig { prediction: false, ..per_entry.clone() };
    let pred = per_entry.clone();
    let full = if baseline_cache {
        per_entry.clone()
    } else {
        SimConfig { tier: TierMode::Interp, ..SimConfig::default() }
    };

    println!("simulator performance (cjpeg on RISC, best of {repeats})");
    let m0 = measure_best_of(&exe, &no_cache, repeats);
    println!("  without decode cache:        {:>8.3} MIPS", m0.mips());
    let m1 = measure_best_of(&exe, &cache_only, repeats);
    println!(
        "  with decode cache:           {:>8.3} MIPS   ({:.3}% of detect&decodes avoided)",
        m1.mips(),
        m1.stats.decode_avoided_ratio() * 100.0
    );
    let m2 = measure_best_of(&exe, &pred, repeats);
    println!(
        "  with instruction prediction: {:>8.3} MIPS   ({:.1}% of lookups avoided)",
        m2.mips(),
        m2.stats.lookup_avoided_ratio() * 100.0
    );
    if !baseline_cache {
        let m3 = measure_best_of(&exe, &full, repeats);
        println!(
            "  with arena + superblocks:    {:>8.3} MIPS   ({} superblocks, {:.1} instrs/batch)",
            m3.mips(),
            m3.stats.superblocks_built,
            m3.stats.instructions as f64 / m3.stats.superblock_batches.max(1) as f64
        );
        let m4 = measure_best_of(&exe, &SimConfig::default(), repeats);
        println!(
            "  with IR-compiled tier:       {:>8.3} MIPS   ({} promotions, {:.1}% via IR)",
            m4.mips(),
            m4.stats.tier_promotions,
            m4.stats.ir_ratio() * 100.0
        );
    }
    println!(
        "  memory-accessing operations: {:>8.1} %",
        m2.stats.mem_ratio() * 100.0
    );
    for (name, kind) in [
        ("ILP", CycleModelKind::Ilp),
        ("AIE", CycleModelKind::Aie),
        ("DOE", CycleModelKind::Doe),
    ] {
        let config = SimConfig { superblocks: !baseline_cache, ..SimConfig::with_model(kind) };
        let m = measure_best_of(&exe, &config, repeats);
        println!("  with {name} cycle model:        {:>8.3} MIPS", m.mips());
    }
    println!();
    println!("(paper: 0.177 / 16.7 / 29.5 MIPS; 99.991% decodes avoided; 99.2% lookups");
    println!(" avoided; 24.6% memory operations; 18.3 / 18.9 / 15.3 MIPS with models)");

    if json {
        println!();
        println!("hot-loop ablation (dct on RISC, best of {repeats})");
        if let Err(e) = emit_json(repeats) {
            eprintln!("simulator_performance: cannot write BENCH_hotloop.json: {e}");
            std::process::exit(1);
        }
    }
}
