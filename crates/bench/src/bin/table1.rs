//! Regenerates **Table I** — average execution time per instruction of the
//! simulator components, recovered exactly as in the paper (§VII-A): the
//! simulator runs in a set of configurations, and per-component costs are
//! obtained by solving the resulting system of linear equations (simple
//! differences once the prediction overhead is neglected).
//!
//! The configuration ladder (cjpeg compiled for RISC) is the predefined
//! `table1` campaign of `kahrisma-campaign`, executed through the campaign
//! engine — so the measurement grid is parallelizable (`--workers N`) and
//! resumable (`--manifest PATH`):
//!
//! * `nocache` — detect & decode every instruction,
//! * `cache` — decode cache without prediction,
//! * `pred` — decode cache + instruction prediction (the baseline),
//! * `pred+ilp`, `pred+aie`, `pred+doe` — with each cycle model,
//! * `pred+aie/ideal` — AIE with an ideal memory, isolating the memory
//!   model's cost,
//! * `superblock` — the arena + superblock hot loop.
//!
//! Run with `cargo run --release -p kahrisma-bench --bin table1`.

use kahrisma_bench::{campaign_options, run_campaign};
use kahrisma_campaign::CampaignSpec;

fn main() {
    let spec: CampaignSpec = kahrisma_plan::grids::table1().into();
    let options = campaign_options("table1");
    println!(
        "measuring (cjpeg on RISC, best of 3 runs per configuration, campaign engine)..."
    );
    let report = run_campaign("table1", &spec, &options);
    let ns = |key: &str| {
        report
            .get(key)
            .unwrap_or_else(|| panic!("cell {key} missing from report"))
            .ns_per_instruction
    };

    // Solve the (diagonal, after the paper's simplification) linear system:
    // t_pred       = execute
    // t_cache      = execute + cache_access            (every instr looks up)
    // t_nocache    = execute + detect_decode
    // t_model      = execute + model (+ memory where applicable)
    // t_aie        = t_aie_ideal + memory_model
    let execute = ns("cjpeg/risc/func/pred");
    let cache_access = (ns("cjpeg/risc/func/cache") - execute).max(0.0);
    let detect_decode = (ns("cjpeg/risc/func/nocache") - execute).max(0.0);
    let ilp_cost = (ns("cjpeg/risc/ilp/pred") - execute).max(0.0);
    let aie_cost = (ns("cjpeg/risc/aie/pred") - execute).max(0.0);
    let doe_cost = (ns("cjpeg/risc/doe/pred") - execute).max(0.0);
    let memory_model = (ns("cjpeg/risc/aie/pred") - ns("cjpeg/risc/aie/pred+idealmem")).max(0.0);
    let superblock = report.get("cjpeg/risc/func/superblock").expect("superblock cell");

    println!();
    println!("Table I: simulator performance (average execution time per instruction)");
    println!("{:<28}{:>14}", "Simulator Components", "ns/instr");
    println!("{:<28}{:>14.1}", "Execute (1 operation)", execute);
    println!("{:<28}{:>14.1}", "Cache Access", cache_access);
    println!("{:<28}{:>14.1}", "Detect & Decode", detect_decode);
    println!("{:<28}{:>14.1}", "ILP", ilp_cost);
    println!("{:<28}{:>14.1}", "AIE (including memory)", aie_cost);
    println!("{:<28}{:>14.1}", "DOE (including memory)", doe_cost);
    println!("{:<28}{:>14.1}", "Memory Model", memory_model);
    println!();
    println!(
        "beyond Table I: arena + superblock hot loop  {:>8.1} ns/instr  ({:.3} MIPS)",
        superblock.ns_per_instruction, superblock.mips
    );
    println!();
    println!(
        "(paper, Xeon X5680: execute 33.2, cache 26.0, detect&decode 5602.0, ilp 21.5,\n aie 19.7, doe 32.3, memory 9.5 — expect the same ordering, not the same host ns)"
    );
}
