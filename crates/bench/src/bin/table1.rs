//! Regenerates **Table I** — average execution time per instruction of the
//! simulator components, recovered exactly as in the paper (§VII-A): the
//! simulator runs in a set of configurations, and per-component costs are
//! obtained by solving the resulting system of linear equations (simple
//! differences once the prediction overhead is neglected).
//!
//! Configurations measured on the cjpeg workload compiled for RISC:
//!
//! * `nocache` — detect & decode every instruction,
//! * `cache` — decode cache without prediction,
//! * `pred` — decode cache + instruction prediction (the baseline),
//! * `pred+ilp`, `pred+aie`, `pred+doe` — with each cycle model,
//! * `pred+aie/ideal` — AIE with an ideal memory, isolating the memory
//!   model's cost.
//!
//! Run with `cargo run --release -p kahrisma-bench --bin table1`.

use kahrisma_bench::{Workload, build, ideal_memory, measure_best_of};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

fn main() {
    let exe = build(Workload::Cjpeg, IsaKind::Risc);
    let repeats = 3;

    // Table I models the paper's per-entry cache path, so superblock
    // batching is held off for every row; the batched hot loop is reported
    // separately below the table.
    let base = SimConfig { superblocks: false, ..SimConfig::default() };
    let cfg = |f: &dyn Fn(&mut SimConfig)| {
        let mut c = base.clone();
        f(&mut c);
        c
    };

    let no_cache = cfg(&|c| {
        c.decode_cache = false;
        c.prediction = false;
    });
    let cache_only = cfg(&|c| c.prediction = false);
    let pred = base.clone();
    let ilp = cfg(&|c| c.cycle_model = Some(CycleModelKind::Ilp));
    let aie = cfg(&|c| c.cycle_model = Some(CycleModelKind::Aie));
    let doe = cfg(&|c| c.cycle_model = Some(CycleModelKind::Doe));
    let aie_ideal = cfg(&|c| {
        c.cycle_model = Some(CycleModelKind::Aie);
        c.memory = ideal_memory();
    });

    println!("measuring (cjpeg on RISC, best of {repeats} runs per configuration)...");
    let m_nocache = measure_best_of(&exe, &no_cache, repeats);
    let m_cache = measure_best_of(&exe, &cache_only, repeats);
    let m_pred = measure_best_of(&exe, &pred, repeats);
    let m_ilp = measure_best_of(&exe, &ilp, repeats);
    let m_aie = measure_best_of(&exe, &aie, repeats);
    let m_doe = measure_best_of(&exe, &doe, repeats);
    let m_aie_ideal = measure_best_of(&exe, &aie_ideal, repeats);
    let m_superblock = measure_best_of(&exe, &SimConfig::default(), repeats);

    // Solve the (diagonal, after the paper's simplification) linear system:
    // t_pred       = execute
    // t_cache      = execute + cache_access            (every instr looks up)
    // t_nocache    = execute + detect_decode
    // t_model      = execute + model (+ memory where applicable)
    // t_aie        = t_aie_ideal + memory_model
    let execute = m_pred.ns_per_instruction();
    let cache_access = (m_cache.ns_per_instruction() - execute).max(0.0);
    let detect_decode = (m_nocache.ns_per_instruction() - execute).max(0.0);
    let ilp_cost = (m_ilp.ns_per_instruction() - execute).max(0.0);
    let aie_cost = (m_aie.ns_per_instruction() - execute).max(0.0);
    let doe_cost = (m_doe.ns_per_instruction() - execute).max(0.0);
    let memory_model = (m_aie.ns_per_instruction() - m_aie_ideal.ns_per_instruction()).max(0.0);

    println!();
    println!("Table I: simulator performance (average execution time per instruction)");
    println!("{:<28}{:>14}", "Simulator Components", "ns/instr");
    println!("{:<28}{:>14.1}", "Execute (1 operation)", execute);
    println!("{:<28}{:>14.1}", "Cache Access", cache_access);
    println!("{:<28}{:>14.1}", "Detect & Decode", detect_decode);
    println!("{:<28}{:>14.1}", "ILP", ilp_cost);
    println!("{:<28}{:>14.1}", "AIE (including memory)", aie_cost);
    println!("{:<28}{:>14.1}", "DOE (including memory)", doe_cost);
    println!("{:<28}{:>14.1}", "Memory Model", memory_model);
    println!();
    println!(
        "beyond Table I: arena + superblock hot loop  {:>8.1} ns/instr  ({:.3} MIPS)",
        m_superblock.ns_per_instruction(),
        m_superblock.mips()
    );
    println!();
    println!(
        "(paper, Xeon X5680: execute 33.2, cache 26.0, detect&decode 5602.0, ilp 21.5,\n aie 19.7, doe 32.3, memory 9.5 — expect the same ordering, not the same host ns)"
    );
}
