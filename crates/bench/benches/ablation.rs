//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * decode cache and instruction prediction (the paper's own §V-A
//!   ablation),
//! * memory-hierarchy composition under the DOE model (no port limit,
//!   no L2, ideal memory),
//! * reference-pipeline drift bound (§VI-C heuristic reason 2).

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use kahrisma_bench::{Workload, build, measure};
use kahrisma_core::{
    CacheConfig, CycleModelKind, MemoryHierarchy, RunOutcome, SimConfig, Simulator,
};
use kahrisma_isa::IsaKind;
use kahrisma_rtl::{RtlConfig, RtlPipeline, simulate};

fn bench_decode_cache(c: &mut Criterion) {
    let exe = build(Workload::Dct, IsaKind::Risc);
    let mut group = c.benchmark_group("ablation_decode_cache");
    group.sample_size(10);
    let per_entry = SimConfig { superblocks: false, ..SimConfig::default() };
    let off = SimConfig { decode_cache: false, prediction: false, ..per_entry.clone() };
    let cache = SimConfig { prediction: false, ..per_entry.clone() };
    group.bench_function("off", |b| b.iter(|| black_box(measure(&exe, off.clone()).seconds)));
    group.bench_function("cache", |b| b.iter(|| black_box(measure(&exe, cache.clone()).seconds)));
    group.bench_function("cache_and_prediction", |b| {
        b.iter(|| black_box(measure(&exe, per_entry.clone()).seconds))
    });
    group.bench_function("arena_and_superblock", |b| {
        b.iter(|| black_box(measure(&exe, SimConfig::default()).seconds))
    });
    group.finish();
}

/// The steady-state hot loop: one simulator re-run via `reset()` each
/// iteration, so the decode cache stays warm and neither construction nor
/// cold decodes pollute the per-iteration time (contrast with the
/// `ablation_decode_cache` rows, which deliberately include them).
fn bench_warm_hot_loop(c: &mut Criterion) {
    let exe = build(Workload::Dct, IsaKind::Risc);
    let mut group = c.benchmark_group("ablation_warm_hot_loop");
    group.sample_size(10);
    for (name, config) in [
        ("per_entry", SimConfig { superblocks: false, ..SimConfig::default() }),
        ("superblock", SimConfig::default()),
    ] {
        let mut sim = Simulator::new(&exe, config).expect("load executable");
        group.bench_function(name, |b| {
            b.iter(|| {
                sim.reset();
                let outcome = sim.run(u64::MAX).expect("simulation error");
                assert!(matches!(outcome, RunOutcome::Halted { .. }));
                black_box(sim.stats().instructions)
            })
        });
    }
    group.finish();
}

fn bench_memory_hierarchy(c: &mut Criterion) {
    let exe = build(Workload::Aes, IsaKind::Vliw4);
    let mut group = c.benchmark_group("ablation_memory_hierarchy");
    group.sample_size(10);
    let variants: Vec<(&str, MemoryHierarchy)> = vec![
        ("paper", MemoryHierarchy::paper_default()),
        (
            "no_port_limit",
            MemoryHierarchy::new()
                .with_cache(CacheConfig::paper_l1())
                .with_cache(CacheConfig::paper_l2())
                .with_memory(18),
        ),
        (
            "no_l2",
            MemoryHierarchy::new()
                .with_conn_limit(1)
                .with_cache(CacheConfig::paper_l1())
                .with_memory(18),
        ),
        ("ideal", MemoryHierarchy::new().with_memory(3)),
    ];
    for (name, memory) in variants {
        let mut config = SimConfig::with_model(CycleModelKind::Doe);
        config.memory = memory;
        group.bench_function(name, |b| {
            b.iter(|| {
                let m = measure(&exe, config.clone());
                black_box(m.cycles.expect("model").cycles)
            })
        });
    }
    group.finish();
}

fn bench_rtl_drift(c: &mut Criterion) {
    let exe = build(Workload::Dct, IsaKind::Vliw8);
    let mut group = c.benchmark_group("ablation_rtl_drift");
    group.sample_size(10);
    for drift in [1usize, 2, 4, 16] {
        let config = RtlConfig { max_drift: drift, ..RtlConfig::default() };
        group.bench_function(format!("drift_{drift}"), |b| {
            b.iter(|| black_box(simulate(&exe, &config, u64::MAX).unwrap().cycles))
        });
    }
    // Keep the pipeline type exercised directly so its API stays covered.
    let _ = RtlPipeline::new(RtlConfig::default());
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_cache,
    bench_warm_hot_loop,
    bench_memory_hierarchy,
    bench_rtl_drift
);
criterion_main!(benches);
