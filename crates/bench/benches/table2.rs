//! Criterion bench behind **Table II**: the cycle-approximate DOE model
//! versus the cycle-accurate reference pipeline on the DCT workload — the
//! wall-clock gap is the "trade-off between performance and accuracy" the
//! paper quantifies (§VII-C). The accuracy table itself comes from
//! `cargo run --release -p kahrisma-bench --bin table2`.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use kahrisma_bench::{Workload, build, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;
use kahrisma_rtl::{RtlConfig, simulate};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (name, isa) in [("risc", IsaKind::Risc), ("vliw8", IsaKind::Vliw8)] {
        let exe = build(Workload::Dct, isa);
        group.bench_function(format!("doe_approximation_{name}"), |b| {
            b.iter(|| {
                black_box(measure(&exe, SimConfig::with_model(CycleModelKind::Doe)).cycles)
            });
        });
        group.bench_function(format!("rtl_reference_{name}"), |b| {
            b.iter(|| black_box(simulate(&exe, &RtlConfig::default(), u64::MAX).unwrap().cycles));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
