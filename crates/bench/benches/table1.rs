//! Criterion bench behind **Table I**: wall-clock cost of the simulator's
//! components, measured by toggling the decode cache, the instruction
//! prediction, and the cycle models on the cjpeg workload (paper §VII-A).
//!
//! The printable table (with the solved per-component costs) comes from
//! `cargo run --release -p kahrisma-bench --bin table1`.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use kahrisma_bench::{Workload, build, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

fn bench_table1(c: &mut Criterion) {
    // The DCT workload keeps Criterion's iteration count tractable while
    // exercising the identical code paths as the cjpeg measurement binary.
    let exe = build(Workload::Dct, IsaKind::Risc);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    // The named rows reproduce the paper's per-entry cache ablation, so
    // superblock batching is disabled for them; the final row measures the
    // batched hot loop (this repo's default).
    let per_entry = SimConfig { superblocks: false, ..SimConfig::default() };
    let no_cache =
        SimConfig { decode_cache: false, prediction: false, ..per_entry.clone() };
    let cache_only = SimConfig { prediction: false, ..per_entry.clone() };

    let configs: Vec<(&str, SimConfig)> = vec![
        ("no_decode_cache", no_cache),
        ("decode_cache", cache_only),
        ("cache_plus_prediction", per_entry.clone()),
        ("arena_plus_superblock", SimConfig::default()),
        ("ilp_model", SimConfig::with_model(CycleModelKind::Ilp)),
        ("aie_model", SimConfig::with_model(CycleModelKind::Aie)),
        ("doe_model", SimConfig::with_model(CycleModelKind::Doe)),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(measure(&exe, config.clone()).stats.instructions));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
