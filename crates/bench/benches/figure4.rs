//! Criterion bench behind **Figure 4**: the cost of the ILP measurement and
//! the DOE approximation per issue width on the DCT workload. The figure's
//! actual data series come from
//! `cargo run --release -p kahrisma-bench --bin figure4`.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use kahrisma_bench::{Workload, build, figure4_isas, measure};
use kahrisma_core::{CycleModelKind, SimConfig};
use kahrisma_isa::IsaKind;

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);

    // The theoretical ILP measurement over the RISC binary.
    let risc = build(Workload::Dct, IsaKind::Risc);
    group.bench_function("ilp_measurement_risc", |b| {
        b.iter(|| {
            black_box(measure(&risc, SimConfig::with_model(CycleModelKind::Ilp)).cycles)
        });
    });

    // The DOE approximation per VLIW instance.
    for (width, isa) in figure4_isas() {
        let exe = build(Workload::Dct, isa);
        group.bench_function(format!("doe_width_{width}"), |b| {
            b.iter(|| {
                black_box(measure(&exe, SimConfig::with_model(CycleModelKind::Doe)).cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
