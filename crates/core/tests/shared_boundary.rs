//! Boundary behavior of the fabric-shared memory window: unaligned and
//! window-straddling accesses at the shared-region edges must split
//! byte-exactly between the port and private memory, identically on the
//! interpreter and the compiled (IR) tier.

use kahrisma_asm::build;
use kahrisma_core::{RunOutcome, SharedMem, SimConfig, Simulator, TierMode};

const BASE: u32 = 0xE000_0000;
const LEN: u32 = 0x100;

#[test]
fn straddling_and_unaligned_accesses_split_byte_exactly() {
    let shared = SharedMem::new(BASE, LEN);
    let exe = build(&[(
        "noop.s",
        ".isa risc\n.text\n.global main\n.func main\nmain: li rv, 0\n jr ra\n.endfunc\n",
    )])
    .expect("assemble");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("sim");
    sim.attach_shared_port(shared.port());
    let mem = &mut sim.state_mut().mem;

    // A word write straddling the low edge: two bytes land in private
    // memory, two in the port. The read-back reassembles both halves.
    mem.write_word(BASE.wrapping_sub(2), 0xAABB_CCDD);
    assert_eq!(mem.read_word(BASE.wrapping_sub(2)), 0xAABB_CCDD);
    assert_eq!(mem.read_byte(BASE.wrapping_sub(1)), 0xCC, "private side");
    assert_eq!(mem.read_byte(BASE), 0xBB, "window side");

    // A word write straddling the high edge: the two bytes beyond the
    // window land in private memory at base + LEN.
    mem.write_word(BASE + LEN - 2, 0x1122_3344);
    assert_eq!(mem.read_word(BASE + LEN - 2), 0x1122_3344);
    assert_eq!(mem.read_byte(BASE + LEN - 1), 0x33, "window side");
    assert_eq!(mem.read_byte(BASE + LEN), 0x22, "private side");

    // An unaligned word fully inside the window.
    mem.write_word(BASE + 1, 0x5566_7788);
    assert_eq!(mem.read_word(BASE + 1), 0x5566_7788);

    // A half straddling the high edge.
    mem.write_half(BASE + LEN - 1, 0x9A9B);
    assert_eq!(mem.read_half(BASE + LEN - 1), 0x9A9B);

    // Every in-window byte above went through the port's write log;
    // committing publishes exactly those bytes to the shared image.
    let mut shared = shared;
    let port = sim.state_mut().mem.shared_port_mut().expect("port");
    // 2 (low straddle) + 2 (high straddle) + 4 (unaligned) + 1 (half) bytes.
    assert_eq!(port.pending_writes(), 9);
    shared.commit(port);
    assert_eq!(shared.read_committed(BASE), 0xBB);
    assert_eq!(shared.read_committed_word(BASE + 1), 0x5566_7788);
    assert_eq!(shared.read_committed(BASE + LEN - 2), 0x44);
    assert_eq!(shared.read_committed(BASE + LEN - 1), 0x9B, "half's low byte in window");
    assert_eq!(sim.state().mem.read_byte(BASE + LEN), 0x9A, "half's high byte private");

    // Private straddle bytes never reached the committed image, and
    // out-of-window reads on the image stay inert.
    assert_eq!(shared.read_committed(BASE + LEN), 0);
}

/// The boundary-exercising program: a hot loop whose body performs a
/// low-edge straddling store/load pair, a high-edge straddling store/load
/// pair, and an unaligned in-window store/load, accumulating everything it
/// reads back. The loop is hot enough for the compiled tier to promote it.
fn boundary_src() -> String {
    // BASE as a signed immediate for one li; the loop runs 64 times.
    let base = BASE as i32;
    let hi = (LEN - 2) as i32;
    format!(
        "
    .isa risc
    .text
    .global main
    .func main
    main:
        li t0, {base}
        li s0, 0
        li s1, 64
    loop:
        # low-edge straddle: 2 bytes private, 2 bytes window
        sw s1, -2(t0)
        lw t1, -2(t0)
        add s0, s0, t1
        # high-edge straddle: 2 bytes window, 2 bytes private
        sw t1, {hi}(t0)
        lw t2, {hi}(t0)
        add s0, s0, t2
        # unaligned fully inside the window
        sw s0, 1(t0)
        lw t3, 1(t0)
        add s0, s0, t3
        # unaligned half at the very last window byte
        sh s0, {last}(t0)
        lhu t4, {last}(t0)
        add s0, s0, t4
        addi s1, s1, -1
        bne s1, zero, loop
        mv rv, s0
        jr ra
    .endfunc
",
        last = (LEN - 1) as i32,
    )
}

fn run_boundary(tier: TierMode) -> (u32, u64, u64, u64, usize, Vec<u8>) {
    let exe = build(&[("boundary.s", &boundary_src())]).expect("assemble");
    let config = SimConfig { tier, tier_threshold: 4, ..SimConfig::default() };
    let mut sim = Simulator::new(&exe, config).expect("sim");
    let mut shared = SharedMem::new(BASE, LEN);
    sim.attach_shared_port(shared.port());
    let outcome = sim.run(10_000_000).expect("run");
    let RunOutcome::Halted { exit_code } = outcome else {
        panic!("did not halt: {outcome:?}");
    };
    let stats = *sim.stats();
    let port = sim.state_mut().mem.shared_port_mut().expect("port");
    let pending = port.pending_writes();
    shared.commit(port);
    (exit_code, stats.instructions, stats.mem_reads, stats.mem_writes, pending, {
        shared.committed().to_vec()
    })
}

#[test]
fn interpreter_and_ir_tier_agree_on_boundary_accesses() {
    let exe = build(&[("boundary.s", &boundary_src())]).expect("assemble");
    let config = SimConfig { tier: TierMode::Ir, tier_threshold: 4, ..SimConfig::default() };
    let mut probe = Simulator::new(&exe, config).expect("sim");
    probe.attach_shared_port(SharedMem::new(BASE, LEN).port());
    probe.run(10_000_000).expect("run");
    assert!(probe.stats().tier_promotions > 0, "loop never promoted to the IR tier");
    assert!(probe.stats().ir_instructions > 0, "IR tier never executed");

    let interp = run_boundary(TierMode::Interp);
    let ir = run_boundary(TierMode::Ir);
    assert_eq!(interp.0, ir.0, "exit code differs by tier");
    assert_eq!(interp.1, ir.1, "instruction count differs by tier");
    assert_eq!(interp.2, ir.2, "mem_reads differ by tier");
    assert_eq!(interp.3, ir.3, "mem_writes differ by tier");
    assert_eq!(interp.4, ir.4, "pending shared writes differ by tier");
    assert_eq!(interp.5, ir.5, "committed shared image differs by tier");
}
