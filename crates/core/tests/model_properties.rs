//! Property-based invariants of the cycle models over randomized
//! instruction streams (independent of the toolchain).

use proptest::prelude::*;

use kahrisma_core::{
    AccessKind, AieModel, CacheConfig, CycleModel, DoeModel, IlpModel, InstrEvent,
    MemoryHierarchy, OpEvent,
};

/// A randomly generated operation for a given issue slot.
fn arb_op(slot: u8) -> impl Strategy<Value = OpEvent> {
    (0u8..8, 0u8..8, 1u32..4, prop_oneof![Just(0u8), Just(1), Just(2)], 0u32..0x2000).prop_map(
        move |(src_a, src_b, delay, kind, addr)| {
            let mut op = OpEvent {
                slot,
                srcs: [8 + src_a, 16 + src_b],
                nsrcs: 2,
                dst: 8 + ((src_a + src_b) % 16),
                delay,
                mem: None,
                is_branch: false,
                serialize: false,
                is_nop: false,
                is_muldiv: false,
                mispredict_penalty: 0,
            };
            match kind {
                1 => op.mem = Some((addr & !3, AccessKind::Read)),
                2 => op.mem = Some((addr & !3, AccessKind::Write)),
                _ => {}
            }
            op
        },
    )
}

/// A random instruction stream for the given width: each instruction fills
/// every slot with a real op or a nop.
fn arb_stream(width: u8, len: usize) -> impl Strategy<Value = Vec<Vec<OpEvent>>> {
    prop::collection::vec(
        prop::collection::vec(any::<bool>(), width as usize).prop_flat_map(move |mask| {
            let slots: Vec<BoxedStrategy<OpEvent>> = mask
                .into_iter()
                .enumerate()
                .map(|(slot, real)| {
                    if real {
                        arb_op(slot as u8).boxed()
                    } else {
                        Just(OpEvent::nop(slot as u8)).boxed()
                    }
                })
                .collect();
            slots
        }),
        1..len,
    )
}

fn run_model(model: &mut dyn CycleModel, stream: &[Vec<OpEvent>]) -> u64 {
    for (i, ops) in stream.iter().enumerate() {
        model.instruction(&InstrEvent { addr: (i as u32) * 32, ops });
    }
    model.finish();
    model.cycles()
}

fn hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DOE (slots drift) never takes longer than AIE (full barrier per
    /// instruction) on the same stream and memory configuration.
    #[test]
    fn doe_bounded_by_aie(stream in arb_stream(4, 24)) {
        let doe = run_model(&mut DoeModel::new(hierarchy()), &stream);
        let aie = run_model(&mut AieModel::new(hierarchy()), &stream);
        prop_assert!(doe <= aie, "DOE {doe} > AIE {aie}");
    }

    /// The ILP model (unlimited resources) never takes longer than DOE on a
    /// RISC (single-slot) stream with ideal-memory DOE.
    #[test]
    fn ilp_bounded_by_single_slot_doe(stream in arb_stream(1, 32)) {
        let ilp = run_model(&mut IlpModel::new(), &stream);
        let doe = run_model(&mut DoeModel::new(MemoryHierarchy::new().with_memory(3)), &stream);
        prop_assert!(ilp <= doe, "ILP {ilp} > DOE {doe}");
    }

    /// Cycle counts are monotone under appending instructions.
    #[test]
    fn appending_work_never_reduces_cycles(stream in arb_stream(2, 20)) {
        let mut m1 = DoeModel::new(hierarchy());
        let mut m2 = DoeModel::new(hierarchy());
        let full = run_model(&mut m1, &stream);
        let prefix = &stream[..stream.len() / 2];
        let half = run_model(&mut m2, prefix);
        prop_assert!(half <= full, "prefix {half} > full {full}");
    }

    /// Models are deterministic functions of the stream.
    #[test]
    fn models_are_deterministic(stream in arb_stream(4, 16)) {
        for _ in 0..2 {
            let a = run_model(&mut DoeModel::new(hierarchy()), &stream);
            let b = run_model(&mut DoeModel::new(hierarchy()), &stream);
            prop_assert_eq!(a, b);
            let a = run_model(&mut AieModel::new(hierarchy()), &stream);
            let b = run_model(&mut AieModel::new(hierarchy()), &stream);
            prop_assert_eq!(a, b);
        }
    }

    /// Every model accounts at least one cycle per non-empty stream, and at
    /// least the critical delay of any single operation.
    #[test]
    fn cycles_lower_bounds(stream in arb_stream(2, 16)) {
        let max_delay = stream
            .iter()
            .flatten()
            .filter(|o| !o.is_nop && o.mem.is_none())
            .map(|o| u64::from(o.delay))
            .max()
            .unwrap_or(0);
        for cycles in [
            run_model(&mut AieModel::new(hierarchy()), &stream),
            run_model(&mut DoeModel::new(hierarchy()), &stream),
        ] {
            prop_assert!(cycles >= max_delay, "{cycles} < {max_delay}");
        }
    }
}
