//! Minimal shared command-line parsing for the workspace binaries.
//!
//! `ksim`, `kbatch`, `kctl`, and `kfab` all parse hand-rolled flag lists
//! (the workspace is std-only by design, so there is no clap). This module
//! is the one copy of the mechanics: a cursor over the argument vector with
//! uniform `--flag VALUE` handling and uniform error strings, so each
//! binary's `parse_args` reduces to a testable `match` over flag names that
//! returns `Result<Options, String>` instead of exiting mid-parse.
//!
//! # Example
//!
//! ```
//! use kahrisma_core::args::ArgList;
//!
//! let mut args = ArgList::new(["--budget", "500", "prog.elf"].map(String::from).to_vec());
//! let mut budget: u64 = 0;
//! let mut input = None;
//! while let Some(arg) = args.next_arg() {
//!     match arg.as_str() {
//!         "--budget" => budget = args.parse_value("--budget")?,
//!         _ => input = Some(args.positional(&arg)?),
//!     }
//! }
//! assert_eq!(budget, 500);
//! assert_eq!(input.as_deref(), Some("prog.elf"));
//! # Ok::<(), String>(())
//! ```

use std::fmt::Display;
use std::str::FromStr;

/// A cursor over a binary's argument vector.
#[derive(Debug, Clone)]
pub struct ArgList {
    items: Vec<String>,
    pos: usize,
}

impl ArgList {
    /// Wraps an argument vector (without the program name).
    #[must_use]
    pub fn new(items: Vec<String>) -> ArgList {
        ArgList { items, pos: 0 }
    }

    /// Collects the process arguments, skipping `argv[0]`.
    #[must_use]
    pub fn from_env() -> ArgList {
        ArgList::new(std::env::args().skip(1).collect())
    }

    /// Advances and returns the next argument, or `None` when exhausted.
    pub fn next_arg(&mut self) -> Option<String> {
        let item = self.items.get(self.pos).cloned();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    /// The next argument without advancing.
    #[must_use]
    pub fn peek(&self) -> Option<&str> {
        self.items.get(self.pos).map(String::as_str)
    }

    /// `true` when every argument has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.items.len()
    }

    /// Consumes the value of `flag` (the argument after it).
    ///
    /// # Errors
    ///
    /// `"{flag} expects a value"` when the vector is exhausted.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next_arg().ok_or_else(|| format!("{flag} expects a value"))
    }

    /// Consumes and parses the value of `flag` with [`FromStr`].
    ///
    /// # Errors
    ///
    /// `"{flag} expects a value"` when exhausted, or
    /// `"invalid value for {flag}: {value} ({error})"` when the parse fails.
    pub fn parse_value<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        let raw = self.value(flag)?;
        raw.parse().map_err(|e| format!("invalid value for {flag}: {raw} ({e})"))
    }

    /// Validates a positional argument: rejects anything that still looks
    /// like a flag, so typos surface as errors instead of being mistaken
    /// for file names.
    ///
    /// # Errors
    ///
    /// `"unknown flag: {arg}"` when `arg` starts with `-` (except the
    /// conventional bare `-` for stdio).
    pub fn positional(&self, arg: &str) -> Result<String, String> {
        if arg.starts_with('-') && arg != "-" {
            return Err(format!("unknown flag: {arg}"));
        }
        Ok(arg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[&str]) -> ArgList {
        ArgList::new(items.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn cursor_walks_in_order() {
        let mut args = list(&["a", "b"]);
        assert_eq!(args.peek(), Some("a"));
        assert!(!args.is_done());
        assert_eq!(args.next_arg().as_deref(), Some("a"));
        assert_eq!(args.next_arg().as_deref(), Some("b"));
        assert_eq!(args.next_arg(), None);
        assert!(args.is_done());
    }

    #[test]
    fn value_errors_use_uniform_message() {
        let mut args = list(&[]);
        assert_eq!(args.value("--out"), Err("--out expects a value".to_string()));
        let mut args = list(&["--budget"]);
        args.next_arg();
        assert_eq!(args.parse_value::<u64>("--budget"), Err("--budget expects a value".to_string()));
    }

    #[test]
    fn parse_value_reports_the_bad_token() {
        let mut args = list(&["abc"]);
        let err = args.parse_value::<u64>("--budget").unwrap_err();
        assert!(err.starts_with("invalid value for --budget: abc"), "{err}");
        let mut args = list(&["250"]);
        assert_eq!(args.parse_value::<u64>("--budget"), Ok(250));
    }

    #[test]
    fn positional_rejects_flag_like_tokens() {
        let args = list(&[]);
        assert_eq!(args.positional("prog.elf"), Ok("prog.elf".to_string()));
        assert_eq!(args.positional("-"), Ok("-".to_string()));
        assert_eq!(args.positional("--oops"), Err("unknown flag: --oops".to_string()));
    }
}
