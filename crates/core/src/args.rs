//! Minimal shared command-line parsing for the workspace binaries.
//!
//! `ksim`, `kbatch`, `kctl`, and `kfab` all parse hand-rolled flag lists
//! (the workspace is std-only by design, so there is no clap). This module
//! is the one copy of the mechanics: a cursor over the argument vector with
//! uniform `--flag VALUE` handling and uniform error strings, so each
//! binary's `parse_args` reduces to a testable `match` over flag names that
//! returns `Result<Options, String>` instead of exiting mid-parse.
//!
//! # Example
//!
//! ```
//! use kahrisma_core::args::ArgList;
//!
//! let mut args = ArgList::new(["--budget", "500", "prog.elf"].map(String::from).to_vec());
//! let mut budget: u64 = 0;
//! let mut input = None;
//! while let Some(arg) = args.next_arg() {
//!     match arg.as_str() {
//!         "--budget" => budget = args.parse_value("--budget")?,
//!         _ => input = Some(args.positional(&arg)?),
//!     }
//! }
//! assert_eq!(budget, 500);
//! assert_eq!(input.as_deref(), Some("prog.elf"));
//! # Ok::<(), String>(())
//! ```

use std::fmt::Display;
use std::str::FromStr;

use crate::cycles::MemGeometry;

/// A cursor over a binary's argument vector.
#[derive(Debug, Clone)]
pub struct ArgList {
    items: Vec<String>,
    pos: usize,
}

impl ArgList {
    /// Wraps an argument vector (without the program name).
    #[must_use]
    pub fn new(items: Vec<String>) -> ArgList {
        ArgList { items, pos: 0 }
    }

    /// Collects the process arguments, skipping `argv[0]`.
    #[must_use]
    pub fn from_env() -> ArgList {
        ArgList::new(std::env::args().skip(1).collect())
    }

    /// Advances and returns the next argument, or `None` when exhausted.
    pub fn next_arg(&mut self) -> Option<String> {
        let item = self.items.get(self.pos).cloned();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    /// The next argument without advancing.
    #[must_use]
    pub fn peek(&self) -> Option<&str> {
        self.items.get(self.pos).map(String::as_str)
    }

    /// `true` when every argument has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.items.len()
    }

    /// Consumes the value of `flag` (the argument after it).
    ///
    /// # Errors
    ///
    /// `"{flag} expects a value"` when the vector is exhausted.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next_arg().ok_or_else(|| format!("{flag} expects a value"))
    }

    /// Consumes and parses the value of `flag` with [`FromStr`].
    ///
    /// # Errors
    ///
    /// `"{flag} expects a value"` when exhausted, or
    /// `"invalid value for {flag}: {value} ({error})"` when the parse fails.
    pub fn parse_value<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        let raw = self.value(flag)?;
        raw.parse().map_err(|e| format!("invalid value for {flag}: {raw} ({e})"))
    }

    /// Validates a positional argument: rejects anything that still looks
    /// like a flag, so typos surface as errors instead of being mistaken
    /// for file names.
    ///
    /// # Errors
    ///
    /// `"unknown flag: {arg}"` when `arg` starts with `-` (except the
    /// conventional bare `-` for stdio).
    pub fn positional(&self, arg: &str) -> Result<String, String> {
        if arg.starts_with('-') && arg != "-" {
            return Err(format!("unknown flag: {arg}"));
        }
        Ok(arg.to_string())
    }
}

/// The shared parser for the four memory-geometry flags
/// (`--l1-lines`, `--line-bytes`, `--l2-ports`, `--mem-delay`).
///
/// `kfab --mem coherent` and `kbatch dse` both expose the same knobs; this
/// is the one copy of their parsing and validation. Each flag accepts a
/// comma-separated list of values so `kbatch dse` can sweep a grid
/// ([`GeometryArgs::grid`]); binaries that want exactly one geometry
/// ([`GeometryArgs::single`]) reject multi-valued flags with a uniform
/// error.
#[derive(Debug, Clone, Default)]
pub struct GeometryArgs {
    /// Values given to `--l1-lines`, in order.
    pub l1_lines: Option<Vec<u32>>,
    /// Values given to `--line-bytes`, in order.
    pub line_bytes: Option<Vec<u32>>,
    /// Values given to `--l2-ports`, in order.
    pub l2_ports: Option<Vec<u32>>,
    /// Values given to `--mem-delay`, in order.
    pub mem_delay: Option<Vec<u64>>,
}

impl GeometryArgs {
    /// Consumes `flag`'s value when it is one of the four geometry flags.
    /// Returns `Ok(false)` (without consuming anything) for other flags so
    /// callers can fall through to their own `match` arms.
    ///
    /// # Errors
    ///
    /// The uniform [`ArgList`] wordings for missing or unparseable values,
    /// plus per-flag validation: `"--l1-lines must be at least 1"`,
    /// `"--line-bytes must be a power of two"`, and
    /// `"--l2-ports must be at least 1"`.
    pub fn accept(&mut self, flag: &str, args: &mut ArgList) -> Result<bool, String> {
        match flag {
            "--l1-lines" => {
                let vals = parse_list::<u32>(flag, args)?;
                if vals.contains(&0) {
                    return Err("--l1-lines must be at least 1".to_string());
                }
                self.l1_lines = Some(vals);
            }
            "--line-bytes" => {
                let vals = parse_list::<u32>(flag, args)?;
                if vals.iter().any(|&v| v == 0 || !v.is_power_of_two()) {
                    return Err("--line-bytes must be a power of two".to_string());
                }
                self.line_bytes = Some(vals);
            }
            "--l2-ports" => {
                let vals = parse_list::<u32>(flag, args)?;
                if vals.contains(&0) {
                    return Err("--l2-ports must be at least 1".to_string());
                }
                self.l2_ports = Some(vals);
            }
            "--mem-delay" => {
                self.mem_delay = Some(parse_list::<u64>(flag, args)?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// `true` when any geometry flag was given.
    #[must_use]
    pub fn any(&self) -> bool {
        self.l1_lines.is_some()
            || self.line_bytes.is_some()
            || self.l2_ports.is_some()
            || self.mem_delay.is_some()
    }

    /// Resolves the flags to at most one [`MemGeometry`], for binaries that
    /// configure a single machine (`kfab`). `None` when no geometry flag
    /// was given; defaults fill the unspecified fields otherwise.
    ///
    /// # Errors
    ///
    /// `"{flag} accepts a single value here, got a list"` when any flag was
    /// given more than one value.
    pub fn single(&self) -> Result<Option<MemGeometry>, String> {
        if !self.any() {
            return Ok(None);
        }
        fn one<T: Copy>(flag: &str, vals: &Option<Vec<T>>, default: T) -> Result<T, String> {
            match vals {
                None => Ok(default),
                Some(v) if v.len() == 1 => Ok(v[0]),
                Some(_) => Err(format!("{flag} accepts a single value here, got a list")),
            }
        }
        let d = MemGeometry::default();
        Ok(Some(MemGeometry {
            l1_lines: one("--l1-lines", &self.l1_lines, d.l1_lines)?,
            line_bytes: one("--line-bytes", &self.line_bytes, d.line_bytes)?,
            l2_ports: one("--l2-ports", &self.l2_ports, d.l2_ports)?,
            mem_delay: one("--mem-delay", &self.mem_delay, d.mem_delay)?,
        }))
    }

    /// Expands the flags into the full cross product of geometries, filling
    /// unspecified axes with the paper default. The order is deterministic:
    /// `l1_lines` outermost, then `line_bytes`, `l2_ports`, `mem_delay`,
    /// each axis in the order its values were given.
    #[must_use]
    pub fn grid(&self) -> Vec<MemGeometry> {
        let d = MemGeometry::default();
        let l1 = self.l1_lines.clone().unwrap_or_else(|| vec![d.l1_lines]);
        let lb = self.line_bytes.clone().unwrap_or_else(|| vec![d.line_bytes]);
        let lp = self.l2_ports.clone().unwrap_or_else(|| vec![d.l2_ports]);
        let md = self.mem_delay.clone().unwrap_or_else(|| vec![d.mem_delay]);
        let mut out = Vec::with_capacity(l1.len() * lb.len() * lp.len() * md.len());
        for &l1_lines in &l1 {
            for &line_bytes in &lb {
                for &l2_ports in &lp {
                    for &mem_delay in &md {
                        out.push(MemGeometry { l1_lines, line_bytes, l2_ports, mem_delay });
                    }
                }
            }
        }
        out
    }
}

/// Parses a comma-separated value list for `flag`.
fn parse_list<T>(flag: &str, args: &mut ArgList) -> Result<Vec<T>, String>
where
    T: FromStr,
    T::Err: Display,
{
    let raw = args.value(flag)?;
    raw.split(',')
        .map(|tok| {
            let tok = tok.trim();
            tok.parse()
                .map_err(|e| format!("invalid value for {flag}: {tok} ({e})"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[&str]) -> ArgList {
        ArgList::new(items.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn cursor_walks_in_order() {
        let mut args = list(&["a", "b"]);
        assert_eq!(args.peek(), Some("a"));
        assert!(!args.is_done());
        assert_eq!(args.next_arg().as_deref(), Some("a"));
        assert_eq!(args.next_arg().as_deref(), Some("b"));
        assert_eq!(args.next_arg(), None);
        assert!(args.is_done());
    }

    #[test]
    fn value_errors_use_uniform_message() {
        let mut args = list(&[]);
        assert_eq!(args.value("--out"), Err("--out expects a value".to_string()));
        let mut args = list(&["--budget"]);
        args.next_arg();
        assert_eq!(args.parse_value::<u64>("--budget"), Err("--budget expects a value".to_string()));
    }

    #[test]
    fn parse_value_reports_the_bad_token() {
        let mut args = list(&["abc"]);
        let err = args.parse_value::<u64>("--budget").unwrap_err();
        assert!(err.starts_with("invalid value for --budget: abc"), "{err}");
        let mut args = list(&["250"]);
        assert_eq!(args.parse_value::<u64>("--budget"), Ok(250));
    }

    #[test]
    fn positional_rejects_flag_like_tokens() {
        let args = list(&[]);
        assert_eq!(args.positional("prog.elf"), Ok("prog.elf".to_string()));
        assert_eq!(args.positional("-"), Ok("-".to_string()));
        assert_eq!(args.positional("--oops"), Err("unknown flag: --oops".to_string()));
    }

    fn geo_from(items: &[&str]) -> Result<GeometryArgs, String> {
        let mut args = list(items);
        let mut geo = GeometryArgs::default();
        while let Some(arg) = args.next_arg() {
            if !geo.accept(&arg, &mut args)? {
                return Err(format!("unknown flag: {arg}"));
            }
        }
        Ok(geo)
    }

    #[test]
    fn geometry_single_fills_defaults() {
        let geo = geo_from(&["--l1-lines", "8", "--mem-delay", "40"]).unwrap();
        assert!(geo.any());
        let g = geo.single().unwrap().unwrap();
        assert_eq!(g.l1_lines, 8);
        assert_eq!(g.line_bytes, 32);
        assert_eq!(g.l2_ports, 1);
        assert_eq!(g.mem_delay, 40);
        assert_eq!(GeometryArgs::default().single(), Ok(None));
    }

    #[test]
    fn geometry_single_rejects_lists() {
        let geo = geo_from(&["--l2-ports", "1,2"]).unwrap();
        let err = geo.single().unwrap_err();
        assert!(err.contains("single value"), "{err}");
    }

    #[test]
    fn geometry_validation_matches_kfab_wordings() {
        assert_eq!(
            geo_from(&["--l2-ports", "0"]).unwrap_err(),
            "--l2-ports must be at least 1"
        );
        assert_eq!(
            geo_from(&["--l1-lines", "0"]).unwrap_err(),
            "--l1-lines must be at least 1"
        );
        assert_eq!(
            geo_from(&["--line-bytes", "24"]).unwrap_err(),
            "--line-bytes must be a power of two"
        );
        let err = geo_from(&["--mem-delay", "abc"]).unwrap_err();
        assert!(err.starts_with("invalid value for --mem-delay: abc"), "{err}");
        assert_eq!(
            geo_from(&["--line-bytes"]).unwrap_err(),
            "--line-bytes expects a value"
        );
    }

    #[test]
    fn geometry_grid_is_the_ordered_cross_product() {
        let geo = geo_from(&["--l1-lines", "16,32", "--line-bytes", "16,32"]).unwrap();
        let grid = geo.grid();
        assert_eq!(grid.len(), 4);
        assert_eq!((grid[0].l1_lines, grid[0].line_bytes), (16, 16));
        assert_eq!((grid[1].l1_lines, grid[1].line_bytes), (16, 32));
        assert_eq!((grid[2].l1_lines, grid[2].line_bytes), (32, 16));
        assert_eq!((grid[3].l1_lines, grid[3].line_bytes), (32, 32));
        for g in &grid {
            assert_eq!(g.l2_ports, 1);
            assert_eq!(g.mem_delay, 18);
        }
        assert_eq!(GeometryArgs::default().grid().len(), 1);
        assert_eq!(GeometryArgs::default().grid()[0], MemGeometry::default());
    }
}
