//! Memory-delay approximation (paper §VI-D).
//!
//! "We modeled a memory hierarchy consisting of three types of modules:
//! caches, connection limits, and main memory. Each module has the same
//! interface containing a function to calculate the completion cycle of a
//! memory access."
//!
//! The hierarchy is an ordered chain of [`MemoryModule`]s; a miss (or
//! write-back) in one module is passed to the remainder of the chain with
//! the current cycle as the sub-access start cycle, exactly as described in
//! the paper. The models call the chain *in program order* while the start
//! cycles may be out of order (DOE slots drift); the per-line write-cycle
//! tracking in [`CacheModule`] keeps hit completions consistent.

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// One module of the memory hierarchy.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MemoryModule {
    /// Port-arbitration module (paper: "connection limit").
    ConnLimit(ConnectionLimit),
    /// n-way set-associative write-back cache with LRU replacement.
    Cache(CacheModule),
    /// Fixed-delay main memory.
    Memory(MainMemory),
}

/// Fixed-delay main memory: "the memory access delay is configurable. It
/// calculates the completion cycle by adding the fixed delay to the start
/// cycle."
#[derive(Debug, Clone, Copy)]
pub struct MainMemory {
    delay: u64,
    accesses: u64,
}

impl MainMemory {
    /// Creates a main-memory module with the given access delay in cycles.
    #[must_use]
    pub fn new(delay: u64) -> Self {
        MainMemory { delay, accesses: 0 }
    }

    fn access(&mut self, start: u64) -> u64 {
        self.accesses += 1;
        start + self.delay
    }
}

/// Cache geometry and latency configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Access delay in cycles.
    pub delay: u64,
}

impl CacheConfig {
    /// The paper's L1 configuration: 2 KiB, 4-way, 3-cycle delay (32-byte
    /// lines; the paper does not state a line size).
    #[must_use]
    pub fn paper_l1() -> Self {
        CacheConfig { size: 2 * 1024, line_size: 32, assoc: 4, delay: 3 }
    }

    /// The paper's L2 configuration: 256 KiB, 4-way, 6-cycle delay.
    #[must_use]
    pub fn paper_l2() -> Self {
        CacheConfig { size: 256 * 1024, line_size: 32, assoc: 4, delay: 6 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CacheLine {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Cycle the line's data became available (paper: "we store within each
    /// cache line the cycle the cache line was written").
    write_cycle: u64,
    lru: u64,
}

/// Per-cache hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// n-way set-associative write-back cache with LRU replacement (§VI-D).
#[derive(Debug, Clone)]
pub struct CacheModule {
    config: CacheConfig,
    sets: u32,
    lines: Vec<CacheLine>,
    lru_clock: u64,
    stats: CacheStats,
}

impl CacheModule {
    /// Creates a cache module.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (sizes not powers of two, or
    /// capacity not divisible by `line_size * assoc`).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(config.assoc >= 1, "associativity must be at least 1");
        let lines_total = config.size / config.line_size;
        assert!(
            lines_total.is_multiple_of(config.assoc) && lines_total >= config.assoc,
            "cache size must be divisible by line_size * assoc"
        );
        let sets = lines_total / config.assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheModule {
            config,
            sets,
            lines: vec![CacheLine::default(); lines_total as usize],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_range(&self, addr: u32) -> (usize, u32) {
        let line_addr = addr / self.config.line_size;
        let set = line_addr % self.sets;
        let tag = line_addr / self.sets;
        ((set * self.config.assoc) as usize, tag)
    }

    fn access(
        &mut self,
        addr: u32,
        kind: AccessKind,
        slot: u8,
        start: u64,
        next: &mut [MemoryModule],
    ) -> u64 {
        let (base, tag) = self.set_range(addr);
        let assoc = self.config.assoc as usize;
        self.lru_clock += 1;
        let lru_clock = self.lru_clock;
        let mut cur = start + self.config.delay;

        // Hit?
        for way in 0..assoc {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = lru_clock;
                if kind == AccessKind::Write {
                    line.dirty = true;
                    line.write_cycle = line.write_cycle.max(cur);
                }
                self.stats.hits += 1;
                // "The completion cycle in case of a cache hit is the
                // maximum of the current cycle and the write cycle of the
                // cache line."
                return cur.max(line.write_cycle);
            }
        }

        // Miss: fetch the line from the next hierarchy level.
        self.stats.misses += 1;
        let line_mask = !(self.config.line_size - 1);
        cur = chain_access(next, addr & line_mask, AccessKind::Read, slot, cur);

        // Victim selection: invalid line, else least recently used.
        let victim_way = (0..assoc)
            .min_by_key(|&w| {
                let l = &self.lines[base + w];
                if l.valid { (1u8, l.lru) } else { (0u8, 0) }
            })
            .expect("associativity is at least 1");
        let victim_addr_line = {
            let l = &self.lines[base + victim_way];
            if l.valid && l.dirty { Some(l.tag) } else { None }
        };
        if let Some(victim_tag) = victim_addr_line {
            // Write back the dirty victim ("the same procedure is performed
            // a second time if a write-back is required").
            self.stats.writebacks += 1;
            let set = (base as u32) / self.config.assoc;
            let victim_addr = (victim_tag * self.sets + set) * self.config.line_size;
            cur = chain_access(next, victim_addr, AccessKind::Write, slot, cur);
        }

        // "After the subaccess the data must be stored inside the cache, so
        // the cache delay is added again."
        cur += self.config.delay;
        self.lines[base + victim_way] = CacheLine {
            valid: true,
            dirty: kind == AccessKind::Write,
            tag,
            write_cycle: cur,
            lru: lru_clock,
        };
        cur
    }
}

/// Port-arbitration module (§VI-D "connection limit").
///
/// "It can be configured by the maximum number of access ports and is
/// typically placed before a cache or memory module. The connection limit
/// module checks and stores for each start cycle if a port is available
/// within the start cycle. Otherwise, the start cycle is increased until a
/// free cycle has been found. […] The same mechanism is applied to the
/// completion cycle."
///
/// Requests (start cycles) and responses (completion cycles) arbitrate
/// independent rings — a port carries one request and one response per
/// cycle, matching the issue/response gating of the cycle-accurate
/// reference model. Port occupancy is tracked in fixed-size rings keyed by
/// cycle; cycles separated by more than the ring size reuse slots, which is
/// harmless because arbitration only ever concerns the moving frontier of
/// the simulation.
#[derive(Debug, Clone)]
pub struct ConnectionLimit {
    ports: u32,
    request_ring: Vec<(u64, u32)>,  // (cycle, used ports)
    response_ring: Vec<(u64, u32)>,
    stalls: u64,
}

const RING_SIZE: usize = 1 << 14;

impl ConnectionLimit {
    /// Creates a connection-limit module with the given number of ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: u32) -> Self {
        assert!(ports > 0, "a connection limit needs at least one port");
        ConnectionLimit {
            ports,
            request_ring: vec![(u64::MAX, 0); RING_SIZE],
            response_ring: vec![(u64::MAX, 0); RING_SIZE],
            stalls: 0,
        }
    }

    /// Total cycles of arbitration delay inserted so far.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stalls
    }

    fn acquire(ring: &mut [(u64, u32)], ports: u32, stalls: &mut u64, mut cycle: u64) -> u64 {
        let requested = cycle;
        loop {
            let slot = (cycle as usize) % RING_SIZE;
            let (stored_cycle, used) = ring[slot];
            let used = if stored_cycle == cycle { used } else { 0 };
            if used < ports {
                ring[slot] = (cycle, used + 1);
                *stalls += cycle - requested;
                return cycle;
            }
            cycle += 1;
        }
    }

    fn access(
        &mut self,
        addr: u32,
        kind: AccessKind,
        slot: u8,
        start: u64,
        next: &mut [MemoryModule],
    ) -> u64 {
        let start =
            Self::acquire(&mut self.request_ring, self.ports, &mut self.stalls, start);
        let completion = chain_access(next, addr, kind, slot, start);
        Self::acquire(&mut self.response_ring, self.ports, &mut self.stalls, completion)
    }
}

fn chain_access(
    levels: &mut [MemoryModule],
    addr: u32,
    kind: AccessKind,
    slot: u8,
    start: u64,
) -> u64 {
    match levels.split_first_mut() {
        None => start, // ideal backing store (no further delay)
        Some((first, rest)) => match first {
            MemoryModule::ConnLimit(m) => m.access(addr, kind, slot, start, rest),
            MemoryModule::Cache(m) => m.access(addr, kind, slot, start, rest),
            MemoryModule::Memory(m) => m.access(start),
        },
    }
}

/// The four shared memory-geometry knobs swept by design-space exploration
/// and exposed as CLI flags (`--l1-lines/--line-bytes/--l2-ports/--mem-delay`)
/// by both `kfab --mem coherent` and `kbatch dse`.
///
/// One struct, two consumers: [`MemGeometry::hierarchy`] builds a
/// single-core [`MemoryHierarchy`] for the AIE/DOE cycle models, and
/// `kahrisma-coherent` maps the same fields onto its per-core MESI
/// configuration (`CoherentConfig: From<MemGeometry>`). The defaults
/// reproduce the paper's L1 capacity (64 × 32 B = 2 KiB), a single L2
/// port, and the paper's 18-cycle main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    /// Lines in the (4-way, or fully-associative when smaller) L1.
    pub l1_lines: u32,
    /// Line size in bytes, power of two; also the L2 line size.
    pub line_bytes: u32,
    /// Arbitrated ports into the shared L2 (a ConnLimit module).
    pub l2_ports: u32,
    /// Main-memory delay behind the L2, in cycles.
    pub mem_delay: u64,
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry { l1_lines: 64, line_bytes: 32, l2_ports: 1, mem_delay: 18 }
    }
}

impl MemGeometry {
    /// Validates the geometry for hierarchy construction.
    ///
    /// # Errors
    ///
    /// Describes the first inconsistent field (`l1_lines`/`line_bytes`
    /// must be powers of two, `l2_ports` at least 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.l1_lines == 0 || !self.l1_lines.is_power_of_two() {
            return Err(format!("l1_lines must be a power of two, got {}", self.l1_lines));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!("line_bytes must be a power of two, got {}", self.line_bytes));
        }
        if self.l2_ports == 0 {
            return Err("l2_ports must be at least 1".to_string());
        }
        Ok(())
    }

    /// The L1 configuration this geometry prescribes: `l1_lines` lines of
    /// `line_bytes` each, 4-way (or fully associative when fewer than four
    /// lines exist), with the paper's 3-cycle delay.
    #[must_use]
    pub fn l1(&self) -> CacheConfig {
        CacheConfig {
            size: self.l1_lines * self.line_bytes,
            line_size: self.line_bytes,
            assoc: self.l1_lines.min(4),
            delay: 3,
        }
    }

    /// The single-core memory hierarchy this geometry prescribes:
    /// a 1-port connection limit, the [`MemGeometry::l1`] cache, an
    /// `l2_ports`-wide connection limit into the paper's 256 KiB L2
    /// (re-lined to `line_bytes`), and `mem_delay`-cycle main memory.
    ///
    /// Unlike [`MemoryHierarchy::paper_default`], the L2 here is always
    /// explicitly port-arbitrated — that is the knob the sweep turns — so
    /// even the default geometry is a distinct configuration from the
    /// paper hierarchy and cells carry it in their key.
    ///
    /// # Panics
    ///
    /// Panics on geometry the cache model rejects; call
    /// [`MemGeometry::validate`] first on untrusted input.
    #[must_use]
    pub fn hierarchy(&self) -> MemoryHierarchy {
        let l2 = CacheConfig { line_size: self.line_bytes, ..CacheConfig::paper_l2() };
        MemoryHierarchy::new()
            .with_conn_limit(1)
            .with_cache(self.l1())
            .with_conn_limit(self.l2_ports)
            .with_cache(l2)
            .with_memory(self.mem_delay)
    }

    /// Compact tag for cell keys and file names: `g{l1_lines}x{line_bytes}p{l2_ports}d{mem_delay}`.
    #[must_use]
    pub fn tag(&self) -> String {
        format!("g{}x{}p{}d{}", self.l1_lines, self.line_bytes, self.l2_ports, self.mem_delay)
    }
}

/// Statistics of one hierarchy level, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLevelStats {
    /// Level description (`"connlimit(1)"`, `"cache(2KiB,4way)"`, `"memory"`).
    pub name: String,
    /// Cache statistics, for cache levels.
    pub cache: Option<CacheStats>,
    /// Inserted arbitration stalls, for connection-limit levels.
    pub stalls: Option<u64>,
    /// Accesses reaching this level, for main-memory levels.
    pub accesses: Option<u64>,
}

/// An ordered chain of memory modules, closest module first.
///
/// # Example
///
/// ```
/// use kahrisma_core::{MemoryHierarchy, AccessKind};
/// let mut mem = MemoryHierarchy::paper_default();
/// let miss = mem.access(0x1000, AccessKind::Read, 0, 0);
/// let hit = mem.access(0x1000, AccessKind::Read, 0, miss);
/// assert!(miss > hit - miss); // the second access hits L1
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryHierarchy {
    levels: Vec<MemoryModule>,
}

impl MemoryHierarchy {
    /// Creates an empty (ideal, zero-delay) hierarchy.
    #[must_use]
    pub fn new() -> Self {
        MemoryHierarchy::default()
    }

    /// The configuration used throughout the paper's evaluation (§VII):
    /// a 1-port connection limit in front of the L1, L1 (2 KiB, 4-way,
    /// 3 cycles), L2 (256 KiB, 4-way, 6 cycles), main memory (18 cycles).
    #[must_use]
    pub fn paper_default() -> Self {
        MemoryHierarchy::new()
            .with_conn_limit(1)
            .with_cache(CacheConfig::paper_l1())
            .with_cache(CacheConfig::paper_l2())
            .with_memory(18)
    }

    /// Appends a connection-limit module.
    #[must_use]
    pub fn with_conn_limit(mut self, ports: u32) -> Self {
        self.levels.push(MemoryModule::ConnLimit(ConnectionLimit::new(ports)));
        self
    }

    /// Appends a cache module.
    #[must_use]
    pub fn with_cache(mut self, config: CacheConfig) -> Self {
        self.levels.push(MemoryModule::Cache(CacheModule::new(config)));
        self
    }

    /// Appends a fixed-delay main-memory module.
    #[must_use]
    pub fn with_memory(mut self, delay: u64) -> Self {
        self.levels.push(MemoryModule::Memory(MainMemory::new(delay)));
        self
    }

    /// Calculates the completion cycle of a memory access starting at
    /// `start` (the paper's per-module delay interface).
    pub fn access(&mut self, addr: u32, kind: AccessKind, slot: u8, start: u64) -> u64 {
        chain_access(&mut self.levels, addr, kind, slot, start)
    }

    /// Per-level statistics, closest level first.
    #[must_use]
    pub fn stats(&self) -> Vec<MemoryLevelStats> {
        self.levels
            .iter()
            .map(|l| match l {
                MemoryModule::ConnLimit(m) => MemoryLevelStats {
                    name: format!("connlimit({})", m.ports),
                    cache: None,
                    stalls: Some(m.stalls),
                    accesses: None,
                },
                MemoryModule::Cache(m) => MemoryLevelStats {
                    name: format!(
                        "cache({}B,{}way,{}cy)",
                        m.config.size, m.config.assoc, m.config.delay
                    ),
                    cache: Some(m.stats),
                    stalls: None,
                    accesses: None,
                },
                MemoryModule::Memory(m) => MemoryLevelStats {
                    name: format!("memory({}cy)", m.delay),
                    cache: None,
                    stalls: None,
                    accesses: Some(m.accesses),
                },
            })
            .collect()
    }

    /// Statistics of the first cache level (the L1), if present.
    #[must_use]
    pub fn l1_stats(&self) -> Option<CacheStats> {
        self.levels.iter().find_map(|l| match l {
            MemoryModule::Cache(c) => Some(c.stats()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_memory_adds_fixed_delay() {
        let mut h = MemoryHierarchy::new().with_memory(18);
        assert_eq!(h.access(0, AccessKind::Read, 0, 100), 118);
        assert_eq!(h.access(4, AccessKind::Write, 0, 0), 18);
    }

    #[test]
    fn cache_hit_after_miss() {
        let mut h = MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18);
        // Miss: L1 delay (3) + memory (18) + L1 fill delay (3) = start + 24.
        let miss = h.access(0x100, AccessKind::Read, 0, 0);
        assert_eq!(miss, 24);
        // Hit: start + 3, but at least the line write cycle.
        let hit = h.access(0x100, AccessKind::Read, 0, 100);
        assert_eq!(hit, 103);
        let s = h.l1_stats().unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn hit_before_line_filled_waits_for_write_cycle() {
        let mut h = MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18);
        let fill = h.access(0x100, AccessKind::Read, 0, 50); // completes at 74
        // Out-of-order query with an earlier start: the hit may not complete
        // before the line was written.
        let hit = h.access(0x104, AccessKind::Read, 1, 0);
        assert_eq!(hit, fill);
    }

    #[test]
    fn same_line_shares_fill() {
        let mut h = MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18);
        let _ = h.access(0x100, AccessKind::Read, 0, 0);
        let _ = h.access(0x11F, AccessKind::Read, 0, 100); // same 32-byte line
        let s = h.l1_stats().unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1-set cache: 128 B, 4-way, 32 B lines.
        let cfg = CacheConfig { size: 128, line_size: 32, assoc: 4, delay: 1 };
        let mut h = MemoryHierarchy::new().with_cache(cfg).with_memory(10);
        // Fill all four ways (addresses map to the same single set).
        for i in 0..4u32 {
            h.access(i * 32, AccessKind::Read, 0, 0);
        }
        // Touch line 0 so line 1 is LRU.
        h.access(0, AccessKind::Read, 0, 100);
        // A fifth line evicts line 1 (clean → no write-back).
        h.access(4 * 32, AccessKind::Read, 0, 200);
        // Line 0 still hits, line 1 misses.
        let before = h.l1_stats().unwrap();
        h.access(0, AccessKind::Read, 0, 300);
        h.access(32, AccessKind::Read, 0, 400);
        let after = h.l1_stats().unwrap();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = CacheConfig { size: 64, line_size: 32, assoc: 2, delay: 1 };
        let mut h = MemoryHierarchy::new().with_cache(cfg).with_memory(10);
        h.access(0, AccessKind::Write, 0, 0); // dirty line
        h.access(64, AccessKind::Read, 0, 100);
        h.access(128, AccessKind::Read, 0, 200); // evicts dirty line 0
        let s = h.l1_stats().unwrap();
        assert_eq!(s.writebacks, 1);
        // Write-back cost: fetch (1+10) + write-back (10) + fill (1) = 22.
        let direct = h.access(192, AccessKind::Read, 0, 1000);
        // This eviction victim (line 64) is clean: fetch (1+10) + fill (1).
        assert_eq!(direct, 1012);
    }

    #[test]
    fn connection_limit_serializes_ports() {
        let mut h = MemoryHierarchy::new().with_conn_limit(1).with_memory(5);
        let a = h.access(0, AccessKind::Read, 0, 10);
        let b = h.access(4, AccessKind::Read, 1, 10); // same start cycle → +1
        assert_eq!(a, 15);
        assert_eq!(b, 16);
        let stalls = match &h.levels[0] {
            MemoryModule::ConnLimit(c) => c.stall_cycles(),
            _ => unreachable!(),
        };
        assert!(stalls >= 1);
    }

    #[test]
    fn two_ports_allow_two_per_cycle() {
        let mut h = MemoryHierarchy::new().with_conn_limit(2).with_memory(5);
        let a = h.access(0, AccessKind::Read, 0, 10);
        let b = h.access(4, AccessKind::Read, 1, 10);
        let c = h.access(8, AccessKind::Read, 2, 10);
        assert_eq!(a, 15);
        // Completions also arbitrate: second access completes at 15 too
        // (two ports), third is pushed.
        assert_eq!(b, 15);
        assert_eq!(c, 16);
    }

    #[test]
    fn paper_default_shape() {
        let mut h = MemoryHierarchy::paper_default();
        // Cold read: 1-port pass-through, L1 miss (3), L2 miss (6),
        // memory (18), L2 fill (6), L1 fill (3) = 36.
        let c = h.access(0x8_0000, AccessKind::Read, 0, 0);
        assert_eq!(c, 36);
        // Warm read: L1 delay only.
        let c2 = h.access(0x8_0000, AccessKind::Read, 0, 100);
        assert_eq!(c2, 103);
        assert_eq!(h.stats().len(), 4);
    }

    #[test]
    fn mem_geometry_defaults_and_validation() {
        let g = MemGeometry::default();
        assert_eq!((g.l1_lines, g.line_bytes, g.l2_ports, g.mem_delay), (64, 32, 1, 18));
        assert_eq!(g.l1(), CacheConfig::paper_l1());
        assert_eq!(g.tag(), "g64x32p1d18");
        assert!(g.validate().is_ok());
        assert!(MemGeometry { l1_lines: 48, ..g }.validate().is_err());
        assert!(MemGeometry { line_bytes: 24, ..g }.validate().is_err());
        assert!(MemGeometry { l2_ports: 0, ..g }.validate().is_err());
        // Tiny L1s fall back to full associativity.
        assert_eq!(MemGeometry { l1_lines: 2, ..g }.l1().assoc, 2);
    }

    #[test]
    fn mem_geometry_hierarchy_shape() {
        let mut h = MemGeometry::default().hierarchy();
        assert_eq!(h.stats().len(), 5);
        // Cold read: conn pass-through, L1 miss (3), conn, L2 miss (6),
        // memory (18), L2 fill (6), L1 fill (3) = 36.
        let c = h.access(0x8_0000, AccessKind::Read, 0, 0);
        assert_eq!(c, 36);
        assert_eq!(h.l1_stats().unwrap().misses, 1);
        // A smaller line size fetches more lines for the same span.
        let mut narrow = MemGeometry { line_bytes: 16, ..MemGeometry::default() }.hierarchy();
        narrow.access(0x100, AccessKind::Read, 0, 0);
        narrow.access(0x110, AccessKind::Read, 0, 100);
        assert_eq!(narrow.l1_stats().unwrap().misses, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = CacheModule::new(CacheConfig { size: 96, line_size: 24, assoc: 2, delay: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = ConnectionLimit::new(0);
    }
}
