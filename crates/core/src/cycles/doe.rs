//! Dynamic operation execution (paper §VI-C).
//!
//! "In contrast to the AIE model, each operation of one instruction need
//! not be issued at the same clock cycle. Instead, the slots of the VLIW
//! instructions may drift among each other. An operation within a slot is
//! issued if the previous operation within the same slot has been issued
//! and the true data dependencies of the input registers are fulfilled.
//! […] Within one slot all operations must be issued in their order. Thus,
//! the start cycle of one operation must be at least the start cycle of the
//! last operation within the slot plus one."
//!
//! The model is heuristic for three documented reasons (§VI-C): resource
//! constraints are not considered, the inter-slot drift is unbounded, and
//! memory operations are accounted in program order. The cycle-accurate
//! reference in `kahrisma-rtl` models all three, which is what Table II
//! measures the approximation against.

use super::{CycleModel, CycleStats, InstrEvent, MemoryHierarchy};
use crate::observe::OpIssue;

/// Maximum issue width the model supports (the family's widest ISA is 8).
const MAX_SLOTS: usize = 16;

/// The DOE cycle model with its memory-delay approximation.
#[derive(Debug, Clone)]
pub struct DoeModel {
    reg_write: [u64; 32],
    /// Earliest cycle each slot may issue its next operation
    /// (last issue + 1).
    slot_next_issue: [u64; MAX_SLOTS],
    serialize: u64,
    max_completion: u64,
    operations: u64,
    memory: MemoryHierarchy,
}

impl DoeModel {
    /// Creates a reset model backed by the given memory hierarchy.
    #[must_use]
    pub fn new(memory: MemoryHierarchy) -> Self {
        DoeModel {
            reg_write: [0; 32],
            slot_next_issue: [0; MAX_SLOTS],
            serialize: 0,
            max_completion: 0,
            operations: 0,
            memory,
        }
    }

    /// Access to the memory hierarchy (cache statistics, etc.).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.memory
    }

    /// Shared accounting for [`CycleModel::instruction`] and
    /// [`CycleModel::instruction_observed`]; the sink receives one
    /// [`OpIssue`] per non-`nop` operation in `event.ops` order. The timing
    /// math is identical either way; the `()` sink monomorphizes to the
    /// unobserved loop with no per-operation branch.
    fn account(&mut self, event: &InstrEvent<'_>, issues: &mut impl IssueSink) {
        // Parallel operations of one instruction read the register state
        // from *before* the instruction (§V-B read-before-write), so
        // dependencies are resolved against a snapshot and writes are
        // applied afterwards.
        let reg_snapshot = self.reg_write;
        let mut writes: [(u8, u64); 16] = [(255, 0); 16];
        let mut nwrites = 0usize;
        for op in event.ops {
            let slot = usize::from(op.slot) % MAX_SLOTS;
            if op.is_nop {
                // The slot still issues the filler in order, occupying one
                // issue cycle of that slot.
                let start = self.slot_next_issue[slot];
                self.slot_next_issue[slot] = start + 1;
                continue;
            }
            self.operations += 1;
            // "An operation within a slot is issued if the previous
            // operation within the same slot has been issued and the true
            // data dependencies of the input registers are fulfilled."
            let structural = self.slot_next_issue[slot];
            let mut start = structural.max(self.serialize);
            for i in 0..usize::from(op.nsrcs) {
                start = start.max(reg_snapshot[usize::from(op.srcs[i]) & 31]);
            }
            if op.serialize {
                start = start.max(self.max_completion);
            }
            let completion = match op.mem {
                // Memory delays are queried in program order (heuristic
                // reason 3), with possibly out-of-order start cycles.
                Some((addr, kind)) => self.memory.access(addr, kind, op.slot, start),
                None => start + u64::from(op.delay),
            };
            self.slot_next_issue[slot] = start + 1;
            issues.push(OpIssue {
                slot: op.slot,
                issue: start,
                completion,
                stall: u32::try_from(start - structural).unwrap_or(u32::MAX),
            });
            if op.dst != 255 && nwrites < writes.len() {
                writes[nwrites] = (op.dst, completion);
                nwrites += 1;
            }
            if op.serialize {
                self.serialize = completion;
            }
            if op.mispredict_penalty > 0 {
                // Refetch after a misprediction: no younger operation may
                // issue before the redirect resolves.
                self.serialize =
                    self.serialize.max(completion + u64::from(op.mispredict_penalty));
            }
            self.max_completion = self.max_completion.max(completion);
        }
        for &(dst, completion) in &writes[..nwrites] {
            self.reg_write[usize::from(dst) & 31] = completion;
        }
    }
}

/// Destination for per-operation issue records inside [`DoeModel::account`].
trait IssueSink {
    fn push(&mut self, issue: OpIssue);
}

/// Unobserved runs: the record is never materialized.
impl IssueSink for () {
    #[inline(always)]
    fn push(&mut self, _issue: OpIssue) {}
}

impl IssueSink for Vec<OpIssue> {
    #[inline]
    fn push(&mut self, issue: OpIssue) {
        Vec::push(self, issue);
    }
}

impl CycleModel for DoeModel {
    fn instruction(&mut self, event: &InstrEvent<'_>) {
        self.account(event, &mut ());
    }

    fn instruction_observed(&mut self, event: &InstrEvent<'_>, issues: &mut Vec<OpIssue>) {
        self.account(event, issues);
    }

    fn cycles(&self) -> u64 {
        self.max_completion
    }

    fn stats(&self) -> CycleStats {
        CycleStats {
            cycles: self.max_completion,
            operations: self.operations,
            memory: self.memory.stats(),
        }
    }

    fn fork(&self) -> Option<Box<dyn CycleModel>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::test_util::{alu, alu_d, feed, load};
    use crate::cycles::{CacheConfig, InstrEvent, OpEvent};

    fn ideal() -> DoeModel {
        // A 3-cycle fixed memory keeps tests focused on issue logic.
        DoeModel::new(MemoryHierarchy::new().with_memory(3))
    }

    #[test]
    fn single_slot_issues_once_per_cycle() {
        let mut m = ideal();
        // Three independent single-op (RISC) instructions: the slot issue
        // constraint forces one per cycle.
        feed(&mut m, &[alu(0, &[1], 10), alu(0, &[2], 11), alu(0, &[3], 12)]);
        assert_eq!(m.cycles(), 3); // issues at 0,1,2; completions 1,2,3
    }

    #[test]
    fn parallel_slots_issue_together() {
        let mut m = ideal();
        let ops = [alu(0, &[1], 10), alu(1, &[2], 11), alu(2, &[3], 12), alu(3, &[4], 13)];
        m.instruction(&InstrEvent { addr: 0, ops: &ops });
        assert_eq!(m.cycles(), 1); // all issue at 0
    }

    #[test]
    fn slots_drift_independently() {
        let mut m = ideal();
        // Bundle 1: slot0 = long mul, slot1 = add.
        let b1 = [alu_d(0, &[1, 2], 10, 3), alu(1, &[3], 11)];
        // Bundle 2: slot0 depends on the mul, slot1 is independent and can
        // issue (drift ahead) without waiting for the mul.
        let b2 = [alu(0, &[10], 12), alu(1, &[11], 13)];
        m.instruction(&InstrEvent { addr: 0, ops: &b1 });
        m.instruction(&InstrEvent { addr: 8, ops: &b2 });
        // slot1 chain: add@0→1, add@1→2. slot0: mul@0→3, add@3→4.
        assert_eq!(m.cycles(), 4);
        // Without drift (AIE) this would be 3 + 1 = 4 as well; distinguish
        // via a third bundle in slot1 only.
        let b3 = [OpEvent::nop(0), alu(1, &[13], 14)];
        m.instruction(&InstrEvent { addr: 16, ops: &b3 });
        // slot1 issues at 2 → completes 3; total still 4.
        assert_eq!(m.cycles(), 4);
    }

    #[test]
    fn true_dependency_stalls_issue() {
        let mut m = ideal();
        feed(&mut m, &[alu_d(0, &[1], 10, 5), alu(0, &[10], 11)]);
        // op2 start = max(slot next 1, r10 write 5) = 5 → completes 6.
        assert_eq!(m.cycles(), 6);
    }

    #[test]
    fn nop_fillers_occupy_slot_issue() {
        let mut m = ideal();
        let b1 = [OpEvent::nop(0)];
        let b2 = [alu(0, &[1], 10)];
        m.instruction(&InstrEvent { addr: 0, ops: &b1 });
        m.instruction(&InstrEvent { addr: 4, ops: &b2 });
        // nop issues at 0, add at 1 → completes 2.
        assert_eq!(m.cycles(), 2);
    }

    #[test]
    fn memory_through_hierarchy_in_program_order() {
        let mut m = DoeModel::new(
            MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18),
        );
        feed(&mut m, &[load(0, 1, 10, 0x100), load(0, 2, 11, 0x104)]);
        // Cold miss completes at 24; second load (same line) issues at 1 but
        // its hit completion is bounded by the line's write cycle (24).
        assert_eq!(m.cycles(), 24);
        assert_eq!(m.memory().l1_stats().unwrap().hits, 1);
    }

    #[test]
    fn serializing_op_drains() {
        let mut m = ideal();
        let mut sw = alu(0, &[], 255);
        sw.serialize = true;
        feed(&mut m, &[alu_d(0, &[1], 10, 12), sw, alu(0, &[2], 11)]);
        assert_eq!(m.cycles(), 14);
    }

    #[test]
    fn risc_equals_at_least_one_cycle_per_op() {
        // The fundamental RISC bound: n ops need ≥ n cycles in one slot.
        let mut m = ideal();
        let ops: Vec<OpEvent> = (0..100).map(|i| alu(0, &[(i % 30) as u8 + 1], 31)).collect();
        feed(&mut m, &ops);
        assert!(m.cycles() >= 100);
    }
}
