//! Branch-prediction cycle approximation.
//!
//! The paper's conclusion (§VIII) names this as future work: "we plan to
//! integrate cycle-approximation models for branch misprediction into our
//! simulator". This module provides that extension: a configurable
//! predictor simulated functionally (the simulator knows every branch
//! outcome), feeding a per-operation *mispredicted* flag into the cycle
//! models, which charge a refetch penalty by serializing the following
//! instructions.

/// Branch-predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Predictor kind.
    pub kind: PredictorKind,
    /// Refetch penalty charged per misprediction, in cycles.
    pub penalty: u32,
}

impl BranchPredictorConfig {
    /// Perfect prediction — the paper's Table II setting ("we rely on a
    /// perfect branch prediction for both simulators").
    #[must_use]
    pub fn perfect() -> Self {
        BranchPredictorConfig { kind: PredictorKind::Perfect, penalty: 0 }
    }

    /// A classic 2-bit bimodal predictor with 1024 entries and a 3-cycle
    /// refetch penalty (one pipeline front end).
    #[must_use]
    pub fn bimodal() -> Self {
        BranchPredictorConfig {
            kind: PredictorKind::Bimodal { entries_log2: 10 },
            penalty: 3,
        }
    }
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig::perfect()
    }
}

/// Predictor kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PredictorKind {
    /// Every branch predicted correctly (no penalties).
    Perfect,
    /// Static prediction: backward branches taken, forward not taken.
    StaticBackwardTaken,
    /// Per-address 2-bit saturating counters.
    Bimodal {
        /// log2 of the counter-table size.
        entries_log2: u8,
    },
}

/// The functional-side predictor: consulted per control-transfer operation
/// with the architectural outcome, returns whether the hardware would have
/// mispredicted.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor.
    #[must_use]
    pub fn new(config: BranchPredictorConfig) -> Self {
        let counters = match config.kind {
            PredictorKind::Bimodal { entries_log2 } => {
                vec![1u8; 1usize << entries_log2.min(24)] // weakly not-taken
            }
            _ => Vec::new(),
        };
        BranchPredictor { config, counters, predictions: 0, mispredictions: 0 }
    }

    /// The configured penalty in cycles.
    #[must_use]
    pub fn penalty(&self) -> u32 {
        self.config.penalty
    }

    /// Records a control-transfer outcome and returns `true` when the
    /// predictor would have mispredicted it.
    ///
    /// `target_known` distinguishes direct branches (predictable direction)
    /// from indirect jumps (`jr`/`jalr`), which the simple predictors
    /// always mispredict unless prediction is perfect.
    pub fn observe(&mut self, addr: u32, taken: bool, backward: bool, target_known: bool) -> bool {
        self.predictions += 1;
        let mispredicted = match self.config.kind {
            PredictorKind::Perfect => false,
            PredictorKind::StaticBackwardTaken => {
                if !target_known {
                    true
                } else {
                    taken != backward
                }
            }
            PredictorKind::Bimodal { .. } => {
                if !target_known {
                    true
                } else {
                    let idx = (addr as usize >> 2) & (self.counters.len() - 1);
                    let counter = &mut self.counters[idx];
                    let predicted_taken = *counter >= 2;
                    if taken {
                        *counter = (*counter + 1).min(3);
                    } else {
                        *counter = counter.saturating_sub(1);
                    }
                    predicted_taken != taken
                }
            }
        };
        if mispredicted {
            self.mispredictions += 1;
        }
        mispredicted
    }

    /// `(predictions, mispredictions)` observed so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }

    /// Misprediction ratio in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        self.mispredictions as f64 / self.predictions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::perfect());
        for i in 0..100 {
            assert!(!p.observe(i * 4, i % 3 == 0, i % 2 == 0, true));
        }
        assert_eq!(p.stats(), (100, 0));
        assert_eq!(p.miss_ratio(), 0.0);
    }

    #[test]
    fn static_predictor_follows_direction_rule() {
        let cfg = BranchPredictorConfig {
            kind: PredictorKind::StaticBackwardTaken,
            penalty: 3,
        };
        let mut p = BranchPredictor::new(cfg);
        assert!(!p.observe(0x100, true, true, true)); // backward taken: hit
        assert!(p.observe(0x100, false, true, true)); // backward not taken: miss
        assert!(!p.observe(0x100, false, false, true)); // forward not taken: hit
        assert!(p.observe(0x100, true, false, true)); // forward taken: miss
        assert!(p.observe(0x100, true, false, false)); // indirect: always miss
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::bimodal());
        // A loop branch taken 50 times then falling through once: after
        // warm-up the predictor hits every taken iteration.
        let mut misses = 0;
        for _ in 0..50 {
            if p.observe(0x200, true, true, true) {
                misses += 1;
            }
        }
        assert!(misses <= 2, "bimodal failed to learn: {misses} misses");
        assert!(p.observe(0x200, false, true, true)); // exit mispredicts
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::bimodal());
        for _ in 0..10 {
            p.observe(0x40, true, true, true);
        }
        // One not-taken does not flip the strongly-taken counter.
        p.observe(0x40, false, true, true);
        assert!(!p.observe(0x40, true, true, true), "counter flipped too eagerly");
    }

    #[test]
    fn miss_ratio_reporting() {
        let cfg = BranchPredictorConfig {
            kind: PredictorKind::StaticBackwardTaken,
            penalty: 2,
        };
        let mut p = BranchPredictor::new(cfg);
        p.observe(0, true, true, true); // hit
        p.observe(0, false, true, true); // miss
        assert!((p.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(p.penalty(), 2);
    }
}
