//! Cycle-approximation models (paper §VI).
//!
//! "Besides functional application execution, the simulator supports several
//! cycle models to approximate the application execution time on the
//! microarchitecture. In contrast to a cycle-accurate simulator, we do not
//! model the exact KAHRISMA microarchitecture […] Instead, we approximate
//! the cycles based on a heuristic model in order to provide a trade-off
//! between accuracy and simulation speed."
//!
//! Three models are provided, exactly as in the paper:
//!
//! * [`IlpModel`] — the theoretical upper bound of instruction-level
//!   parallelism exploitable with unlimited resources (§VI-A),
//! * [`AieModel`] — atomic instruction execution (§VI-B),
//! * [`DoeModel`] — dynamic operation execution, the heuristic approximation
//!   of the real KAHRISMA microarchitecture (§VI-C),
//!
//! all fed by the composable memory-delay approximation of §VI-D
//! ([`MemoryHierarchy`]: caches, connection limits, main memory).

mod aie;
mod branch;
mod doe;
mod ilp;
mod memory;

pub use aie::AieModel;
pub use branch::{BranchPredictor, BranchPredictorConfig, PredictorKind};
pub use doe::DoeModel;
pub use ilp::IlpModel;
pub use memory::{
    AccessKind, CacheConfig, CacheModule, CacheStats, ConnectionLimit, MainMemory, MemGeometry,
    MemoryHierarchy, MemoryLevelStats, MemoryModule,
};

use crate::observe::OpIssue;

/// Which cycle model the simulator should run alongside functional
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CycleModelKind {
    /// Theoretical ILP upper bound (§VI-A).
    Ilp,
    /// Atomic instruction execution (§VI-B).
    Aie,
    /// Dynamic operation execution (§VI-C).
    Doe,
}

impl CycleModelKind {
    /// Builds the model, attaching `memory` where the model uses the memory
    /// approximation (AIE and DOE; the ILP model uses an ideal fixed-delay
    /// memory per §VI-A).
    #[must_use]
    pub fn build(self, memory: MemoryHierarchy) -> Box<dyn CycleModel> {
        match self {
            CycleModelKind::Ilp => Box::new(IlpModel::new()),
            CycleModelKind::Aie => Box::new(AieModel::new(memory)),
            CycleModelKind::Doe => Box::new(DoeModel::new(memory)),
        }
    }
}

/// Dynamic information about one executed operation, produced by the
/// functional simulator and consumed by the cycle models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Issue slot of the operation within its instruction.
    pub slot: u8,
    /// Architectural source registers.
    pub srcs: [u8; 2],
    /// Number of valid entries in [`OpEvent::srcs`].
    pub nsrcs: u8,
    /// Destination register, `255` for none.
    pub dst: u8,
    /// Static execution delay in cycles (ignored for memory operations,
    /// which take their latency from the hierarchy).
    pub delay: u32,
    /// Data-memory access performed by the operation, if any.
    pub mem: Option<(u32, AccessKind)>,
    /// `true` for control-transfer operations (branches, jumps, calls).
    pub is_branch: bool,
    /// `true` for pipeline-serializing operations (`switchtarget`, `simop`,
    /// `halt`).
    pub serialize: bool,
    /// `true` for the `nop` slot filler.
    pub is_nop: bool,
    /// `true` for multiply/divide operations (contend for the shared
    /// multiply/divide units in the microarchitecture).
    pub is_muldiv: bool,
    /// Refetch penalty in cycles when the configured branch predictor
    /// mispredicted this control transfer (0 = predicted correctly or
    /// prediction disabled). The §VIII future-work extension.
    pub mispredict_penalty: u32,
}

impl OpEvent {
    /// A `nop` event in the given slot.
    #[must_use]
    pub fn nop(slot: u8) -> Self {
        OpEvent {
            slot,
            srcs: [0, 0],
            nsrcs: 0,
            dst: 255,
            delay: 1,
            mem: None,
            is_branch: false,
            serialize: false,
            is_nop: true,
            is_muldiv: false,
            mispredict_penalty: 0,
        }
    }
}

/// One executed instruction: its address and the per-slot operation events.
#[derive(Debug, Clone, Copy)]
pub struct InstrEvent<'a> {
    /// Instruction address.
    pub addr: u32,
    /// Operation events, one per occupied slot (including `nop` fillers).
    pub ops: &'a [OpEvent],
}

/// Aggregate results of a cycle model.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleStats {
    /// Approximated execution time in cycles.
    pub cycles: u64,
    /// Non-`nop` operations accounted.
    pub operations: u64,
    /// Per-level memory statistics (empty for the ILP model's ideal memory).
    pub memory: Vec<MemoryLevelStats>,
}

impl CycleStats {
    /// Operations per cycle — the paper's ILP metric (§VI-A, Figure 4).
    #[must_use]
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.operations as f64 / self.cycles as f64
    }
}

/// A cycle-approximation model fed by the functional simulator.
///
/// The simulator calls [`CycleModel::instruction`] once per executed
/// instruction, in program order (the paper's models are all driven by the
/// behavioral instruction stream, §VI-D).
///
/// Models are `Send` so a [`crate::Simulator`] — sessions in a serving
/// daemon, cells in a campaign pool — can migrate between worker threads
/// between runs. Models are plain timing state, so this costs nothing.
pub trait CycleModel: Send {
    /// Accounts one executed instruction.
    fn instruction(&mut self, event: &InstrEvent<'_>);

    /// Accounts one executed instruction **and** appends one [`OpIssue`]
    /// per non-`nop` operation (in `event.ops` order) describing when the
    /// model issued it — the data behind the per-slot observability
    /// timeline. Models without per-operation issue tracking fall back to
    /// [`CycleModel::instruction`] and append nothing.
    ///
    /// Called instead of [`CycleModel::instruction`] while an observer is
    /// attached; the two must account identically.
    fn instruction_observed(&mut self, event: &InstrEvent<'_>, _issues: &mut Vec<OpIssue>) {
        self.instruction(event);
    }

    /// Called once when the simulation ends; models with internal pipeline
    /// state (e.g. the cycle-accurate reference) drain it here.
    fn finish(&mut self) {}

    /// The approximated cycle count so far.
    fn cycles(&self) -> u64;

    /// Aggregate statistics.
    fn stats(&self) -> CycleStats;

    /// Clones the model's complete timing state into an independent boxed
    /// model, for [`crate::Simulator::snapshot`]. Models that cannot be
    /// duplicated (e.g. ones holding external handles) return `None`, in
    /// which case snapshotting a simulator with that model attached fails
    /// with [`crate::SimError::SnapshotUnsupported`].
    fn fork(&self) -> Option<Box<dyn CycleModel>> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Builds a simple ALU op event: `dst = f(srcs)`, 1-cycle delay.
    pub(crate) fn alu(slot: u8, srcs: &[u8], dst: u8) -> OpEvent {
        let mut s = [0u8; 2];
        for (i, &r) in srcs.iter().enumerate() {
            s[i] = r;
        }
        OpEvent {
            slot,
            srcs: s,
            nsrcs: srcs.len() as u8,
            dst,
            delay: 1,
            mem: None,
            is_branch: false,
            serialize: false,
            is_nop: false,
            is_muldiv: false,
            mispredict_penalty: 0,
        }
    }

    /// Like [`alu`] with an explicit delay (mul/div).
    pub(crate) fn alu_d(slot: u8, srcs: &[u8], dst: u8, delay: u32) -> OpEvent {
        OpEvent { delay, ..alu(slot, srcs, dst) }
    }

    /// A load event.
    pub(crate) fn load(slot: u8, addr_reg: u8, dst: u8, addr: u32) -> OpEvent {
        OpEvent {
            mem: Some((addr, AccessKind::Read)),
            ..alu(slot, &[addr_reg], dst)
        }
    }

    /// A store event.
    pub(crate) fn store(slot: u8, addr: u32) -> OpEvent {
        OpEvent { mem: Some((addr, AccessKind::Write)), ..alu(slot, &[1, 2], 255) }
    }

    /// A branch event.
    pub(crate) fn branch(slot: u8, srcs: &[u8]) -> OpEvent {
        OpEvent { is_branch: true, ..alu(slot, srcs, 255) }
    }

    /// Feeds RISC-style one-op instructions into a model.
    pub(crate) fn feed(model: &mut dyn CycleModel, ops: &[OpEvent]) {
        for (i, op) in ops.iter().enumerate() {
            let slice = std::slice::from_ref(op);
            model.instruction(&InstrEvent { addr: (i as u32) * 4, ops: slice });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_cycle_handles_zero() {
        let s = CycleStats { cycles: 0, operations: 0, memory: Vec::new() };
        assert_eq!(s.ops_per_cycle(), 0.0);
        let s = CycleStats { cycles: 4, operations: 8, memory: Vec::new() };
        assert!((s.ops_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kind_builds_each_model() {
        for kind in [CycleModelKind::Ilp, CycleModelKind::Aie, CycleModelKind::Doe] {
            let m = kind.build(MemoryHierarchy::paper_default());
            assert_eq!(m.cycles(), 0);
        }
    }
}
