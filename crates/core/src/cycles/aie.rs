//! Atomic instruction execution (paper §VI-B).
//!
//! "Within the atomic instruction execution model we assume that all
//! operations of an instruction are issued in the same clock cycle(s). The
//! following instruction can only be issued if all operations of the
//! previous instruction finished execution. Within our simulator we
//! calculate the delay of one instruction from the maximum delay of its
//! operations."

use super::{CycleModel, CycleStats, InstrEvent, MemoryHierarchy};

/// The AIE cycle model with its memory-delay approximation.
#[derive(Debug, Clone)]
pub struct AieModel {
    current: u64,
    operations: u64,
    memory: MemoryHierarchy,
}

impl AieModel {
    /// Creates a reset model backed by the given memory hierarchy.
    #[must_use]
    pub fn new(memory: MemoryHierarchy) -> Self {
        AieModel { current: 0, operations: 0, memory }
    }

    /// Access to the memory hierarchy (cache statistics, etc.).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.memory
    }
}

impl CycleModel for AieModel {
    fn instruction(&mut self, event: &InstrEvent<'_>) {
        let issue = self.current;
        // An instruction always takes at least one cycle, even if all slots
        // are nops.
        let mut completion = issue + 1;
        for op in event.ops {
            if op.is_nop {
                continue;
            }
            self.operations += 1;
            let c = match op.mem {
                Some((addr, kind)) => self.memory.access(addr, kind, op.slot, issue),
                None => issue + u64::from(op.delay),
            };
            // Mispredicted control transfers stall the fetch of the next
            // instruction for the refetch penalty.
            completion = completion.max(c + u64::from(op.mispredict_penalty));
        }
        self.current = completion;
    }

    fn cycles(&self) -> u64 {
        self.current
    }

    fn stats(&self) -> CycleStats {
        CycleStats {
            cycles: self.current,
            operations: self.operations,
            memory: self.memory.stats(),
        }
    }

    fn fork(&self) -> Option<Box<dyn CycleModel>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::test_util::{alu, alu_d, feed, load};
    use crate::cycles::{CacheConfig, InstrEvent, OpEvent};

    fn model() -> AieModel {
        AieModel::new(MemoryHierarchy::paper_default())
    }

    #[test]
    fn sequential_single_cycle_ops() {
        let mut m = model();
        feed(&mut m, &[alu(0, &[1], 2), alu(0, &[3], 4), alu(0, &[5], 6)]);
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn instruction_delay_is_max_of_its_operations() {
        let mut m = model();
        // One bundle: add (1) | mul (3) → instruction takes 3 cycles.
        let ops = [alu(0, &[1], 2), alu_d(1, &[3], 4, 3)];
        m.instruction(&InstrEvent { addr: 0, ops: &ops });
        assert_eq!(m.cycles(), 3);
        // Following instruction issues only afterwards.
        m.instruction(&InstrEvent { addr: 8, ops: &[alu(0, &[1], 2)] });
        assert_eq!(m.cycles(), 4);
    }

    #[test]
    fn no_parallelism_across_instructions() {
        // AIE executes strictly sequentially even for independent ops.
        let mut m = model();
        feed(&mut m, &[alu(0, &[1], 10), alu(0, &[2], 11)]);
        assert_eq!(m.cycles(), 2);
    }

    #[test]
    fn memory_latency_from_hierarchy() {
        let mut m = AieModel::new(
            MemoryHierarchy::new().with_cache(CacheConfig::paper_l1()).with_memory(18),
        );
        feed(&mut m, &[load(0, 1, 10, 0x100)]);
        assert_eq!(m.cycles(), 24); // cold miss: 3 + 18 + 3
        feed_one(&mut m, load(0, 1, 10, 0x104));
        assert_eq!(m.cycles(), 27); // warm hit: +3
        assert_eq!(m.memory().l1_stats().unwrap().misses, 1);
    }

    fn feed_one(m: &mut AieModel, op: OpEvent) {
        let ops = [op];
        m.instruction(&InstrEvent { addr: 0, ops: &ops });
    }

    #[test]
    fn all_nop_bundle_costs_one_cycle() {
        let mut m = model();
        let ops = [OpEvent::nop(0), OpEvent::nop(1)];
        m.instruction(&InstrEvent { addr: 0, ops: &ops });
        assert_eq!(m.cycles(), 1);
        assert_eq!(m.stats().operations, 0);
    }
}
