//! Theoretical instruction-level-parallelism measurement (paper §VI-A).
//!
//! "The ILP cycle model performs a fast theoretical ILP measurement that
//! calculates the theoretical upper limit for operations per cycle that
//! could be achieved by our architecture with unlimited resources": an
//! unlimited number of parallel operations and renaming registers, and an
//! ideal memory with the L1 delay (3 cycles) and unlimited ports. The
//! parallelism is limited only by
//!
//! * true register data dependencies,
//! * the branch barrier — "on VLIW processors only the operations until the
//!   next branch instruction can be scheduled in parallel", and
//! * the pessimistic store ordering the paper's compiler also uses — "a
//!   load/store instruction is always dependent on the last store
//!   instruction and can therefore be executed earliest on the start cycle
//!   of the store instruction".

use super::{CycleModel, CycleStats, InstrEvent};

/// Delay of the ideal memory in the ILP model (the paper's L1 delay).
pub const IDEAL_MEM_DELAY: u64 = 3;

/// The ILP cycle model. Feed it a **RISC** (1-issue) execution — "as input
/// we simulate a RISC ISA" — and read the bound as
/// [`CycleStats::ops_per_cycle`].
#[derive(Debug, Clone)]
pub struct IlpModel {
    reg_write: [u64; 32],
    last_branch_completion: u64,
    last_store_start: u64,
    serialize: u64,
    max_completion: u64,
    operations: u64,
}

impl IlpModel {
    /// Creates a reset model.
    #[must_use]
    pub fn new() -> Self {
        IlpModel {
            reg_write: [0; 32],
            last_branch_completion: 0,
            last_store_start: 0,
            serialize: 0,
            max_completion: 0,
            operations: 0,
        }
    }
}

impl Default for IlpModel {
    fn default() -> Self {
        IlpModel::new()
    }
}

impl CycleModel for IlpModel {
    fn instruction(&mut self, event: &InstrEvent<'_>) {
        // Same-instruction operations read pre-instruction register values
        // (§V-B); with the paper's RISC input every instruction has one
        // operation and this is equivalent to immediate updates.
        let reg_snapshot = self.reg_write;
        let mut writes: [(u8, u64); 16] = [(255, 0); 16];
        let mut nwrites = 0usize;
        for op in event.ops {
            if op.is_nop {
                continue;
            }
            self.operations += 1;
            // "The start cycle becomes the maximum write cycle of all source
            // registers" — plus the branch barrier and any serialization.
            let mut start = self.last_branch_completion.max(self.serialize);
            for i in 0..usize::from(op.nsrcs) {
                start = start.max(reg_snapshot[usize::from(op.srcs[i]) & 31]);
            }
            if op.serialize {
                // switchtarget/simop/halt drain the theoretical machine.
                start = start.max(self.max_completion);
            }
            let completion = if let Some((_, kind)) = op.mem {
                // Pessimistic memory model: ordered after the last store's
                // start cycle; ideal 3-cycle latency, unlimited ports.
                start = start.max(self.last_store_start);
                if kind == super::AccessKind::Write {
                    self.last_store_start = start;
                }
                start + IDEAL_MEM_DELAY
            } else {
                start + u64::from(op.delay)
            };
            if op.dst != 255 && nwrites < writes.len() {
                writes[nwrites] = (op.dst, completion);
                nwrites += 1;
            }
            if op.is_branch {
                // A mispredicted branch stalls the (theoretical) front end
                // for the refetch penalty on top of the branch barrier.
                self.last_branch_completion = completion + u64::from(op.mispredict_penalty);
            }
            if op.serialize {
                self.serialize = completion;
            }
            self.max_completion = self.max_completion.max(completion);
        }
        for &(dst, completion) in &writes[..nwrites] {
            self.reg_write[usize::from(dst) & 31] = completion;
        }
    }

    fn cycles(&self) -> u64 {
        self.max_completion
    }

    fn stats(&self) -> CycleStats {
        CycleStats { cycles: self.max_completion, operations: self.operations, memory: Vec::new() }
    }

    fn fork(&self) -> Option<Box<dyn CycleModel>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::test_util::{alu, alu_d, branch, feed, load, store};

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut m = IlpModel::new();
        // Four independent adds: all start at 0, complete at 1.
        feed(&mut m, &[alu(0, &[1], 10), alu(0, &[2], 11), alu(0, &[3], 12), alu(0, &[4], 13)]);
        assert_eq!(m.cycles(), 1);
        assert!((m.stats().ops_per_cycle() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dependence_chain_serializes() {
        let mut m = IlpModel::new();
        // r10 = r1+r2; r11 = r10+r3; r12 = r11+r4 — a chain of 3.
        feed(&mut m, &[alu(0, &[1, 2], 10), alu(0, &[10, 3], 11), alu(0, &[11, 4], 12)]);
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn multi_cycle_delays_respected() {
        let mut m = IlpModel::new();
        feed(&mut m, &[alu_d(0, &[1, 2], 10, 3), alu(0, &[10], 11)]);
        assert_eq!(m.cycles(), 4); // mul (3) then dependent add (1)
    }

    #[test]
    fn branch_is_a_barrier() {
        let mut m = IlpModel::new();
        // Two independent ops around a branch: the second cannot start
        // before the branch completes.
        feed(&mut m, &[alu(0, &[1], 10), branch(0, &[10, 0]), alu(0, &[2], 11)]);
        // add completes at 1, branch (depends on r10) completes at 2,
        // second add starts at 2 → completes at 3.
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn loads_use_ideal_memory() {
        let mut m = IlpModel::new();
        feed(&mut m, &[load(0, 1, 10, 0x100), alu(0, &[10], 11)]);
        assert_eq!(m.cycles(), IDEAL_MEM_DELAY + 1);
    }

    #[test]
    fn parallel_loads_unlimited_ports() {
        let mut m = IlpModel::new();
        feed(
            &mut m,
            &[load(0, 1, 10, 0x100), load(0, 2, 11, 0x200), load(0, 3, 12, 0x300)],
        );
        assert_eq!(m.cycles(), IDEAL_MEM_DELAY); // all in parallel
    }

    #[test]
    fn store_orders_subsequent_memory_ops() {
        let mut m = IlpModel::new();
        // A store whose address depends on a chain, then an independent
        // load: the load may start no earlier than the store's start cycle.
        feed(
            &mut m,
            &[
                alu(0, &[1, 2], 10),  // completes 1
                alu(0, &[10, 3], 1),  // completes 2 (store address dep)
                store(0, 0x100),      // srcs r1,r2 → wait: uses regs 1,2
                load(0, 4, 11, 0x200),
            ],
        );
        // store srcs are r1 (write cycle 2 via alu above? r1 was written at
        // cycle 2) → store start = 2, completes 5; load start ≥ 2 → 5.
        assert_eq!(m.cycles(), 5);
    }

    #[test]
    fn serializing_op_drains_machine() {
        let mut m = IlpModel::new();
        let mut sw = alu(0, &[], 255);
        sw.serialize = true;
        feed(&mut m, &[alu_d(0, &[1], 10, 12), sw, alu(0, &[2], 11)]);
        // div completes at 12; switchtarget starts at 12, completes 13;
        // following op starts at 13, completes 14.
        assert_eq!(m.cycles(), 14);
    }

    #[test]
    fn nops_are_free() {
        let mut m = IlpModel::new();
        feed(&mut m, &[super::super::OpEvent::nop(0), alu(0, &[1], 10)]);
        assert_eq!(m.cycles(), 1);
        assert_eq!(m.stats().operations, 1);
    }
}
