//! Portable byte serialization of functional [`Snapshot`]s.
//!
//! A snapshot of a *functional* simulation — no cycle model, no branch
//! predictor state, no profiler — is pure data: the register file, the
//! active ISA, the sparse memory image, the statistics counters, and the
//! recent-IP ring. This module encodes exactly that into a versioned,
//! self-describing byte format so a session can be moved between `ksimd`
//! processes over the wire (the `export`/`import` verbs) and restored
//! bit-exactly on the other side.
//!
//! Snapshots that carry a cycle model (or predictor/profiler state) are
//! *not* portable — their state lives behind trait objects whose layout is
//! model-specific. Those sessions migrate by deterministic replay instead:
//! the destination rebuilds the simulator from the session spec and
//! re-executes the same instruction count, which reproduces the exact state
//! because the simulator is deterministic from load.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   b"KSNW"              4 bytes
//! version u32 (= 1)
//! regs    32 × u32             architectural register file
//! ip      u32
//! isa     u8                   active ISA identifier
//! halted  u8                   0 or 1
//! exit_code u32
//! heap_ptr  u32
//! rng_state u64
//! retired   u64                retired_instructions
//! stdout    u32 len + bytes
//! stdin     u32 len + bytes
//! stdin_pos u64
//! stats     u32 count (= 17) + count × u64, field declaration order
//! ip_hist   u32 count + count × u32, oldest first
//! pages     u32 count + count × (u32 page_index + 4096-byte contents)
//! ```

use std::collections::VecDeque;

use kahrisma_isa::adl::IsaId;

use crate::mem::Memory;
use crate::sim::Snapshot;
use crate::state::CpuState;
use crate::stats::SimStats;

/// Version number written into every encoded snapshot.
pub const SNAPWIRE_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"KSNW";
const STATS_FIELDS: u32 = 17;

/// Error from encoding or decoding a portable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapWireError {
    /// The snapshot carries state that has no portable representation
    /// (cycle model, branch predictor, profiler, or a shared-memory port).
    /// The payload names the offending component.
    NotPortable(&'static str),
    /// The byte stream is not a valid encoded snapshot.
    Malformed(String),
}

impl std::fmt::Display for SnapWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapWireError::NotPortable(what) => {
                write!(f, "snapshot is not portable: {what} state cannot be serialized")
            }
            SnapWireError::Malformed(why) => write!(f, "malformed snapshot bytes: {why}"),
        }
    }
}

impl std::error::Error for SnapWireError {}

fn stats_fields(s: &SimStats) -> [u64; STATS_FIELDS as usize] {
    [
        s.instructions,
        s.operations,
        s.nops,
        s.detect_decodes,
        s.cache_lookups,
        s.cache_hits,
        s.prediction_hits,
        s.superblocks_built,
        s.superblock_batches,
        s.mem_reads,
        s.mem_writes,
        s.isa_switches,
        s.simops,
        s.taken_branches,
        s.tier_promotions,
        s.tier_invalidations,
        s.ir_instructions,
    ]
}

fn stats_from_fields(f: &[u64; STATS_FIELDS as usize]) -> SimStats {
    SimStats {
        instructions: f[0],
        operations: f[1],
        nops: f[2],
        detect_decodes: f[3],
        cache_lookups: f[4],
        cache_hits: f[5],
        prediction_hits: f[6],
        superblocks_built: f[7],
        superblock_batches: f[8],
        mem_reads: f[9],
        mem_writes: f[10],
        isa_switches: f[11],
        simops: f[12],
        taken_branches: f[13],
        tier_promotions: f[14],
        tier_invalidations: f[15],
        ir_instructions: f[16],
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapWireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SnapWireError::Malformed(format!("truncated at offset {}", self.pos)))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapWireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapWireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapWireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn vec(&mut self, cap: usize, what: &str) -> Result<Vec<u8>, SnapWireError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(SnapWireError::Malformed(format!("{what} length {len} exceeds cap {cap}")));
        }
        Ok(self.take(len)?.to_vec())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Snapshot {
    /// Whether this snapshot can be serialized with
    /// [`Snapshot::to_portable_bytes`].
    ///
    /// True exactly when the capture carries no cycle model, branch
    /// predictor, profiler, or fabric shared-memory port — the default
    /// configuration of a functional serving session.
    #[must_use]
    pub fn is_portable(&self) -> bool {
        self.model.is_none()
            && self.predictor.is_none()
            && self.profiler.is_none()
            && self.state.mem.shared_port().is_none()
    }

    /// Encodes the snapshot into the versioned portable byte format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapWireError::NotPortable`] when the snapshot carries a
    /// cycle model, branch predictor, profiler, or shared-memory port (see
    /// [`Snapshot::is_portable`]).
    pub fn to_portable_bytes(&self) -> Result<Vec<u8>, SnapWireError> {
        if self.model.is_some() {
            return Err(SnapWireError::NotPortable("cycle model"));
        }
        if self.predictor.is_some() {
            return Err(SnapWireError::NotPortable("branch predictor"));
        }
        if self.profiler.is_some() {
            return Err(SnapWireError::NotPortable("profiler"));
        }
        if self.state.mem.shared_port().is_some() {
            return Err(SnapWireError::NotPortable("shared memory port"));
        }

        let s = &self.state;
        let pages = s.mem.pages_sorted();
        let mut out = Vec::with_capacity(512 + pages.len() * (4 + Memory::PAGE_SIZE));
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, SNAPWIRE_VERSION);
        for r in 0..32 {
            put_u32(&mut out, s.reg(r));
        }
        put_u32(&mut out, s.ip);
        out.push(s.active_isa.value());
        out.push(u8::from(s.halted));
        put_u32(&mut out, s.exit_code);
        put_u32(&mut out, s.heap_ptr);
        put_u64(&mut out, s.rng_state);
        put_u64(&mut out, s.retired_instructions);
        put_u32(&mut out, u32::try_from(s.stdout.len()).unwrap_or(u32::MAX));
        out.extend_from_slice(&s.stdout);
        put_u32(&mut out, u32::try_from(s.stdin.len()).unwrap_or(u32::MAX));
        out.extend_from_slice(&s.stdin);
        put_u64(&mut out, s.stdin_pos as u64);
        put_u32(&mut out, STATS_FIELDS);
        for v in stats_fields(&self.stats) {
            put_u64(&mut out, v);
        }
        put_u32(&mut out, u32::try_from(self.ip_history.len()).unwrap_or(u32::MAX));
        for &ip in &self.ip_history {
            put_u32(&mut out, ip);
        }
        put_u32(&mut out, u32::try_from(pages.len()).unwrap_or(u32::MAX));
        for (index, bytes) in pages {
            put_u32(&mut out, index);
            out.extend_from_slice(bytes);
        }
        Ok(out)
    }

    /// Decodes a snapshot previously produced by
    /// [`Snapshot::to_portable_bytes`].
    ///
    /// The result restores into any simulator built from the same
    /// executable and a model-less configuration via
    /// [`crate::Simulator::restore`], continuing bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SnapWireError::Malformed`] when the bytes are not a valid
    /// version-1 encoding.
    pub fn from_portable_bytes(bytes: &[u8]) -> Result<Snapshot, SnapWireError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(SnapWireError::Malformed("bad magic".into()));
        }
        let version = r.u32()?;
        if version != SNAPWIRE_VERSION {
            return Err(SnapWireError::Malformed(format!(
                "unsupported snapshot version {version} (expected {SNAPWIRE_VERSION})"
            )));
        }
        let mut regs = [0u32; 32];
        for reg in &mut regs {
            *reg = r.u32()?;
        }
        let ip = r.u32()?;
        let isa = IsaId::new(r.u8()?);
        let halted = r.u8()? != 0;
        let exit_code = r.u32()?;
        let heap_ptr = r.u32()?;
        let rng_state = r.u64()?;
        let retired = r.u64()?;
        let stdout = r.vec(1 << 30, "stdout")?;
        let stdin = r.vec(1 << 30, "stdin")?;
        let stdin_pos = usize::try_from(r.u64()?)
            .map_err(|_| SnapWireError::Malformed("stdin_pos overflow".into()))?;
        let nstats = r.u32()?;
        if nstats != STATS_FIELDS {
            return Err(SnapWireError::Malformed(format!(
                "stats field count {nstats} (expected {STATS_FIELDS})"
            )));
        }
        let mut fields = [0u64; STATS_FIELDS as usize];
        for field in &mut fields {
            *field = r.u64()?;
        }
        let stats = stats_from_fields(&fields);
        let nhist = r.u32()? as usize;
        if nhist > 1 << 20 {
            return Err(SnapWireError::Malformed(format!("ip history length {nhist}")));
        }
        let mut ip_history = VecDeque::with_capacity(nhist);
        for _ in 0..nhist {
            ip_history.push_back(r.u32()?);
        }

        let mut state = CpuState::new(ip, isa, heap_ptr);
        for (i, &v) in regs.iter().enumerate() {
            state.write_reg(i as u8, v);
        }
        state.halted = halted;
        state.exit_code = exit_code;
        state.rng_state = rng_state;
        state.retired_instructions = retired;
        state.stdout = stdout;
        state.stdin = stdin;
        state.stdin_pos = stdin_pos;
        let npages = r.u32()? as usize;
        for _ in 0..npages {
            let index = r.u32()?;
            let contents = r.take(Memory::PAGE_SIZE)?;
            state.mem.install_page(index, contents);
        }
        if r.pos != bytes.len() {
            return Err(SnapWireError::Malformed(format!(
                "{} trailing bytes after snapshot",
                bytes.len() - r.pos
            )));
        }
        Ok(Snapshot {
            state,
            stats,
            model: None,
            predictor: None,
            profiler: None,
            ip_history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::CycleModelKind;
    use crate::sim::{RunOutcome, SimConfig, Simulator};
    use kahrisma_asm::build;

    const LOOP: &str = "
.isa risc
.text
.global main
.func main
main:
    li t0, 0
    li t1, 200
    li t2, 0x6000
    sw t1, 0(t2)
loop:
    addi t0, t0, 3
    addi t1, t1, -1
    bne t1, zero, loop
    sw t0, 4(t2)
    add rv, t0, zero
    jr ra
.endfunc
";

    #[test]
    fn roundtrip_restores_bit_exactly_into_a_fresh_simulator() {
        let exe = build(&[("l.s", LOOP)]).unwrap();
        let mut reference = Simulator::new(&exe, SimConfig::default()).unwrap();
        let expected = reference.run(1_000_000).unwrap();
        let total = reference.stats().instructions;

        let mut paused = Simulator::new(&exe, SimConfig::default()).unwrap();
        assert_eq!(paused.run_for(57).unwrap(), RunOutcome::BudgetExhausted);
        let snap = paused.snapshot().unwrap();
        assert!(snap.is_portable());

        let bytes = snap.to_portable_bytes().unwrap();
        let decoded = Snapshot::from_portable_bytes(&bytes).unwrap();
        assert_eq!(decoded.instructions(), 57);
        assert_eq!(decoded.ip(), snap.ip());

        let mut resumed = Simulator::new(&exe, SimConfig::default()).unwrap();
        resumed.restore(&decoded).unwrap();
        assert_eq!(resumed.run(1_000_000).unwrap(), expected);
        assert_eq!(resumed.stats().instructions, total);
        assert_eq!(resumed.stats().operations, reference.stats().operations);
        assert_eq!(resumed.stats().mem_reads, reference.stats().mem_reads);
        assert_eq!(resumed.stats().mem_writes, reference.stats().mem_writes);
        assert_eq!(resumed.state().reg(2), reference.state().reg(2));
    }

    #[test]
    fn encoding_is_deterministic() {
        let exe = build(&[("l.s", LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        sim.run_for(31).unwrap();
        let a = sim.snapshot().unwrap().to_portable_bytes().unwrap();
        let b = sim.snapshot().unwrap().to_portable_bytes().unwrap();
        assert_eq!(a, b);
        // Re-encoding a decoded snapshot is also byte-identical.
        let c = Snapshot::from_portable_bytes(&a).unwrap().to_portable_bytes().unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn model_snapshots_are_rejected_as_not_portable() {
        let exe = build(&[("l.s", LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).unwrap();
        sim.run_for(10).unwrap();
        let snap = sim.snapshot().unwrap();
        assert!(!snap.is_portable());
        assert_eq!(
            snap.to_portable_bytes().unwrap_err(),
            SnapWireError::NotPortable("cycle model")
        );
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(matches!(
            Snapshot::from_portable_bytes(b"nope"),
            Err(SnapWireError::Malformed(_))
        ));
        let exe = build(&[("l.s", LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        sim.run_for(5).unwrap();
        let mut bytes = sim.snapshot().unwrap().to_portable_bytes().unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(Snapshot::from_portable_bytes(&bytes), Err(SnapWireError::Malformed(_))));
        let mut wrong_version = sim.snapshot().unwrap().to_portable_bytes().unwrap();
        wrong_version[4] = 9;
        let err = Snapshot::from_portable_bytes(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }
}
