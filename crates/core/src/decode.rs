//! Instruction detection, decoding, and the flat-arena decode cache.
//!
//! Paper §V-A: "all detected and decoded instructions are stored in a cache
//! tagged by the instruction address. Thereby, each executed instruction is
//! only detected and decoded once. […] Further, we speed up the cache entry
//! lookup by using instruction prediction. […] we store within each decode
//! structure the IP and decode structure pointer of the following
//! instruction."
//!
//! Three hot-path properties beyond the paper's description:
//!
//! * **Flat arena** — every [`DecodedSlot`] of every cached instruction
//!   lives in one contiguous slab; a [`DecodedInstr`] holds a
//!   `(start, width)` range into it, so a cache hit is index arithmetic
//!   with no per-entry pointer chasing, and the prediction chain
//!   (`pred_idx`) is a direct index into the instruction arena.
//! * **Specialized dispatch** — decode resolves each slot's declarative
//!   [`Behavior`] to a compact [`ExecKind`] plus a precompiled ALU/condition
//!   function pointer, a precomputed control-transfer target, and a
//!   prebuilt cycle-model event template, so execution never re-interprets
//!   the full declarative vocabulary.
//! * **Superblocks** — straight-line runs of cached instructions (up to the
//!   next control transfer, `switchtarget`, `simop`, or `halt`) are indexed
//!   per head instruction so the simulation loop can execute them
//!   back-to-back without re-entering lookup or prediction per instruction.
//!
//! The cache key includes the active ISA so that mixed-ISA programs that
//! re-execute an address under a different ISA (possible after
//! `switchtarget`) never see a stale decode; superblocks inherit that
//! keying because run membership is expressed in `(addr, isa)`-keyed
//! instruction indices.

use std::collections::HashMap;

use kahrisma_isa::adl::{AluOp, AtomicOp, Behavior, CondOp, FuClass, IsaId, MemWidth, TableSet};

use crate::cycles::OpEvent;
use crate::error::SimError;
use crate::ir::IrBlock;
use crate::mem::Memory;

/// No-prediction / no-index sentinel.
pub(crate) const NO_IDX: u32 = u32::MAX;

/// Tier state: the superblock was considered for the compiled tier and
/// permanently rejected (hazardous bundle or unsupported body slot).
pub(crate) const IR_BARRED: u32 = u32::MAX - 1;

/// Upper bound on superblock length (straight-line runs longer than this
/// are split; keeps run construction and budget accounting bounded).
pub(crate) const MAX_RUN_LEN: usize = 64;

/// Specialized execution kind resolved at decode time: the per-execution
/// dispatch is a jump over this compact vocabulary instead of a nested
/// match over the full declarative [`Behavior`] enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecKind {
    /// Slot filler.
    Nop,
    /// `rd = fun(rs1, rs2)`.
    Alu,
    /// `rd = fun(rs1, imm)`.
    AluImm,
    /// `rd = imm << 13`.
    Lui,
    /// Sign-extending byte load.
    LoadByteSigned,
    /// Zero-extending byte load.
    LoadByteUnsigned,
    /// Sign-extending half load.
    LoadHalfSigned,
    /// Zero-extending half load.
    LoadHalfUnsigned,
    /// Word load.
    LoadWord,
    /// Byte store.
    StoreByte,
    /// Half store.
    StoreHalf,
    /// Word store.
    StoreWord,
    /// Conditional branch; `fun` is the comparison, `target` the taken IP.
    Branch,
    /// Absolute jump to `target`.
    Jump,
    /// Call: link to `ra`, jump to `target`.
    JumpAndLink,
    /// Indirect jump to `rs1`.
    JumpReg,
    /// Indirect call: link to `rd`, jump to `rs1`.
    JumpAndLinkReg,
    /// ISA switch (serializing).
    SwitchTarget,
    /// C-library emulation call (serializing).
    SimOp,
    /// Stop simulation.
    Halt,
    /// Word atomic read-modify-write (serializing); `fun` applies the
    /// update to `(old_word, rs2)`, the [`Behavior::Atomic`] payload names
    /// the operation for barrier-deferred resolution.
    Atomic,
    /// Declarative behavior with no specialized implementation; raises
    /// [`SimError::IllegalInstruction`] if ever executed.
    Unsupported,
}

fn zero_fn(_a: u32, _b: u32) -> u32 {
    0
}

/// Resolves an ALU operation to a monomorphic function pointer. Listing the
/// variants lets the inner `eval` match constant-fold per arm, so each
/// pointer is the single operation's code rather than a re-dispatch.
fn alu_fn(op: AluOp) -> fn(u32, u32) -> u32 {
    macro_rules! resolve {
        ($($v:ident),+) => {
            match op { $(AluOp::$v => |a, b| AluOp::$v.eval(a, b),)+ }
        };
    }
    resolve!(
        Add, Sub, And, Or, Xor, Nor, Slt, Sltu, Sll, Srl, Sra, Mul, Mulh, Mulhu, Div, Divu,
        Rem, Remu
    )
}

/// Resolves a branch condition to a function pointer returning 0/1.
fn cond_fn(op: CondOp) -> fn(u32, u32) -> u32 {
    macro_rules! resolve {
        ($($v:ident),+) => {
            match op { $(CondOp::$v => |a, b| u32::from(CondOp::$v.eval(a, b)),)+ }
        };
    }
    resolve!(Eq, Ne, Lt, Ge, Ltu, Geu)
}

/// One decoded slot operation: the per-operation part of the paper's
/// *decode structure*, flattened for fast access during execution and
/// augmented with the decode-time specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// Slot equality compares `fun` by pointer; two slots decoded from the same
// word always share the resolution path, so this is stable enough for the
// structural comparisons tests do.
#[allow(unpredictable_function_pointer_comparisons)]
pub struct DecodedSlot {
    /// Index of the operation in its ISA's operation table.
    pub op_index: u16,
    /// Operation mnemonic (borrowed from the operation table).
    pub name: &'static str,
    /// Declarative semantics (drives the generated simulation function).
    pub behavior: Behavior,
    /// Execution delay in cycles (memory operations add hierarchy latency).
    pub delay: u32,
    /// Destination register field.
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate (sign-extended where the encoding says so).
    pub imm: u32,
    /// Source registers read by the operation (for dependence tracking).
    pub srcs: [u8; 2],
    /// Number of valid entries in [`DecodedSlot::srcs`].
    pub nsrcs: u8,
    /// Destination register written, or `255` for none.
    pub dst: u8,
    /// `true` for the `nop` filler.
    pub is_nop: bool,
    /// Specialized execution kind (decode-time dispatch resolution).
    pub(crate) exec: ExecKind,
    /// Precompiled ALU/condition function for [`ExecKind::Alu`],
    /// [`ExecKind::AluImm`], and [`ExecKind::Branch`].
    pub(crate) fun: fn(u32, u32) -> u32,
    /// Precomputed control-transfer target for direct branches and jumps
    /// (`op_addr + imm*4` for branches, `imm*4` for jumps).
    pub(crate) target: u32,
    /// Prebuilt cycle-model event; execution copies it and patches only the
    /// dynamic fields (memory address, misprediction penalty).
    pub(crate) event: OpEvent,
}

/// A fully decoded instruction (all issue slots), referencing its slots by
/// range in the owning arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Instruction address (slot 0 word).
    pub addr: u32,
    /// ISA the instruction was decoded under.
    pub isa: IsaId,
    /// Issue width (number of slots).
    pub width: u8,
    /// Start of the instruction's slots in the owning slot arena.
    pub(crate) start: u32,
    /// Predicted address of the following instruction (paper §V-A).
    pub pred_ip: u32,
    /// Predicted decode-cache index of the following instruction.
    pub pred_idx: u32,
    /// `true` when the instruction terminates a straight-line superblock
    /// (control transfer, ISA switch, `simop`, or `halt` in any slot).
    pub(crate) ends_run: bool,
    /// Superblock headed by this instruction, or `NO_IDX` if none built.
    pub(crate) sb: u32,
}

impl DecodedInstr {
    /// Size of the instruction in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        u32::from(self.width) * 4
    }
}

/// Builds the decode-time specialization of one slot.
fn specialize(behavior: Behavior, imm: u32, op_addr: u32) -> (ExecKind, fn(u32, u32) -> u32, u32) {
    use Behavior as B;
    match behavior {
        B::Nop => (ExecKind::Nop, zero_fn, 0),
        B::IntAlu(op) => (ExecKind::Alu, alu_fn(op), 0),
        B::IntAluImm(op) => (ExecKind::AluImm, alu_fn(op), 0),
        B::LoadUpperImm => (ExecKind::Lui, zero_fn, 0),
        B::Load { width, signed } => {
            let kind = match (width, signed) {
                (MemWidth::Byte, true) => ExecKind::LoadByteSigned,
                (MemWidth::Byte, false) => ExecKind::LoadByteUnsigned,
                (MemWidth::Half, true) => ExecKind::LoadHalfSigned,
                (MemWidth::Half, false) => ExecKind::LoadHalfUnsigned,
                (MemWidth::Word, _) => ExecKind::LoadWord,
            };
            (kind, zero_fn, 0)
        }
        B::Store { width } => {
            let kind = match width {
                MemWidth::Byte => ExecKind::StoreByte,
                MemWidth::Half => ExecKind::StoreHalf,
                MemWidth::Word => ExecKind::StoreWord,
            };
            (kind, zero_fn, 0)
        }
        B::Branch(cond) => {
            (ExecKind::Branch, cond_fn(cond), op_addr.wrapping_add(imm.wrapping_mul(4)))
        }
        B::Jump => (ExecKind::Jump, zero_fn, imm.wrapping_mul(4)),
        B::JumpAndLink => (ExecKind::JumpAndLink, zero_fn, imm.wrapping_mul(4)),
        B::JumpReg => (ExecKind::JumpReg, zero_fn, 0),
        B::JumpAndLinkReg => (ExecKind::JumpAndLinkReg, zero_fn, 0),
        B::SwitchTarget => (ExecKind::SwitchTarget, zero_fn, 0),
        B::SimOp => (ExecKind::SimOp, zero_fn, 0),
        B::Halt => (ExecKind::Halt, zero_fn, 0),
        B::Atomic(op) => (ExecKind::Atomic, atomic_fn(op), 0),
        _ => (ExecKind::Unsupported, zero_fn, 0),
    }
}

/// Resolves an atomic update to a monomorphic `(old, operand) -> new`
/// function pointer, mirroring [`alu_fn`].
fn atomic_fn(op: AtomicOp) -> fn(u32, u32) -> u32 {
    match op {
        AtomicOp::Swap => |old, operand| AtomicOp::Swap.apply(old, operand),
        AtomicOp::Add => |old, operand| AtomicOp::Add.apply(old, operand),
        _ => |old, _| old,
    }
}

/// Detects and decodes the instruction at `addr` under `isa`, appending its
/// slots to `arena` (the flat slab) and returning the range-holding decode
/// structure.
///
/// Detection checks the constant fields of each operation of the active
/// ISA's table (the expensive scan the decode cache amortizes); decoding
/// extracts all fields and resolves the decode-time specialization.
///
/// # Errors
///
/// Returns [`SimError::IllegalInstruction`] if any slot word matches no
/// operation of the ISA; `arena` is rolled back to its prior length.
pub(crate) fn detect_and_decode_into(
    tables: &TableSet,
    mem: &Memory,
    addr: u32,
    isa: IsaId,
    arena: &mut Vec<DecodedSlot>,
) -> Result<DecodedInstr, SimError> {
    let table = tables
        .table(isa)
        .ok_or(SimError::UnknownIsa { isa: isa.value(), addr })?;
    let width = table.issue_width();
    let start = arena.len() as u32;
    let mut ends_run = false;
    for slot in 0..u32::from(width) {
        let word_addr = addr + slot * 4;
        let word = mem.read_word(word_addr);
        let Some(d) = table.decode(word) else {
            arena.truncate(start as usize);
            return Err(SimError::IllegalInstruction {
                addr: word_addr,
                word,
                isa: isa.value(),
                context: None,
            });
        };
        let op = table.op(d.op_index);
        let behavior = op.behavior();
        let f = d.fields;
        let (srcs, nsrcs, dst) = reg_deps(behavior, f.rd, f.rs1, f.rs2);
        let is_nop = matches!(behavior, Behavior::Nop);
        let (exec, fun, target) = specialize(behavior, f.imm, word_addr);
        ends_run |= behavior.is_control()
            || matches!(
                behavior,
                Behavior::SwitchTarget | Behavior::SimOp | Behavior::Halt | Behavior::Atomic(_)
            );
        let delay = op.delay();
        arena.push(DecodedSlot {
            op_index: d.op_index,
            name: op.name(),
            behavior,
            delay,
            rd: f.rd,
            rs1: f.rs1,
            rs2: f.rs2,
            imm: f.imm,
            srcs,
            nsrcs,
            dst,
            is_nop,
            exec,
            fun,
            target,
            event: OpEvent {
                slot: slot as u8,
                srcs,
                nsrcs,
                dst,
                delay,
                mem: None,
                is_branch: behavior.is_control(),
                serialize: matches!(
                    behavior,
                    Behavior::SwitchTarget
                        | Behavior::SimOp
                        | Behavior::Halt
                        | Behavior::Atomic(_)
                ),
                is_nop,
                is_muldiv: matches!(behavior.fu_class(), FuClass::MulDiv),
                mispredict_penalty: 0,
            },
        });
    }
    Ok(DecodedInstr {
        addr,
        isa,
        width,
        start,
        pred_ip: 0,
        pred_idx: NO_IDX,
        ends_run,
        sb: NO_IDX,
    })
}

/// Computes the architectural register sources/destination of an operation
/// for dependence tracking in the cycle models.
fn reg_deps(behavior: Behavior, rd: u8, rs1: u8, rs2: u8) -> ([u8; 2], u8, u8) {
    use Behavior as B;
    const NONE: u8 = 255;
    match behavior {
        B::IntAlu(_) => ([rs1, rs2], 2, rd),
        B::IntAluImm(_) => ([rs1, 0], 1, rd),
        B::LoadUpperImm => ([0, 0], 0, rd),
        B::Load { .. } => ([rs1, 0], 1, rd),
        B::Store { .. } => ([rs1, rs2], 2, NONE),
        B::Branch(_) => ([rs1, rs2], 2, NONE),
        B::Jump => ([0, 0], 0, NONE),
        B::JumpAndLink => ([0, 0], 0, kahrisma_isa::abi::RA),
        B::JumpReg => ([rs1, 0], 1, NONE),
        B::JumpAndLinkReg => ([rs1, 0], 1, rd),
        // simop/switchtarget/halt serialize in the cycle models; nop is free.
        B::SwitchTarget | B::SimOp | B::Halt | B::Nop => ([0, 0], 0, NONE),
        B::Atomic(_) => ([rs1, rs2], 2, rd),
        _ => ([0, 0], 0, NONE),
    }
}

/// The decode cache: a flat slot slab plus an arena of decode structures and
/// an address-keyed hash map, with the paper's 1-entry-per-instruction
/// next-IP prediction and a superblock index over straight-line runs.
#[derive(Debug, Default)]
pub struct DecodeCache {
    /// All decoded slots, contiguous; instructions reference ranges.
    slots: Vec<DecodedSlot>,
    /// All decode structures; `map`, predictions, and runs index into this.
    instrs: Vec<DecodedInstr>,
    map: HashMap<(u32, u8), u32>,
    /// Superblocks as `(start, len)` ranges into `run_members`.
    runs: Vec<(u32, u32)>,
    /// Instruction indices of all superblocks, flattened.
    run_members: Vec<u32>,
    /// Per-superblock dispatch count since the last tier invalidation
    /// (parallel to `runs`); drives promotion to the compiled tier.
    run_heat: Vec<u32>,
    /// Per-superblock tier state (parallel to `runs`): `NO_IDX` for the
    /// interpreter tier, [`IR_BARRED`] for permanently rejected blocks,
    /// otherwise an index into `ir_blocks`.
    run_ir: Vec<u32>,
    /// Compiled blocks; invalidation tombstones entries to `None`.
    ir_blocks: Vec<Option<IrBlock>>,
    /// Text ranges `(lo, hi, sb)` of the live compiled blocks, for store
    /// and re-decode invalidation.
    ir_index: Vec<(u32, u32, u32)>,
    /// Head addresses of blocks invalidated since the simulator last
    /// collected them (for statistics and tier events).
    pending_inval: Vec<u32>,
}

impl DecodeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        DecodeCache::default()
    }

    /// Number of cached decode structures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of cached slots (the flat arena's length).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of superblocks built so far.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Looks up the cached index for `(addr, isa)`.
    #[must_use]
    pub(crate) fn lookup(&self, addr: u32, isa: IsaId) -> Option<u32> {
        self.map.get(&(addr, isa.value())).copied()
    }

    /// Detects and decodes the instruction at `addr`, storing its slots in
    /// the flat arena and registering it in the map; returns its index.
    ///
    /// # Errors
    ///
    /// Propagates decode failures; the cache is unchanged then.
    pub(crate) fn decode_insert(
        &mut self,
        tables: &TableSet,
        mem: &Memory,
        addr: u32,
        isa: IsaId,
    ) -> Result<u32, SimError> {
        let instr = detect_and_decode_into(tables, mem, addr, isa, &mut self.slots)?;
        let idx = self.instrs.len() as u32;
        let span = u32::from(instr.width) * 4;
        self.map.insert((addr, isa.value()), idx);
        self.instrs.push(instr);
        // A re-decode of an address already covered by a compiled block
        // (mixed-ISA re-execution of shared text) conservatively demotes
        // the overlapping blocks to the interpreter tier; they re-promote
        // from the unchanged decode structures once hot again.
        if !self.ir_index.is_empty() {
            self.invalidate_ir_overlapping(addr, addr.wrapping_add(span));
        }
        Ok(idx)
    }

    /// Returns the decode structure at `idx`.
    #[must_use]
    pub(crate) fn get(&self, idx: u32) -> &DecodedInstr {
        &self.instrs[idx as usize]
    }

    /// Returns the slots of the given decode structure.
    #[must_use]
    pub fn slots_of(&self, instr: &DecodedInstr) -> &[DecodedSlot] {
        let start = instr.start as usize;
        &self.slots[start..start + usize::from(instr.width)]
    }

    /// Returns the decode structure at `idx` together with its slots.
    #[must_use]
    pub(crate) fn instr_and_slots(&self, idx: u32) -> (&DecodedInstr, &[DecodedSlot]) {
        let instr = &self.instrs[idx as usize];
        let start = instr.start as usize;
        (instr, &self.slots[start..start + usize::from(instr.width)])
    }

    /// Updates the prediction stored in instruction `idx` (the IP and index
    /// of the instruction that followed it this time).
    pub(crate) fn set_prediction(&mut self, idx: u32, next_ip: u32, next_idx: u32) {
        let e = &mut self.instrs[idx as usize];
        e.pred_ip = next_ip;
        e.pred_idx = next_idx;
    }

    /// Reads the prediction of instruction `idx`: `Some(next_idx)` when the
    /// stored predicted IP matches `ip`.
    #[must_use]
    pub(crate) fn predict(&self, idx: u32, ip: u32) -> Option<u32> {
        let e = &self.instrs[idx as usize];
        if e.pred_idx != NO_IDX && e.pred_ip == ip {
            Some(e.pred_idx)
        } else {
            None
        }
    }

    /// The superblock headed by instruction `idx`, or `NO_IDX`.
    #[must_use]
    pub(crate) fn run_of(&self, idx: u32) -> u32 {
        self.instrs[idx as usize].sb
    }

    /// Registers the straight-line run `members` (which starts with `head`)
    /// and returns its superblock id.
    pub(crate) fn install_run(&mut self, head: u32, members: &[u32]) -> u32 {
        debug_assert_eq!(members.first(), Some(&head));
        let sb = self.runs.len() as u32;
        let start = self.run_members.len() as u32;
        self.run_members.extend_from_slice(members);
        self.runs.push((start, members.len() as u32));
        self.run_heat.push(0);
        self.run_ir.push(NO_IDX);
        self.instrs[head as usize].sb = sb;
        sb
    }

    /// Instruction indices of superblock `sb`, in execution order.
    #[must_use]
    pub(crate) fn run_members(&self, sb: u32) -> &[u32] {
        let (start, len) = self.runs[sb as usize];
        &self.run_members[start as usize..(start + len) as usize]
    }

    /// Bumps and returns superblock `sb`'s dispatch heat.
    pub(crate) fn heat_bump(&mut self, sb: u32) -> u32 {
        let h = &mut self.run_heat[sb as usize];
        *h = h.saturating_add(1);
        *h
    }

    /// Tier state of superblock `sb`: `NO_IDX` (interpreter), [`IR_BARRED`]
    /// (rejected), or a compiled-block id.
    #[must_use]
    pub(crate) fn ir_state(&self, sb: u32) -> u32 {
        self.run_ir[sb as usize]
    }

    /// The live compiled block of superblock `sb`, if any.
    #[must_use]
    pub(crate) fn ir_block(&self, sb: u32) -> Option<&IrBlock> {
        let id = self.run_ir[sb as usize];
        if id < IR_BARRED { self.ir_blocks[id as usize].as_ref() } else { None }
    }

    /// Installs `block` as superblock `sb`'s compiled tier.
    pub(crate) fn install_ir(&mut self, sb: u32, block: IrBlock) {
        debug_assert_eq!(self.run_ir[sb as usize], NO_IDX);
        let id = self.ir_blocks.len() as u32;
        self.ir_index.push((block.lo, block.hi, sb));
        self.ir_blocks.push(Some(block));
        self.run_ir[sb as usize] = id;
    }

    /// Permanently bars superblock `sb` from the compiled tier.
    pub(crate) fn bar_ir(&mut self, sb: u32) {
        self.run_ir[sb as usize] = IR_BARRED;
    }

    /// Number of live compiled blocks.
    #[must_use]
    pub fn ir_block_count(&self) -> usize {
        self.ir_index.len()
    }

    /// The merged text range `[lo, hi)` covered by live compiled blocks,
    /// or `None` when the tier is empty (the simulator derives the store
    /// watch window from this).
    #[must_use]
    pub(crate) fn ir_bounds(&self) -> Option<(u32, u32)> {
        self.ir_index
            .iter()
            .fold(None, |acc, &(lo, hi, _)| match acc {
                None => Some((lo, hi)),
                Some((alo, ahi)) => Some((alo.min(lo), ahi.max(hi))),
            })
    }

    /// Demotes every compiled block intersecting `[lo, hi)` back to the
    /// interpreter tier, resetting its heat so it must re-earn promotion.
    /// Invalidated head addresses are queued for
    /// [`DecodeCache::take_ir_invalidations`].
    pub(crate) fn invalidate_ir_overlapping(&mut self, lo: u32, hi: u32) {
        let mut i = 0;
        while i < self.ir_index.len() {
            let (blo, bhi, sb) = self.ir_index[i];
            if lo < bhi && blo < hi {
                let id = self.run_ir[sb as usize];
                debug_assert!(id < IR_BARRED);
                self.ir_blocks[id as usize] = None;
                self.run_ir[sb as usize] = NO_IDX;
                self.run_heat[sb as usize] = 0;
                let head = self.run_members(sb)[0];
                let head_addr = self.instrs[head as usize].addr;
                self.pending_inval.push(head_addr);
                self.ir_index.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Whether invalidations await collection.
    #[must_use]
    pub(crate) fn has_pending_ir_invalidations(&self) -> bool {
        !self.pending_inval.is_empty()
    }

    /// Takes the head addresses of blocks invalidated since the last call.
    pub(crate) fn take_ir_invalidations(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.pending_inval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_isa::{isa_id, tables};

    fn mem_with(words: &[(u32, u32)]) -> Memory {
        let mut m = Memory::new();
        for &(a, w) in words {
            m.write_word(a, w);
        }
        m
    }

    fn encode(isa: IsaId, name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32) -> u32 {
        let t = tables();
        t.table(isa).unwrap().op_by_name(name).unwrap().1.encode(rd, rs1, rs2, imm)
    }

    fn decode_one(mem: &Memory, addr: u32, isa: IsaId) -> (DecodedInstr, Vec<DecodedSlot>) {
        let t = tables();
        let mut arena = Vec::new();
        let d = detect_and_decode_into(&t, mem, addr, isa, &mut arena).unwrap();
        (d, arena)
    }

    #[test]
    fn decodes_risc_instruction() {
        let mem = mem_with(&[(0x100, encode(isa_id::RISC, "addi", 3, 4, 0, (-9i32) as u32))]);
        let (d, slots) = decode_one(&mem, 0x100, isa_id::RISC);
        assert_eq!(d.width, 1);
        assert_eq!(slots[0].name, "addi");
        assert_eq!(slots[0].rd, 3);
        assert_eq!(slots[0].imm as i32, -9);
        assert_eq!(slots[0].dst, 3);
        assert_eq!(slots[0].nsrcs, 1);
        assert_eq!(slots[0].exec, ExecKind::AluImm);
        assert_eq!((slots[0].fun)(10, (-9i32) as u32), 1);
        assert!(!d.ends_run);
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn decodes_vliw_bundle() {
        let mem = mem_with(&[
            (0x200, encode(isa_id::VLIW4, "add", 1, 2, 3, 0)),
            (0x204, encode(isa_id::VLIW4, "lw", 4, 29, 0, 8)),
            (0x208, 0), // nop
            (0x20C, encode(isa_id::VLIW4, "beq", 0, 5, 6, (-2i32) as u32)),
        ]);
        let (d, slots) = decode_one(&mem, 0x200, isa_id::VLIW4);
        assert_eq!(d.width, 4);
        assert!(slots[2].is_nop);
        assert_eq!(slots[3].name, "beq");
        // Store-style B encoding for branch: rs1/rs2 are the comparands.
        assert_eq!(slots[3].srcs, [5, 6]);
        assert_eq!(slots[3].exec, ExecKind::Branch);
        // Branch target precomputed relative to the branch's own word.
        assert_eq!(slots[3].target, 0x20C_u32.wrapping_add((-2i32 as u32).wrapping_mul(4)));
        // A bundle containing a branch ends its superblock.
        assert!(d.ends_run);
        assert_eq!(d.size(), 16);
    }

    #[test]
    fn specialization_matches_declarative_eval() {
        // The precompiled function pointers must agree with AluOp/CondOp::eval
        // on edge cases (division by zero, signedness).
        for op in [AluOp::Add, AluOp::Div, AluOp::Rem, AluOp::Sra, AluOp::Sltu] {
            let f = alu_fn(op);
            for (a, b) in [(7, 0), (0x8000_0000, 0xFFFF_FFFF), (3, 35), (u32::MAX, 1)] {
                assert_eq!(f(a, b), op.eval(a, b), "{op:?}({a:#x},{b:#x})");
            }
        }
        for cond in [CondOp::Eq, CondOp::Lt, CondOp::Geu] {
            let f = cond_fn(cond);
            for (a, b) in [(0, 0), (0xFFFF_FFFF, 0), (1, 2)] {
                assert_eq!(f(a, b) != 0, cond.eval(a, b), "{cond:?}({a:#x},{b:#x})");
            }
        }
    }

    #[test]
    fn illegal_word_reports_slot_address_and_rolls_back_arena() {
        let t = tables();
        let mem = mem_with(&[(0x300, 0), (0x304, 0xFFFF_FFFF)]);
        let mut arena = Vec::new();
        let err = detect_and_decode_into(&t, &mem, 0x300, isa_id::VLIW2, &mut arena).unwrap_err();
        match err {
            SimError::IllegalInstruction { addr, word, isa, .. } => {
                assert_eq!(addr, 0x304);
                assert_eq!(word, 0xFFFF_FFFF);
                assert_eq!(isa, isa_id::VLIW2.value());
            }
            other => panic!("{other:?}"),
        }
        // The partially decoded slot 0 must not leak into the slab.
        assert!(arena.is_empty());
    }

    #[test]
    fn cache_is_keyed_by_addr_and_isa() {
        let t = tables();
        // The same address decodes differently under RISC and VLIW2.
        let mem = mem_with(&[(0x400, encode(isa_id::RISC, "add", 1, 2, 3, 0)), (0x404, 0)]);
        let mut cache = DecodeCache::new();
        let i0 = cache.decode_insert(&t, &mem, 0x400, isa_id::RISC).unwrap();
        let i1 = cache.decode_insert(&t, &mem, 0x400, isa_id::VLIW2).unwrap();
        assert_eq!(cache.lookup(0x400, isa_id::RISC), Some(i0));
        assert_eq!(cache.lookup(0x400, isa_id::VLIW2), Some(i1));
        assert_eq!(cache.lookup(0x404, isa_id::RISC), None);
        assert_eq!(cache.len(), 2);
        // Flat arena: slots are contiguous, 1 (RISC) + 2 (VLIW2) entries.
        assert_eq!(cache.slot_count(), 3);
        let (risc, risc_slots) = cache.instr_and_slots(i0);
        assert_eq!(risc.isa, isa_id::RISC);
        assert_eq!(risc_slots.len(), 1);
        let (vliw, vliw_slots) = cache.instr_and_slots(i1);
        assert_eq!(vliw_slots.len(), 2);
        assert_eq!(cache.slots_of(vliw), vliw_slots);
    }

    #[test]
    fn prediction_matches_only_stored_ip() {
        let t = tables();
        let mem = mem_with(&[(0x500, 0)]);
        let mut cache = DecodeCache::new();
        let idx = cache.decode_insert(&t, &mem, 0x500, isa_id::RISC).unwrap();
        assert_eq!(cache.predict(idx, 0x504), None); // nothing stored yet
        cache.set_prediction(idx, 0x504, 7);
        assert_eq!(cache.predict(idx, 0x504), Some(7));
        assert_eq!(cache.predict(idx, 0x508), None); // wrong ip
    }

    #[test]
    fn jal_dependence_includes_link_register() {
        let mem = mem_with(&[(0x600, encode(isa_id::RISC, "jal", 0, 0, 0, 0x40))]);
        let (d, slots) = decode_one(&mem, 0x600, isa_id::RISC);
        assert_eq!(slots[0].dst, kahrisma_isa::abi::RA);
        assert_eq!(slots[0].exec, ExecKind::JumpAndLink);
        assert_eq!(slots[0].target, 0x100); // absolute: imm * 4
        assert!(d.ends_run);
    }

    #[test]
    fn superblock_index_round_trips() {
        let t = tables();
        let mem = mem_with(&[(0x700, 0), (0x704, 0), (0x708, 0)]);
        let mut cache = DecodeCache::new();
        let a = cache.decode_insert(&t, &mem, 0x700, isa_id::RISC).unwrap();
        let b = cache.decode_insert(&t, &mem, 0x704, isa_id::RISC).unwrap();
        let c = cache.decode_insert(&t, &mem, 0x708, isa_id::RISC).unwrap();
        assert_eq!(cache.run_of(a), NO_IDX);
        let sb = cache.install_run(a, &[a, b, c]);
        assert_eq!(cache.run_of(a), sb);
        assert_eq!(cache.run_members(sb), &[a, b, c]);
        // Non-head members do not claim the run.
        assert_eq!(cache.run_of(b), NO_IDX);
        assert_eq!(cache.run_count(), 1);
    }

    #[test]
    fn event_template_prebuilt_at_decode() {
        let mem = mem_with(&[(0x800, encode(isa_id::RISC, "mul", 5, 6, 7, 0))]);
        let (_, slots) = decode_one(&mem, 0x800, isa_id::RISC);
        let ev = slots[0].event;
        assert!(ev.is_muldiv);
        assert!(!ev.is_branch);
        assert_eq!(ev.dst, 5);
        assert_eq!(ev.srcs, [6, 7]);
        assert_eq!(ev.mem, None);
    }
}
