//! Instruction detection, decoding, and the decode cache.
//!
//! Paper §V-A: "all detected and decoded instructions are stored in a cache
//! tagged by the instruction address. Thereby, each executed instruction is
//! only detected and decoded once. […] Further, we speed up the cache entry
//! lookup by using instruction prediction. […] we store within each decode
//! structure the IP and decode structure pointer of the following
//! instruction."
//!
//! The cache key includes the active ISA so that mixed-ISA programs that
//! re-execute an address under a different ISA (possible after
//! `switchtarget`) never see a stale decode.

use std::collections::HashMap;

use kahrisma_isa::adl::{Behavior, IsaId, TableSet};

use crate::error::SimError;
use crate::mem::Memory;

/// No-prediction / no-index sentinel.
pub(crate) const NO_IDX: u32 = u32::MAX;

/// One decoded slot operation: the per-operation part of the paper's
/// *decode structure*, flattened for fast access during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedSlot {
    /// Index of the operation in its ISA's operation table.
    pub op_index: u16,
    /// Operation mnemonic (borrowed from the operation table).
    pub name: &'static str,
    /// Declarative semantics (drives the generated simulation function).
    pub behavior: Behavior,
    /// Execution delay in cycles (memory operations add hierarchy latency).
    pub delay: u32,
    /// Destination register field.
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate (sign-extended where the encoding says so).
    pub imm: u32,
    /// Source registers read by the operation (for dependence tracking).
    pub srcs: [u8; 2],
    /// Number of valid entries in [`DecodedSlot::srcs`].
    pub nsrcs: u8,
    /// Destination register written, or `255` for none.
    pub dst: u8,
    /// `true` for the `nop` filler.
    pub is_nop: bool,
}

/// A fully decoded instruction (all issue slots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Instruction address (slot 0 word).
    pub addr: u32,
    /// ISA the instruction was decoded under.
    pub isa: IsaId,
    /// Issue width (number of slots).
    pub width: u8,
    /// Decoded slots, `width` entries.
    pub slots: Vec<DecodedSlot>,
    /// Predicted address of the following instruction (paper §V-A).
    pub pred_ip: u32,
    /// Predicted decode-cache index of the following instruction.
    pub pred_idx: u32,
}

impl DecodedInstr {
    /// Size of the instruction in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        u32::from(self.width) * 4
    }
}

/// Detects and decodes the instruction at `addr` under `isa`.
///
/// Detection checks the constant fields of each operation of the active
/// ISA's table (the expensive scan the decode cache amortizes); decoding
/// extracts all fields into the decode structure.
///
/// # Errors
///
/// Returns [`SimError::IllegalInstruction`] if any slot word matches no
/// operation of the ISA.
pub(crate) fn detect_and_decode(
    tables: &TableSet,
    mem: &Memory,
    addr: u32,
    isa: IsaId,
) -> Result<DecodedInstr, SimError> {
    let table = tables
        .table(isa)
        .ok_or(SimError::UnknownIsa { isa: isa.value(), addr })?;
    let width = table.issue_width();
    let mut slots = Vec::with_capacity(usize::from(width));
    for slot in 0..u32::from(width) {
        let word_addr = addr + slot * 4;
        let word = mem.read_word(word_addr);
        let d = table.decode(word).ok_or(SimError::IllegalInstruction {
            addr: word_addr,
            word,
            isa: isa.value(),
            context: None,
        })?;
        let op = table.op(d.op_index);
        let behavior = op.behavior();
        let f = d.fields;
        let (srcs, nsrcs, dst) = reg_deps(behavior, f.rd, f.rs1, f.rs2);
        slots.push(DecodedSlot {
            op_index: d.op_index,
            name: op.name(),
            behavior,
            delay: op.delay(),
            rd: f.rd,
            rs1: f.rs1,
            rs2: f.rs2,
            imm: f.imm,
            srcs,
            nsrcs,
            dst,
            is_nop: matches!(behavior, Behavior::Nop),
        });
    }
    Ok(DecodedInstr { addr, isa, width, slots, pred_ip: 0, pred_idx: NO_IDX })
}

/// Computes the architectural register sources/destination of an operation
/// for dependence tracking in the cycle models.
fn reg_deps(behavior: Behavior, rd: u8, rs1: u8, rs2: u8) -> ([u8; 2], u8, u8) {
    use Behavior as B;
    const NONE: u8 = 255;
    match behavior {
        B::IntAlu(_) => ([rs1, rs2], 2, rd),
        B::IntAluImm(_) => ([rs1, 0], 1, rd),
        B::LoadUpperImm => ([0, 0], 0, rd),
        B::Load { .. } => ([rs1, 0], 1, rd),
        B::Store { .. } => ([rs1, rs2], 2, NONE),
        B::Branch(_) => ([rs1, rs2], 2, NONE),
        B::Jump => ([0, 0], 0, NONE),
        B::JumpAndLink => ([0, 0], 0, kahrisma_isa::abi::RA),
        B::JumpReg => ([rs1, 0], 1, NONE),
        B::JumpAndLinkReg => ([rs1, 0], 1, rd),
        // simop/switchtarget/halt serialize in the cycle models; nop is free.
        B::SwitchTarget | B::SimOp | B::Halt | B::Nop => ([0, 0], 0, NONE),
        _ => ([0, 0], 0, NONE),
    }
}

/// The decode cache: an arena of decode structures plus an address-keyed
/// hash map, with the paper's 1-entry-per-instruction next-IP prediction.
#[derive(Debug, Default)]
pub struct DecodeCache {
    arena: Vec<DecodedInstr>,
    map: HashMap<(u32, u8), u32>,
}

impl DecodeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        DecodeCache::default()
    }

    /// Number of cached decode structures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Looks up the cached index for `(addr, isa)`.
    #[must_use]
    pub(crate) fn lookup(&self, addr: u32, isa: IsaId) -> Option<u32> {
        self.map.get(&(addr, isa.value())).copied()
    }

    /// Inserts a freshly decoded instruction, returning its index.
    pub(crate) fn insert(&mut self, instr: DecodedInstr) -> u32 {
        let idx = self.arena.len() as u32;
        self.map.insert((instr.addr, instr.isa.value()), idx);
        self.arena.push(instr);
        idx
    }

    /// Returns the decode structure at `idx`.
    #[must_use]
    pub(crate) fn get(&self, idx: u32) -> &DecodedInstr {
        &self.arena[idx as usize]
    }

    /// Updates the prediction stored in instruction `idx` (the IP and index
    /// of the instruction that followed it this time).
    pub(crate) fn set_prediction(&mut self, idx: u32, next_ip: u32, next_idx: u32) {
        let e = &mut self.arena[idx as usize];
        e.pred_ip = next_ip;
        e.pred_idx = next_idx;
    }

    /// Reads the prediction of instruction `idx`: `Some(next_idx)` when the
    /// stored predicted IP matches `ip`.
    #[must_use]
    pub(crate) fn predict(&self, idx: u32, ip: u32) -> Option<u32> {
        let e = &self.arena[idx as usize];
        if e.pred_idx != NO_IDX && e.pred_ip == ip {
            Some(e.pred_idx)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_isa::{isa_id, tables};

    fn mem_with(words: &[(u32, u32)]) -> Memory {
        let mut m = Memory::new();
        for &(a, w) in words {
            m.write_word(a, w);
        }
        m
    }

    fn encode(isa: IsaId, name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32) -> u32 {
        let t = tables();
        t.table(isa).unwrap().op_by_name(name).unwrap().1.encode(rd, rs1, rs2, imm)
    }

    #[test]
    fn decodes_risc_instruction() {
        let t = tables();
        let mem = mem_with(&[(0x100, encode(isa_id::RISC, "addi", 3, 4, 0, (-9i32) as u32))]);
        let d = detect_and_decode(&t, &mem, 0x100, isa_id::RISC).unwrap();
        assert_eq!(d.width, 1);
        assert_eq!(d.slots[0].name, "addi");
        assert_eq!(d.slots[0].rd, 3);
        assert_eq!(d.slots[0].imm as i32, -9);
        assert_eq!(d.slots[0].dst, 3);
        assert_eq!(d.slots[0].nsrcs, 1);
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn decodes_vliw_bundle() {
        let t = tables();
        let mem = mem_with(&[
            (0x200, encode(isa_id::VLIW4, "add", 1, 2, 3, 0)),
            (0x204, encode(isa_id::VLIW4, "lw", 4, 29, 0, 8)),
            (0x208, 0), // nop
            (0x20C, encode(isa_id::VLIW4, "beq", 0, 5, 6, (-2i32) as u32)),
        ]);
        let d = detect_and_decode(&t, &mem, 0x200, isa_id::VLIW4).unwrap();
        assert_eq!(d.width, 4);
        assert!(d.slots[2].is_nop);
        assert_eq!(d.slots[3].name, "beq");
        // Store-style B encoding for branch: rs1/rs2 are the comparands.
        assert_eq!(d.slots[3].srcs, [5, 6]);
        assert_eq!(d.size(), 16);
    }

    #[test]
    fn illegal_word_reports_slot_address() {
        let t = tables();
        let mem = mem_with(&[(0x300, 0), (0x304, 0xFFFF_FFFF)]);
        let err = detect_and_decode(&t, &mem, 0x300, isa_id::VLIW2).unwrap_err();
        match err {
            SimError::IllegalInstruction { addr, word, isa, .. } => {
                assert_eq!(addr, 0x304);
                assert_eq!(word, 0xFFFF_FFFF);
                assert_eq!(isa, isa_id::VLIW2.value());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_is_keyed_by_addr_and_isa() {
        let t = tables();
        // The same address decodes differently under RISC and VLIW2.
        let mem = mem_with(&[(0x400, encode(isa_id::RISC, "add", 1, 2, 3, 0)), (0x404, 0)]);
        let mut cache = DecodeCache::new();
        let risc = detect_and_decode(&t, &mem, 0x400, isa_id::RISC).unwrap();
        let vliw = detect_and_decode(&t, &mem, 0x400, isa_id::VLIW2).unwrap();
        let i0 = cache.insert(risc);
        let i1 = cache.insert(vliw);
        assert_eq!(cache.lookup(0x400, isa_id::RISC), Some(i0));
        assert_eq!(cache.lookup(0x400, isa_id::VLIW2), Some(i1));
        assert_eq!(cache.lookup(0x404, isa_id::RISC), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn prediction_matches_only_stored_ip() {
        let t = tables();
        let mem = mem_with(&[(0x500, 0)]);
        let mut cache = DecodeCache::new();
        let d = detect_and_decode(&t, &mem, 0x500, isa_id::RISC).unwrap();
        let idx = cache.insert(d);
        assert_eq!(cache.predict(idx, 0x504), None); // nothing stored yet
        cache.set_prediction(idx, 0x504, 7);
        assert_eq!(cache.predict(idx, 0x504), Some(7));
        assert_eq!(cache.predict(idx, 0x508), None); // wrong ip
    }

    #[test]
    fn jal_dependence_includes_link_register() {
        let t = tables();
        let mem = mem_with(&[(0x600, encode(isa_id::RISC, "jal", 0, 0, 0, 0x40))]);
        let d = detect_and_decode(&t, &mem, 0x600, isa_id::RISC).unwrap();
        assert_eq!(d.slots[0].dst, kahrisma_isa::abi::RA);
    }
}
