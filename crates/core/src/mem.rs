//! Sparse paged simulated memory.
//!
//! The paper's simulator loads the ELF file "into the simulated memory of
//! the processor" (§V). We model the full 32-bit address space sparsely with
//! 4 KiB pages so that the widely separated text, data, heap, and stack
//! regions cost only what they touch.

use std::collections::HashMap;

use crate::shared::SharedPort;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const OFFSET_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Byte-addressable, little-endian, sparse simulated memory.
///
/// Reads from untouched pages return zero (as freshly loaded `.bss` would);
/// writes allocate pages on demand.
///
/// # Example
///
/// ```
/// use kahrisma_core::Memory;
/// let mut m = Memory::new();
/// m.write_word(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_word(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_byte(0x1003), 0xDE);
/// assert_eq!(m.read_word(0xFFFF_0000), 0); // untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    /// When attached (fabric cores only), accesses inside the shared window
    /// are routed to the port instead of the private pages.
    shared: Option<Box<SharedPort>>,
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Attaches a fabric shared-memory port; accesses inside its window are
    /// routed through the port from now on.
    pub fn attach_shared(&mut self, port: SharedPort) {
        self.shared = Some(Box::new(port));
    }

    /// Detaches and returns the shared-memory port, if any.
    pub fn detach_shared(&mut self) -> Option<SharedPort> {
        self.shared.take().map(|p| *p)
    }

    /// The attached shared-memory port, if any.
    #[must_use]
    pub fn shared_port(&self) -> Option<&SharedPort> {
        self.shared.as_deref()
    }

    /// Mutable access to the attached shared-memory port, if any (the
    /// fabric uses this to commit and republish at barriers).
    pub fn shared_port_mut(&mut self) -> Option<&mut SharedPort> {
        self.shared.as_deref_mut()
    }

    /// Whether the full word at `addr` lies inside the attached shared
    /// window. Atomics use this to decide between immediate execution and
    /// barrier-deferred resolution: only fully-contained words have a
    /// fabric-wide atomicity guarantee (a straddling word splits byte-wise
    /// like any other access and is atomic only against this core).
    #[must_use]
    pub fn shared_covers_word(&self, addr: u32) -> bool {
        self.shared
            .as_deref()
            .is_some_and(|p| p.contains(addr) && p.contains(addr.wrapping_add(3)))
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_byte(&self, addr: u32) -> u8 {
        if let Some(port) = &self.shared {
            if port.contains(addr) {
                return port.read_byte(addr);
            }
        }
        self.page(addr).map_or(0, |p| p[(addr & OFFSET_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        if let Some(port) = &mut self.shared {
            if port.contains(addr) {
                port.write_byte(addr, value);
                return;
            }
        }
        self.page_mut(addr)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian 16-bit value (no alignment requirement).
    #[must_use]
    pub fn read_half(&self, addr: u32) -> u16 {
        u16::from(self.read_byte(addr)) | (u16::from(self.read_byte(addr.wrapping_add(1))) << 8)
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_half(&mut self, addr: u32, value: u16) {
        self.write_byte(addr, value as u8);
        self.write_byte(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// Reads a little-endian 32-bit value (no alignment requirement).
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        if let Some(port) = &self.shared {
            if port.overlaps(addr, 4) {
                // Byte path: read_half funnels through read_byte, which
                // routes each byte to the window or the private pages.
                return u32::from(self.read_half(addr))
                    | (u32::from(self.read_half(addr.wrapping_add(2))) << 16);
            }
        }
        // Fast path: the whole word lies within one page.
        let off = (addr & OFFSET_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                return u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes"));
            }
            return 0;
        }
        u32::from(self.read_half(addr)) | (u32::from(self.read_half(addr.wrapping_add(2))) << 16)
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        if let Some(port) = &self.shared {
            if port.overlaps(addr, 4) {
                self.write_half(addr, value as u16);
                self.write_half(addr.wrapping_add(2), (value >> 16) as u16);
                return;
            }
        }
        let off = (addr & OFFSET_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write_half(addr, value as u16);
        self.write_half(addr.wrapping_add(2), (value >> 16) as u16);
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_byte(addr.wrapping_add(i as u32))).collect()
    }

    /// Reads a NUL-terminated string (capped at `max` bytes).
    #[must_use]
    pub fn read_cstr(&self, addr: u32, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_byte(addr.wrapping_add(i as u32));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }

    /// Number of allocated pages (for tests and diagnostics).
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Size in bytes of one sparse page (the granularity of
    /// [`Memory::pages_sorted`] and [`Memory::install_page`]).
    pub const PAGE_SIZE: usize = PAGE_SIZE;

    /// Allocated pages as `(page_index, contents)` pairs, sorted by index.
    ///
    /// All-zero pages are skipped: through the read API a zeroed page is
    /// indistinguishable from an unallocated one, so serializing it would
    /// cost space without changing observable behavior. Used by the
    /// snapshot wire codec ([`crate::Snapshot::to_portable_bytes`]).
    #[must_use]
    pub fn pages_sorted(&self) -> Vec<(u32, &[u8])> {
        let mut out: Vec<(u32, &[u8])> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&index, p)| (index, &p[..]))
            .collect();
        out.sort_unstable_by_key(|&(index, _)| index);
        out
    }

    /// Installs one full page at `index`, replacing any current contents.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`Memory::PAGE_SIZE`] long.
    pub fn install_page(&mut self, index: u32, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE, "a page is exactly {PAGE_SIZE} bytes");
        let page = self.pages.entry(index).or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page.copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = Memory::new();
        assert_eq!(m.read_byte(123), 0);
        assert_eq!(m.read_word(0xFFFF_FFF0), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = Memory::new();
        m.write_word(0x2000, 0x0403_0201);
        assert_eq!(m.read_byte(0x2000), 1);
        assert_eq!(m.read_byte(0x2003), 4);
        assert_eq!(m.read_half(0x2000), 0x0201);
        assert_eq!(m.read_half(0x2002), 0x0403);
        assert_eq!(m.read_word(0x2000), 0x0403_0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x2FFE; // straddles the 0x2000/0x3000 page boundary
        m.write_word(addr, 0xAABB_CCDD);
        assert_eq!(m.read_word(addr), 0xAABB_CCDD);
        assert_eq!(m.page_count(), 2);
        m.write_half(0x3FFF, 0x1122);
        assert_eq!(m.read_half(0x3FFF), 0x1122);
    }

    #[test]
    fn bulk_and_cstr() {
        let mut m = Memory::new();
        m.write_bytes(0x100, b"hello\0world");
        assert_eq!(m.read_cstr(0x100, 64), b"hello");
        assert_eq!(m.read_bytes(0x106, 5), b"world");
        assert_eq!(m.read_cstr(0x106, 3), b"wor"); // capped
    }

    #[test]
    fn pages_roundtrip_through_the_page_api() {
        let mut m = Memory::new();
        m.write_word(0x5000, 0xAABB_CCDD);
        m.write_byte(0x1_2345, 7);
        m.write_word(0x9000, 0); // allocated but all-zero: not serialized
        let pages = m.pages_sorted();
        assert_eq!(pages.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0x5, 0x12]);
        let mut copy = Memory::new();
        for (index, bytes) in pages {
            copy.install_page(index, bytes);
        }
        assert_eq!(copy.read_word(0x5000), 0xAABB_CCDD);
        assert_eq!(copy.read_byte(0x1_2345), 7);
        assert_eq!(copy.read_word(0x9000), 0);
    }

    #[test]
    fn address_space_wraps() {
        let mut m = Memory::new();
        m.write_word(0xFFFF_FFFE, 0x1234_5678);
        assert_eq!(m.read_half(0xFFFF_FFFE), 0x5678);
        assert_eq!(m.read_half(0x0000_0000), 0x1234);
    }

    #[test]
    fn shared_window_routes_and_private_pages_survive() {
        use crate::shared::SharedMem;
        let shared = SharedMem::new(0x8000, 0x100);
        let mut m = Memory::new();
        m.write_word(0x8004, 0x1111_1111); // private, before attach
        m.attach_shared(shared.port());
        m.write_word(0x8004, 0xAABB_CCDD); // now routed to the window
        assert_eq!(m.read_word(0x8004), 0xAABB_CCDD);
        assert_eq!(m.shared_port().map(SharedPort::pending_writes), Some(4));
        m.write_word(0x4000, 7); // outside the window: private as before
        assert_eq!(m.read_word(0x4000), 7);
        // A word straddling the window edge splits byte-by-byte.
        m.write_word(0x7FFE, 0x4433_2211);
        assert_eq!(m.read_word(0x7FFE), 0x4433_2211);
        assert_eq!(m.read_byte(0x7FFF), 0x22); // private side
        assert_eq!(m.shared_port().map_or(0, |p| p.read_byte(0x8000)), 0x33);
        let port = m.detach_shared().expect("attached");
        assert!(port.pending_writes() > 0);
        assert_eq!(m.read_word(0x8004), 0x1111_1111, "private bytes unmasked");
    }
}
