//! Simulator errors.

use std::fmt;

/// Error produced while loading or running a program.
///
/// Where possible the error carries the debug context the paper's simulator
/// reports for error detection within applications (§V, goal 4): the
/// offending address, and — via [`crate::Simulator::describe_addr`] — the
/// assembly line and function name.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No operation of the active ISA matches the fetched word.
    IllegalInstruction {
        /// Address of the offending operation word.
        addr: u32,
        /// The fetched word.
        word: u32,
        /// Identifier of the active ISA.
        isa: u8,
        /// Debug context (`file:line (function)`), when available.
        context: Option<String>,
    },
    /// `switchtarget` named an ISA that does not exist.
    UnknownIsa {
        /// The requested identifier.
        isa: u8,
        /// Address of the `switchtarget` operation.
        addr: u32,
    },
    /// A `simop` immediate does not name an emulated library function.
    UnknownSimOp {
        /// The immediate value.
        code: u32,
        /// Address of the `simop` operation.
        addr: u32,
    },
    /// The executable's entry ISA is not part of the architecture.
    BadEntryIsa(u8),
    /// A program accessed an address outside the simulated address space.
    MemoryFault {
        /// The faulting address.
        addr: u32,
    },
    /// The program called `abort()`.
    Aborted,
    /// The attached cycle model does not support state duplication, so the
    /// simulator cannot be snapshot ([`crate::CycleModel::fork`] returned
    /// `None`).
    SnapshotUnsupported,
    /// Every live core of a fabric is stalled on a synchronization
    /// operation that can never resolve (e.g. all cores wait at a barrier
    /// that a halted core will never reach, or a `join` targets a core that
    /// never halts or parks).
    FabricDeadlock {
        /// Human-readable description of the stuck cores.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalInstruction { addr, word, isa, context } => {
                write!(f, "illegal instruction {word:#010x} at {addr:#010x} (isa {isa})")?;
                if let Some(c) = context {
                    write!(f, " at {c}")?;
                }
                Ok(())
            }
            SimError::UnknownIsa { isa, addr } => {
                write!(f, "switchtarget to unknown ISA {isa} at {addr:#010x}")
            }
            SimError::UnknownSimOp { code, addr } => {
                write!(f, "unknown simop code {code} at {addr:#010x}")
            }
            SimError::BadEntryIsa(isa) => write!(f, "executable entry ISA {isa} is unknown"),
            SimError::MemoryFault { addr } => write!(f, "memory fault at {addr:#010x}"),
            SimError::Aborted => write!(f, "program aborted"),
            SimError::SnapshotUnsupported => {
                write!(f, "the attached cycle model does not support snapshots")
            }
            SimError::FabricDeadlock { detail } => {
                write!(f, "fabric deadlock: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SimError::IllegalInstruction {
            addr: 0x1000,
            word: 0xFFFF_FFFF,
            isa: 0,
            context: Some("dct.s:12 (dct)".into()),
        };
        let s = e.to_string();
        assert!(s.contains("0x00001000"));
        assert!(s.contains("dct.s:12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
