//! Architectural processor state.

use kahrisma_isa::abi;
use kahrisma_isa::adl::{AtomicOp, IsaId};

use crate::mem::Memory;

/// A fabric operation that cannot resolve inside a scheduling quantum.
///
/// On a multi-core fabric, atomics to the shared window and the
/// synchronization `simop`s (`spawn`/`park`/`join`/`barrier`) only have a
/// well-defined global order at quantum barriers. Executing one records it
/// here and stalls the core; `kahrisma-fabric` resolves pending operations
/// at the next barrier in core-index order, which keeps results
/// bit-identical at any host-thread count. Standalone simulators
/// (`core_count == 1`) never populate this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricOp {
    /// A word atomic addressing the shared window: resolve against the
    /// committed image, write the old value to `rd`.
    Atomic {
        /// Destination register receiving the pre-update memory word.
        rd: u8,
        /// The read-modify-write operation.
        op: AtomicOp,
        /// Word address inside the shared window.
        addr: u32,
        /// Second operand (the stored value for swap, the addend for add).
        operand: u32,
    },
    /// Start parked core `core` at address `entry` with argument `arg`;
    /// stalls the spawning core until the target is parked.
    Spawn {
        /// Target core index.
        core: u32,
        /// Entry address the target resumes at.
        entry: u32,
        /// Argument delivered to the target (`spawn_arg()` / `a0`).
        arg: u32,
    },
    /// Idle until a `spawn` targets this core.
    Park,
    /// Wait until core `core` halts or parks.
    Join {
        /// Core index waited on.
        core: u32,
    },
    /// Wait until every running core reaches a barrier.
    Barrier,
}

/// The architectural state of a simulated KAHRISMA hardware thread.
///
/// Per the paper (§V-D) the state "contains the register file and memory"
/// and was extended "to also include the currently active ISA". It
/// additionally holds the machinery the C-library emulation needs: a bump
/// heap, a deterministic PRNG, and stdout/stdin byte buffers.
#[derive(Debug, Clone)]
pub struct CpuState {
    regs: [u32; 32],
    /// Instruction pointer.
    pub ip: u32,
    /// Identifier of the currently active ISA.
    pub active_isa: IsaId,
    /// Simulated memory.
    pub mem: Memory,
    /// Set by `halt`/`exit`; the simulator stops at the next boundary.
    pub halted: bool,
    /// Exit code captured when halting.
    pub exit_code: u32,
    /// Next free heap address for the bump allocator behind `malloc`.
    pub heap_ptr: u32,
    /// Deterministic PRNG state for `rand`.
    pub rng_state: u64,
    /// Bytes written by output library functions.
    pub stdout: Vec<u8>,
    /// Bytes consumed by `getchar`.
    pub stdin: Vec<u8>,
    /// Read cursor into [`CpuState::stdin`].
    pub stdin_pos: usize,
    /// Executed-instruction counter, exposed to programs via `clock()`.
    pub retired_instructions: u64,
    /// This core's index in a fabric (`0` standalone).
    pub core_id: u32,
    /// Number of fabric cores (`1` standalone). Values above 1 make shared
    /// atomics and synchronization `simop`s defer to the quantum barrier.
    pub core_count: u32,
    /// Argument word delivered by the most recent `spawn` targeting this
    /// core, read by programs via `spawn_arg()`.
    pub spawn_arg: u32,
    /// A fabric operation waiting for the next quantum barrier; while set,
    /// the simulation loop refuses to execute further instructions.
    pub pending_fabric: Option<FabricOp>,
    /// Low bound of the code range watched for self-modifying stores.
    /// Maintained by the simulator to cover every compiled-tier block.
    pub(crate) code_watch_lo: u32,
    /// Length of the watched range; `0` disables the watch entirely, so
    /// stores outside any compiled region cost a single compare.
    pub(crate) code_watch_span: u32,
    /// Lowest watched address written since the last flush
    /// (`u32::MAX` = clean).
    pub(crate) code_write_lo: u32,
    /// Highest watched address written since the last flush (inclusive).
    pub(crate) code_write_hi: u32,
}

impl CpuState {
    /// Creates a reset state: all registers zero, `sp` initialized to the
    /// given stack top, heap starting at `heap_base`.
    #[must_use]
    pub fn new(entry: u32, entry_isa: IsaId, heap_base: u32) -> Self {
        let mut s = CpuState {
            regs: [0; 32],
            ip: entry,
            active_isa: entry_isa,
            mem: Memory::new(),
            halted: false,
            exit_code: 0,
            heap_ptr: heap_base,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            stdout: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
            retired_instructions: 0,
            core_id: 0,
            core_count: 1,
            spawn_arg: 0,
            pending_fabric: None,
            code_watch_lo: 0,
            code_watch_span: 0,
            code_write_lo: u32::MAX,
            code_write_hi: 0,
        };
        s.write_reg(abi::SP, abi::STACK_TOP);
        s
    }

    /// Reads a register; `r0` always reads zero.
    #[must_use]
    #[inline]
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[usize::from(r & 31)]
    }

    /// Writes a register; writes to `r0` are discarded.
    #[inline]
    pub fn write_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[usize::from(r & 31)] = value;
        }
    }

    /// The program's stdout as UTF-8 (lossy).
    #[must_use]
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Provides bytes for `getchar` to consume.
    pub fn set_stdin(&mut self, bytes: impl Into<Vec<u8>>) {
        self.stdin = bytes.into();
        self.stdin_pos = 0;
    }

    /// Records a store that may overlap compiled-tier code. One compare
    /// when no compiled blocks exist (`code_watch_span == 0`).
    #[inline]
    pub(crate) fn note_code_write(&mut self, addr: u32) {
        if addr.wrapping_sub(self.code_watch_lo) < self.code_watch_span {
            self.code_write_lo = self.code_write_lo.min(addr);
            self.code_write_hi = self.code_write_hi.max(addr);
        }
    }

    /// Whether any watched address was written since the last flush.
    #[inline]
    #[must_use]
    pub(crate) fn code_write_pending(&self) -> bool {
        self.code_write_lo != u32::MAX
    }

    /// Takes the dirty range (inclusive bounds) and resets the watch.
    pub(crate) fn take_code_writes(&mut self) -> (u32, u32) {
        let range = (self.code_write_lo, self.code_write_hi);
        self.code_write_lo = u32::MAX;
        self.code_write_hi = 0;
        range
    }

    /// Whether a fabric operation is waiting for the next quantum barrier
    /// (the core must not execute further instructions until the fabric
    /// resolves it).
    #[inline]
    #[must_use]
    pub fn fabric_stalled(&self) -> bool {
        self.pending_fabric.is_some()
    }

    /// Advances the deterministic PRNG (xorshift64*) and returns a 31-bit
    /// non-negative value, like C's `rand`.
    pub fn next_rand(&mut self) -> u32 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D)) >> 33) as u32 & 0x7FFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_isa::isa_id;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut s = CpuState::new(0x1000, isa_id::RISC, 0x9000);
        s.write_reg(0, 99);
        assert_eq!(s.reg(0), 0);
        s.write_reg(5, 7);
        assert_eq!(s.reg(5), 7);
    }

    #[test]
    fn initial_state_matches_abi() {
        let s = CpuState::new(0x1234, isa_id::VLIW4, 0x9000);
        assert_eq!(s.ip, 0x1234);
        assert_eq!(s.active_isa, isa_id::VLIW4);
        assert_eq!(s.reg(abi::SP), abi::STACK_TOP);
        assert_eq!(s.heap_ptr, 0x9000);
        assert!(!s.halted);
    }

    #[test]
    fn rand_is_deterministic_and_nonnegative() {
        let mut a = CpuState::new(0, isa_id::RISC, 0);
        let mut b = CpuState::new(0, isa_id::RISC, 0);
        for _ in 0..100 {
            let va = a.next_rand();
            assert_eq!(va, b.next_rand());
            assert!(va <= 0x7FFF_FFFF);
        }
    }

    #[test]
    fn stdin_cursor() {
        let mut s = CpuState::new(0, isa_id::RISC, 0);
        s.set_stdin(*b"ab");
        assert_eq!(s.stdin[s.stdin_pos], b'a');
    }
}
