//! The simulator driver: load, simulation loop, decode cache, debugging.

use std::collections::VecDeque;

use kahrisma_elf::{DebugInfo, Executable};
use kahrisma_isa::adl::{IsaId, TableSet};
use kahrisma_isa::tables;

use crate::cycles::{
    BranchPredictor, BranchPredictorConfig, CycleModel, CycleModelKind, CycleStats, InstrEvent,
    MemoryHierarchy, OpEvent, PredictorKind,
};
use crate::decode::{DecodeCache, DecodedSlot, ExecKind, MAX_RUN_LEN, NO_IDX, detect_and_decode_into};
use crate::error::SimError;
use crate::exec::{Pending, execute_instr, execute_instr_fast};
use crate::observe::{Observer, OpIssue, SimEvent};
use crate::profile::{FunctionProfile, Profiler};
use crate::shared::SharedPort;
use crate::state::CpuState;
use crate::stats::SimStats;
use crate::trace::TraceSink;

/// Simulator configuration.
///
/// The three performance features of the paper's §V-A / §VII-A — decode
/// cache, instruction prediction, and the optional cycle models — can be
/// toggled independently, which is exactly what the Table I measurement
/// methodology requires.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cache detected & decoded instructions by address (§V-A). Off, every
    /// instruction is detected and decoded again (the paper's 0.177 MIPS
    /// configuration).
    pub decode_cache: bool,
    /// Predict the next decode structure from the previous instruction
    /// (§V-A); requires the decode cache.
    pub prediction: bool,
    /// Batch straight-line runs of cached instructions into superblocks and
    /// execute them back-to-back, skipping the per-instruction cache lookup
    /// and prediction check; requires the decode cache. Off, the per-entry
    /// cache path of the paper's Table I ablation is used (the
    /// `--baseline-cache` configuration of the bench binaries).
    pub superblocks: bool,
    /// Optional cycle-approximation model (§VI).
    pub cycle_model: Option<CycleModelKind>,
    /// Memory hierarchy used by the AIE/DOE models (§VI-D); defaults to the
    /// paper's three-level configuration.
    pub memory: MemoryHierarchy,
    /// Number of instruction addresses kept in the IP history ring for
    /// error reports (§V, goal 4).
    pub ip_history: usize,
    /// Override the initial ISA (paper §V-D: "the initial ISA can optionally
    /// be specified per command line parameter"); defaults to the
    /// executable's entry ISA.
    pub initial_isa: Option<IsaId>,
    /// Branch-prediction model (§VIII future work). Defaults to perfect
    /// prediction, the paper's Table II setting.
    pub branch_prediction: BranchPredictorConfig,
    /// Attribute instructions/operations/cycles to functions (paper §V,
    /// goal 2: profiling for function-granularity ISA selection).
    pub profile: bool,
    /// Execution tier for hot superblocks (default [`TierMode::Ir`]): with
    /// the IR tier enabled, superblocks dispatched at least
    /// [`SimConfig::tier_threshold`] times are lowered to a compiled
    /// micro-op body executed by a threaded-dispatch loop. Results are
    /// bit-identical across tiers; the tier engages only on the fast path
    /// (no cycle model, trace sink, profiler, branch-predictor model, or
    /// observer).
    pub tier: TierMode,
    /// Superblock dispatch count that triggers promotion to the compiled
    /// tier. Low by default: lowering is cheap (no codegen), so early
    /// promotion maximizes compiled coverage.
    pub tier_threshold: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            decode_cache: true,
            prediction: true,
            superblocks: true,
            cycle_model: None,
            memory: MemoryHierarchy::paper_default(),
            ip_history: 64,
            initial_isa: None,
            branch_prediction: BranchPredictorConfig::perfect(),
            profile: false,
            tier: TierMode::Ir,
            tier_threshold: 16,
        }
    }
}

/// Which execution tier hot superblocks may reach (see [`SimConfig::tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TierMode {
    /// Superblocks are always interpreted (the pre-tier hot loop).
    Interp,
    /// Hot superblocks are promoted to the IR-threaded compiled tier.
    #[default]
    Ir,
}

impl SimConfig {
    /// Configuration with the given cycle model and the paper's memory
    /// hierarchy.
    #[must_use]
    pub fn with_model(kind: CycleModelKind) -> Self {
        SimConfig { cycle_model: Some(kind), ..SimConfig::default() }
    }
}

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt`/`exit`.
    Halted {
        /// The program's exit code.
        exit_code: u32,
    },
    /// The instruction budget was exhausted before the program halted.
    BudgetExhausted,
}

/// The cycle-approximate, mixed-ISA instruction-set simulator.
///
/// See the crate documentation for the paper mapping, and
/// [`Simulator::run`] for the main entry point.
pub struct Simulator {
    tables: TableSet,
    state: CpuState,
    cache: DecodeCache,
    config: SimConfig,
    stats: SimStats,
    model: Option<Box<dyn CycleModel>>,
    debug: DebugInfo,
    trace: Option<Box<dyn TraceSink>>,
    ip_history: VecDeque<u32>,
    /// Decode-cache index of the previously executed instruction (the
    /// prediction anchor), or `NO_IDX`.
    prev_idx: u32,
    events: Vec<OpEvent>,
    pending: Pending,
    /// Slot arena for the uncached decode path (cleared per step).
    scratch: Vec<DecodedSlot>,
    predictor: Option<BranchPredictor>,
    profiler: Option<Profiler>,
    /// Structured event-stream consumer (`None` keeps every hot path on
    /// its unobserved, allocation-free route).
    observer: Option<Box<dyn Observer>>,
    /// Per-instruction issue records from the cycle model while an
    /// observer is attached (reused across instructions).
    issue_scratch: Vec<OpIssue>,
    /// The architectural state as loaded, for [`Simulator::reset`].
    initial_state: Box<CpuState>,
}

/// A point-in-time capture of everything that determines a simulation's
/// future: architectural state (registers, memory, active ISA), functional
/// statistics, cycle-model state, branch-predictor state, profiler
/// accumulators, and the IP history.
///
/// Taken with [`Simulator::snapshot`] between [`Simulator::run_for`] slices
/// (including mid-superblock pauses) and reapplied with
/// [`Simulator::restore`] — to the same simulator or to a fresh one loaded
/// from the **same executable**. The decode cache is deliberately not
/// captured: it is a pure function of (immutable) program text and rebuilds
/// on demand, so restores stay cheap and snapshots stay compact.
pub struct Snapshot {
    pub(crate) state: CpuState,
    pub(crate) stats: SimStats,
    pub(crate) model: Option<Box<dyn CycleModel>>,
    pub(crate) predictor: Option<BranchPredictor>,
    pub(crate) profiler: Option<Profiler>,
    pub(crate) ip_history: VecDeque<u32>,
}

impl Snapshot {
    /// Instructions executed at the time of the capture.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Instruction pointer at the time of the capture.
    #[must_use]
    pub fn ip(&self) -> u32 {
        self.state.ip
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("ip", &self.state.ip)
            .field("instructions", &self.stats.instructions)
            .field("halted", &self.state.halted)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("ip", &self.state.ip)
            .field("active_isa", &self.state.active_isa)
            .field("halted", &self.state.halted)
            .field("instructions", &self.stats.instructions)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator and loads `exe` into simulated memory: every
    /// segment is copied in, the IP is initialized from the entry point and
    /// the active ISA from the entry ISA (paper §V, §V-D).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadEntryIsa`] if the executable's entry ISA (or
    /// the [`SimConfig::initial_isa`] override) is not part of the
    /// architecture.
    pub fn new(exe: &Executable, config: SimConfig) -> Result<Self, SimError> {
        let tables = tables();
        let isa = config.initial_isa.unwrap_or(IsaId::new(exe.entry_isa));
        if tables.table(isa).is_none() {
            return Err(SimError::BadEntryIsa(isa.value()));
        }
        // The heap starts past the highest loaded segment, page aligned.
        let heap_base = exe
            .segments
            .iter()
            .map(|s| s.addr + s.mem_size.max(s.data.len() as u32))
            .max()
            .unwrap_or(0x0010_0000)
            .div_ceil(4096)
            * 4096;
        let mut state = CpuState::new(exe.entry, isa, heap_base);
        for seg in &exe.segments {
            state.mem.write_bytes(seg.addr, &seg.data);
        }
        let model = config.cycle_model.map(|kind| kind.build(config.memory.clone()));
        // A perfect predictor never mispredicts; skip it entirely so the
        // default hot loop stays prediction-free.
        let predictor = match config.branch_prediction.kind {
            PredictorKind::Perfect => None,
            _ => Some(BranchPredictor::new(config.branch_prediction)),
        };
        let profiler = config.profile.then(|| Profiler::new(&exe.debug));
        let initial_state = Box::new(state.clone());
        Ok(Simulator {
            tables,
            state,
            cache: DecodeCache::new(),
            config,
            stats: SimStats::new(),
            model,
            debug: exe.debug.clone(),
            trace: None,
            ip_history: VecDeque::new(),
            prev_idx: NO_IDX,
            events: Vec::with_capacity(8),
            pending: Pending::default(),
            scratch: Vec::with_capacity(8),
            predictor,
            profiler,
            observer: None,
            issue_scratch: Vec::with_capacity(8),
            initial_state,
        })
    }

    /// Captures the complete execution state into a [`Snapshot`].
    ///
    /// Valid at any point where [`Simulator::run_for`] has returned —
    /// including budget-exhaustion pauses in the middle of a superblock —
    /// and cheap enough to call periodically for checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotUnsupported`] if an attached cycle model
    /// does not implement [`CycleModel::fork`].
    pub fn snapshot(&mut self) -> Result<Snapshot, SimError> {
        let model = match &self.model {
            Some(m) => Some(m.fork().ok_or(SimError::SnapshotUnsupported)?),
            None => None,
        };
        if let Some(o) = &mut self.observer {
            o.event(SimEvent::SnapshotTaken { instructions: self.stats.instructions });
        }
        Ok(Snapshot {
            state: self.state.clone(),
            stats: self.stats,
            model,
            predictor: self.predictor.clone(),
            profiler: self.profiler.clone(),
            ip_history: self.ip_history.clone(),
        })
    }

    /// Reapplies a [`Snapshot`], making the next [`Simulator::run_for`]
    /// continue exactly from the captured point.
    ///
    /// The snapshot must originate from a simulator loaded from the same
    /// executable (the decode cache is keyed by address and ISA, and program
    /// text is immutable, so a same-executable restore can keep all cached
    /// decode structures). The prediction anchor is conservatively cleared,
    /// which affects only the cache-lookup/prediction counters — never
    /// results or cycle statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotUnsupported`] if the snapshot's cycle
    /// model cannot be duplicated (never the case for snapshots produced by
    /// [`Simulator::snapshot`], which requires a forkable model).
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SimError> {
        let model = match &snapshot.model {
            Some(m) => Some(m.fork().ok_or(SimError::SnapshotUnsupported)?),
            None => None,
        };
        self.state = snapshot.state.clone();
        self.stats = snapshot.stats;
        self.model = model;
        self.predictor = snapshot.predictor.clone();
        self.profiler = snapshot.profiler.clone();
        self.ip_history = snapshot.ip_history.clone();
        self.prev_idx = NO_IDX;
        self.events.clear();
        self.pending = Pending::default();
        // The snapshot's state carries the *capturing* simulator's store
        // watch; re-point it at this simulator's compiled blocks. The
        // dirty range is cleared rather than flushed: compiled blocks
        // lower from decode-cache entries, which (by the cache's existing
        // contract) never observe stores to text.
        self.state.code_write_lo = u32::MAX;
        self.state.code_write_hi = 0;
        self.sync_code_watch();
        if let Some(o) = &mut self.observer {
            o.event(SimEvent::Restored { instructions: self.stats.instructions });
        }
        Ok(())
    }

    /// Re-initializes the simulator to its load-time state — registers,
    /// memory, statistics, cycle model, predictor, and profiler are all
    /// reset — **without** discarding the decode cache, whose contents are
    /// a pure function of the immutable program text. Re-running the same
    /// binary (repeated benchmark measurements, multi-run tests) therefore
    /// skips the rebuild and starts with warm decode structures.
    ///
    /// The cycle model is rebuilt from [`SimConfig::cycle_model`]; a model
    /// attached via [`Simulator::set_cycle_model`] is dropped. Stdin
    /// provided after construction is also discarded.
    ///
    /// An attached [`Observer`] stays attached across the reset and sees a
    /// single [`SimEvent::Reset`] marker (carrying the discarded
    /// instruction count), then a cleanly restarted stream: the next
    /// [`SimEvent::Instr`] has `seq == 0`, and no `Instr`/`OpIssue` record
    /// produced before the reset is delivered after it — the pending
    /// per-instruction scratch buffers are flushed along with the
    /// architectural state.
    pub fn reset(&mut self) {
        if let Some(o) = &mut self.observer {
            o.event(SimEvent::Reset { instructions: self.stats.instructions });
        }
        self.state = (*self.initial_state).clone();
        self.stats = SimStats::new();
        self.model = self.config.cycle_model.map(|kind| kind.build(self.config.memory.clone()));
        self.predictor = match self.config.branch_prediction.kind {
            PredictorKind::Perfect => None,
            _ => Some(BranchPredictor::new(self.config.branch_prediction)),
        };
        self.profiler = self.config.profile.then(|| Profiler::new(&self.debug));
        self.ip_history.clear();
        self.prev_idx = NO_IDX;
        self.events.clear();
        self.pending = Pending::default();
        self.scratch.clear();
        self.issue_scratch.clear();
        // Compiled blocks survive the reset alongside the decode cache;
        // re-arm the store watch on the fresh architectural state.
        self.sync_code_watch();
    }

    /// Attaches a fabric shared-memory port (see [`crate::SharedMem`]):
    /// loads and stores inside the port's window are routed through it
    /// instead of the core-private memory. The attachment survives
    /// [`Simulator::reset`] (the load-time state is patched as well, with an
    /// empty write overlay), so the fabric can restart a halted core without
    /// losing its window.
    pub fn attach_shared_port(&mut self, port: SharedPort) {
        self.initial_state.mem.attach_shared(port.clone());
        self.state.mem.attach_shared(port);
    }

    /// Declares this core's position on a multi-core fabric. With
    /// `core_count > 1`, shared-window atomics and the synchronization
    /// `simop`s (`spawn`/`park`/`join`/`barrier`) stall the core with a
    /// [`crate::FabricOp`] instead of resolving locally; the fabric resolves
    /// them at quantum barriers. Survives [`Simulator::reset`].
    pub fn set_fabric_identity(&mut self, core_id: u32, core_count: u32) {
        self.initial_state.core_id = core_id;
        self.initial_state.core_count = core_count;
        self.state.core_id = core_id;
        self.state.core_count = core_count;
    }

    /// The attached shared-memory port, if any.
    #[must_use]
    pub fn shared_port(&self) -> Option<&SharedPort> {
        self.state.mem.shared_port()
    }

    /// Mutable access to the attached shared-memory port (the fabric
    /// commits and republishes through this at quantum barriers).
    pub fn shared_port_mut(&mut self) -> Option<&mut SharedPort> {
        self.state.mem.shared_port_mut()
    }

    /// Attaches a trace sink; every subsequently executed operation is
    /// recorded (paper §V: trace-file generation).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Attaches a custom cycle model, replacing any configured one. This is
    /// how external timing models (e.g. the cycle-accurate reference in
    /// `kahrisma-rtl`) observe the executed instruction stream.
    pub fn set_cycle_model(&mut self, model: Box<dyn CycleModel>) {
        self.model = Some(model);
    }

    /// Detaches and returns the attached cycle model.
    pub fn take_cycle_model(&mut self) -> Option<Box<dyn CycleModel>> {
        self.model.take()
    }

    /// Detaches and returns the trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Attaches a structured-event observer (see [`crate::observe`]); every
    /// subsequent simulator event — decode-cache activity, superblock
    /// construction and batching, executed instructions, ISA switches,
    /// `simop`s, per-operation cycle-model issues — is delivered to it in
    /// execution order. While an observer is attached the superblock fast
    /// path is bypassed so no event is skipped; with no observer the hot
    /// loop is unchanged.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the observer.
    pub fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        self.observer.take()
    }

    /// The architectural state (registers, memory, stdout, …).
    #[must_use]
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// `true` once the program executed `halt`/`exit`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.state.halted
    }

    /// The configuration the simulator was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable architectural state (e.g. to provide stdin).
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// Functional statistics collected so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Results of the configured cycle model, if any.
    #[must_use]
    pub fn cycle_stats(&self) -> Option<CycleStats> {
        self.model.as_ref().map(|m| m.stats())
    }

    /// `(predictions, mispredictions)` of the configured branch predictor,
    /// or `None` under perfect prediction.
    #[must_use]
    pub fn branch_stats(&self) -> Option<(u64, u64)> {
        self.predictor.as_ref().map(BranchPredictor::stats)
    }

    /// Per-function profile (hottest first), when [`SimConfig::profile`] is
    /// enabled — the paper's function-granularity analysis (§V goal 2).
    #[must_use]
    pub fn function_profile(&self) -> Option<Vec<FunctionProfile>> {
        self.profiler.as_ref().map(Profiler::report)
    }

    /// Executed non-`nop` operations per opcode mnemonic, most-executed
    /// first, when [`SimConfig::profile`] is enabled.
    #[must_use]
    pub fn opcode_histogram(&self) -> Option<Vec<(&'static str, u64)>> {
        self.profiler.as_ref().map(Profiler::opcode_histogram)
    }

    /// The decode cache (size inspection for tests/benchmarks).
    #[must_use]
    pub fn decode_cache(&self) -> &DecodeCache {
        &self.cache
    }

    /// The most recently executed instruction addresses, newest last
    /// (paper §V goal 4: "an instruction pointer history").
    pub fn ip_history(&self) -> impl Iterator<Item = u32> + '_ {
        self.ip_history.iter().copied()
    }

    /// Maps an address to `file:line (function)` using the executable's
    /// debug sections (paper §V-C).
    #[must_use]
    pub fn describe_addr(&self, addr: u32) -> String {
        let func = self.debug.func_for_addr(addr).map(|f| f.name.as_str());
        // The line map records instruction start addresses; an address that
        // no function covers (e.g. a jump into data) has no meaningful
        // "closest preceding line", so report only the raw address then.
        let line = if func.is_some() { self.debug.line_for_addr(addr) } else { None };
        match (line, func) {
            (Some((file, line)), Some(func)) => format!("{file}:{line} ({func})"),
            (Some((file, line)), None) => format!("{file}:{line}"),
            (None, Some(func)) => format!("{addr:#010x} ({func})"),
            (None, None) => format!("{addr:#010x}"),
        }
    }

    /// Executes one instruction through the per-entry cache path (the
    /// paper's §V-A structure; the superblock batching of [`Simulator::run`]
    /// is bypassed for single stepping).
    ///
    /// # Errors
    ///
    /// Propagates illegal instructions, unknown ISA switches, unknown
    /// `simop` codes, and `abort()`. Illegal-instruction errors are
    /// enriched with source context when debug info is available.
    pub fn step(&mut self) -> Result<(), SimError> {
        let ip = self.state.ip;
        let isa = self.state.active_isa;
        self.push_ip_history(ip);

        if self.config.decode_cache {
            let idx = self.resolve(ip, isa)?;
            // A re-decode may have demoted compiled blocks left over from
            // earlier superblock execution; account it even on this path.
            if self.cache.has_pending_ir_invalidations() {
                self.note_ir_invalidations();
            }
            let before_isa = self.state.active_isa;
            self.exec_cached(idx)?;
            // A switchtarget invalidates the prediction anchor: the next
            // instruction is decoded under a different table (§V-D).
            self.prev_idx = if self.state.active_isa != before_isa { NO_IDX } else { idx };
            Ok(())
        } else {
            // No decode cache: detect and decode every instruction
            // (the paper's 0.177 MIPS baseline). The scratch arena is
            // reused across steps so even this path allocates nothing
            // steady-state.
            self.stats.detect_decodes += 1;
            self.scratch.clear();
            let instr = detect_and_decode_into(
                &self.tables,
                &self.state.mem,
                ip,
                isa,
                &mut self.scratch,
            );
            let instr = match instr {
                Ok(i) => i,
                Err(e) => return Err(self.enrich_decode_error(e)),
            };
            let ops_before = self.stats.operations;
            let cycles_before = self.model.as_ref().map_or(0, |m| m.cycles());
            execute_instr(
                &mut self.state,
                &instr,
                &self.scratch,
                &mut self.events,
                &mut self.pending,
                &mut self.predictor,
                &mut self.trace,
                &mut self.stats,
            )?;
            self.feed_observers(instr.addr, isa, ops_before, cycles_before, NO_IDX);
            Ok(())
        }
    }

    /// Resolves `(ip, isa)` to a decode-cache index: prediction first
    /// (paper §V-A), then hash lookup, then detect & decode + insert.
    fn resolve(&mut self, ip: u32, isa: IsaId) -> Result<u32, SimError> {
        if self.config.prediction && self.prev_idx != NO_IDX {
            // Compare the current IP against the predicted IP of the
            // previous instruction. Predictions are only stored for the
            // same ISA transition (`switchtarget` resets the anchor), so
            // no ISA check is needed.
            if let Some(i) = self.cache.predict(self.prev_idx, ip) {
                self.stats.prediction_hits += 1;
                debug_assert_eq!(self.cache.get(i).isa, isa);
                if let Some(o) = &mut self.observer {
                    o.event(SimEvent::PredictionHit { addr: ip });
                }
                return Ok(i);
            }
        }
        self.stats.cache_lookups += 1;
        let idx = match self.cache.lookup(ip, isa) {
            Some(i) => {
                self.stats.cache_hits += 1;
                if let Some(o) = &mut self.observer {
                    o.event(SimEvent::CacheHit { addr: ip });
                }
                i
            }
            None => {
                self.stats.detect_decodes += 1;
                if let Some(o) = &mut self.observer {
                    o.event(SimEvent::CacheMiss { addr: ip });
                }
                match self.cache.decode_insert(&self.tables, &self.state.mem, ip, isa) {
                    Ok(i) => i,
                    Err(e) => return Err(self.enrich_decode_error(e)),
                }
            }
        };
        if self.config.prediction && self.prev_idx != NO_IDX {
            self.cache.set_prediction(self.prev_idx, ip, idx);
        }
        Ok(idx)
    }

    /// Executes cached instruction `idx` through the full-featured path.
    ///
    /// Disjoint field borrows keep the hot loop free of clones: the decode
    /// structure stays in the cache arena while execution mutates
    /// state/stats/events.
    fn exec_cached(&mut self, idx: u32) -> Result<(), SimError> {
        let ops_before = self.stats.operations;
        let cycles_before = self.model.as_ref().map_or(0, |m| m.cycles());
        let (instr, slots) = self.cache.instr_and_slots(idx);
        execute_instr(
            &mut self.state,
            instr,
            slots,
            &mut self.events,
            &mut self.pending,
            &mut self.predictor,
            &mut self.trace,
            &mut self.stats,
        )?;
        let addr = instr.addr;
        let isa = instr.isa;
        self.feed_observers(addr, isa, ops_before, cycles_before, idx);
        Ok(())
    }

    /// Feeds the cycle model, profiler, and observer after one executed
    /// instruction. `idx` is the decode-cache index of the instruction, or
    /// `NO_IDX` when its slots live in the uncached scratch arena.
    fn feed_observers(
        &mut self,
        addr: u32,
        isa: IsaId,
        ops_before: u64,
        cycles_before: u64,
        idx: u32,
    ) {
        let observed = self.observer.is_some();
        if let Some(model) = &mut self.model {
            let event = InstrEvent { addr, ops: &self.events };
            if observed {
                self.issue_scratch.clear();
                model.instruction_observed(&event, &mut self.issue_scratch);
            } else {
                model.instruction(&event);
            }
        }
        if let Some(p) = &mut self.profiler {
            let cycles_after = self.model.as_ref().map_or(0, |m| m.cycles());
            p.record(
                addr,
                self.stats.operations - ops_before,
                cycles_after.saturating_sub(cycles_before),
            );
            let slots: &[DecodedSlot] =
                if idx == NO_IDX { &self.scratch } else { self.cache.instr_and_slots(idx).1 };
            p.note_ops(slots);
        }
        if observed {
            let cycles_after = self.model.as_ref().map_or(0, |m| m.cycles());
            self.emit_exec_events(addr, isa, cycles_after, idx);
        }
    }

    /// Emits the per-instruction observer events (`Instr`, `IsaSwitch`,
    /// `SimOp`, and the cycle model's `OpIssue` records) for the
    /// instruction just executed.
    fn emit_exec_events(&mut self, addr: u32, isa: IsaId, cycle: u64, idx: u32) {
        let Some(obs) = self.observer.as_deref_mut() else { return };
        let slots: &[DecodedSlot] =
            if idx == NO_IDX { &self.scratch } else { self.cache.instr_and_slots(idx).1 };
        let ops = slots.iter().filter(|s| !s.is_nop).count();
        obs.event(SimEvent::Instr {
            seq: self.stats.instructions.saturating_sub(1),
            addr,
            isa: isa.value(),
            width: slots.len() as u8,
            ops: ops as u8,
            cycle,
        });
        // The cycle model appends one issue record per non-`nop` operation
        // in slot order, so zipping against the non-`nop` slots recovers
        // each record's opcode and operation-word address. Models without
        // per-operation tracking leave the scratch empty.
        let mut issues = self.issue_scratch.iter();
        for (slot_idx, slot) in slots.iter().enumerate() {
            if slot.is_nop {
                continue;
            }
            let op_addr = addr.wrapping_add((slot_idx as u32) * 4);
            match slot.exec {
                ExecKind::SwitchTarget => obs.event(SimEvent::IsaSwitch {
                    addr: op_addr,
                    from: isa.value(),
                    to: slot.imm as u8,
                }),
                ExecKind::SimOp => {
                    obs.event(SimEvent::SimOp { addr: op_addr, code: slot.imm });
                }
                _ => {}
            }
            if let Some(rec) = issues.next() {
                obs.event(SimEvent::OpIssue {
                    addr: op_addr,
                    slot: rec.slot,
                    name: slot.name,
                    issue: rec.issue,
                    completion: rec.completion,
                    stall: rec.stall,
                });
            }
        }
    }

    #[inline]
    fn push_ip_history(&mut self, ip: u32) {
        if self.config.ip_history > 0 {
            if self.ip_history.len() == self.config.ip_history {
                self.ip_history.pop_front();
            }
            self.ip_history.push_back(ip);
        }
    }

    fn enrich_decode_error(&self, e: SimError) -> SimError {
        match e {
            SimError::IllegalInstruction { addr, word, isa, .. } => SimError::IllegalInstruction {
                addr,
                word,
                isa,
                context: Some(self.describe_addr(addr)),
            },
            other => other,
        }
    }

    /// Lazily builds the superblock headed by `head`: the straight-line run
    /// of successor instructions up to (and including) the next control
    /// transfer, `switchtarget`, `simop`, or `halt`, capped at
    /// [`MAX_RUN_LEN`]. Lookahead decode failures end the run early — the
    /// error (if real) surfaces when execution actually reaches that
    /// address, exactly as on the per-entry path.
    fn build_run(&mut self, head: u32) -> u32 {
        let mut members = Vec::with_capacity(8);
        members.push(head);
        let mut idx = head;
        loop {
            let instr = self.cache.get(idx);
            if instr.ends_run || members.len() >= MAX_RUN_LEN {
                break;
            }
            let next_addr = instr.addr.wrapping_add(instr.size());
            let isa = instr.isa;
            let next = match self.cache.lookup(next_addr, isa) {
                Some(i) => i,
                None => {
                    match self.cache.decode_insert(&self.tables, &self.state.mem, next_addr, isa)
                    {
                        Ok(i) => {
                            self.stats.detect_decodes += 1;
                            i
                        }
                        Err(_) => break,
                    }
                }
            };
            members.push(next);
            idx = next;
        }
        self.stats.superblocks_built += 1;
        if let Some(o) = &mut self.observer {
            o.event(SimEvent::SuperblockBuild {
                head: self.cache.get(head).addr,
                len: members.len() as u32,
            });
        }
        self.cache.install_run(head, &members)
    }

    /// Executes one superblock: resolves the head through the cache (with
    /// prediction), then runs the whole straight-line batch back-to-back
    /// without re-entering lookup or prediction per instruction — on the
    /// compiled tier when the block is hot and fully fits the budget,
    /// otherwise through the interpreter. Stops at the budget `limit`, on
    /// halt, and propagates errors.
    fn step_superblock(&mut self, limit: u64) -> Result<(), SimError> {
        if self.state.code_write_pending() {
            self.flush_code_writes();
        }
        let ip = self.state.ip;
        let isa = self.state.active_isa;
        let head = self.resolve(ip, isa)?;
        let mut sb = self.cache.run_of(head);
        if sb == NO_IDX {
            sb = self.build_run(head);
        }
        // resolve/build_run may have re-decoded an address covered by a
        // compiled block (mixed-ISA re-execution); account the demotions.
        if self.cache.has_pending_ir_invalidations() {
            self.note_ir_invalidations();
        }
        self.stats.superblock_batches += 1;
        if let Some(o) = &mut self.observer {
            o.event(SimEvent::SuperblockBatch {
                head: ip,
                len: self.cache.run_members(sb).len() as u32,
            });
        }
        // Tier management runs whenever the tier could ever execute (an
        // attached model/trace/profiler/predictor needs per-instruction
        // hooks the compiled body skips, so those disable the tier
        // outright); heat, promotion, and tier events stay active with an
        // observer attached even though execution then takes the
        // interpreter so the observer's instruction stream stays complete.
        let tier_eligible = self.config.tier == TierMode::Ir
            && self.model.is_none()
            && self.trace.is_none()
            && self.profiler.is_none()
            && self.predictor.is_none();
        if tier_eligible {
            if self.cache.ir_state(sb) == NO_IDX
                && self.cache.heat_bump(sb) >= self.config.tier_threshold
            {
                self.promote_run(sb);
            }
            if self.observer.is_none() {
                if let Some(block) = self.cache.ir_block(sb) {
                    // The compiled loop runs the whole block; partial
                    // (budget-sliced) executions stay on the interpreter
                    // so pause points land between instructions exactly
                    // as before.
                    let total = block.body_instrs + 1;
                    if self.stats.instructions.saturating_add(total) <= limit {
                        return self.execute_ir(sb, limit);
                    }
                }
            }
        }
        // The allocation-free direct path is valid only when nothing
        // observes intermediate execution.
        let fast = self.model.is_none()
            && self.trace.is_none()
            && self.profiler.is_none()
            && self.predictor.is_none()
            && self.observer.is_none();
        let n = self.cache.run_members(sb).len();
        let mut last = head;
        for i in 0..n {
            if i > 0 && self.stats.instructions >= limit {
                break;
            }
            let idx = self.cache.run_members(sb)[i];
            let addr = self.cache.get(idx).addr;
            self.push_ip_history(addr);
            let (instr, slots) = self.cache.instr_and_slots(idx);
            if fast && instr.width == 1 {
                execute_instr_fast(&mut self.state, instr, slots, &mut self.stats)?;
            } else {
                let ops_before = self.stats.operations;
                let cycles_before = self.model.as_ref().map_or(0, |m| m.cycles());
                execute_instr(
                    &mut self.state,
                    instr,
                    slots,
                    &mut self.events,
                    &mut self.pending,
                    &mut self.predictor,
                    &mut self.trace,
                    &mut self.stats,
                )?;
                let addr = instr.addr;
                let instr_isa = instr.isa;
                self.feed_observers(addr, instr_isa, ops_before, cycles_before, idx);
            }
            last = idx;
            if self.state.halted || self.state.fabric_stalled() {
                break;
            }
        }
        // A switchtarget (always the last run member) invalidates the
        // prediction anchor, exactly as on the per-entry path (§V-D).
        self.prev_idx = if self.state.active_isa != isa { NO_IDX } else { last };
        Ok(())
    }

    /// Executes superblock `sb` on the compiled tier: one threaded-dispatch
    /// pass over the lowered body, the precomputed statistic deltas, then
    /// the tail member through the generic execution paths (bit-exact
    /// control-transfer, ISA-switch, `simop`, and error semantics).
    ///
    /// When the tail lands on another fully-compiled superblock that fits
    /// the remaining budget, execution *chains* straight into it without
    /// returning to the outer dispatch loop — hot loops whose blocks are
    /// all compiled cycle entirely inside this method.
    fn execute_ir(&mut self, mut sb: u32, limit: u64) -> Result<(), SimError> {
        loop {
            let entry_isa = self.state.active_isa;
            let block = self.cache.ir_block(sb).expect("dispatched block is live");
            // The interpreter pushes one IP-history entry per member; a
            // compiled block commits atomically, so the same net history
            // is applied in bulk: append all member addresses, then trim
            // the front down to the configured depth in one drain.
            if self.config.ip_history > 0 {
                let hist = &mut self.ip_history;
                if block.addrs.len() >= self.config.ip_history {
                    hist.clear();
                    let skip = block.addrs.len() - self.config.ip_history;
                    hist.extend(block.addrs[skip..].iter().copied());
                } else {
                    hist.extend(block.addrs.iter().copied());
                    let overflow = hist.len().saturating_sub(self.config.ip_history);
                    if overflow > 0 {
                        hist.drain(..overflow);
                    }
                }
            }
            block.run_body(&mut self.state);
            self.stats.operations += block.d_ops;
            self.stats.nops += block.d_nops;
            self.stats.mem_reads += block.d_reads;
            self.stats.mem_writes += block.d_writes;
            self.stats.instructions += block.body_instrs;
            self.stats.ir_instructions += block.body_instrs;
            self.state.retired_instructions += block.body_instrs;
            let tail = block.tail;
            let (instr, slots) = self.cache.instr_and_slots(tail);
            if instr.width == 1 {
                execute_instr_fast(&mut self.state, instr, slots, &mut self.stats)?;
            } else {
                execute_instr(
                    &mut self.state,
                    instr,
                    slots,
                    &mut self.events,
                    &mut self.pending,
                    &mut self.predictor,
                    &mut self.trace,
                    &mut self.stats,
                )?;
            }
            self.stats.ir_instructions += 1;
            self.prev_idx = if self.state.active_isa != entry_isa { NO_IDX } else { tail };
            // Anything the outer loop must see — halt, a fabric stall, an
            // ISA switch, a store into watched text — ends the chain.
            if self.state.halted
                || self.state.fabric_stalled()
                || self.state.active_isa != entry_isa
                || self.state.code_write_pending()
            {
                return Ok(());
            }
            // Resolve the next head with the same decode-statistics
            // accounting as the interpreter dispatch path.
            let head = self.resolve(self.state.ip, entry_isa)?;
            let next = self.cache.run_of(head);
            if next == NO_IDX {
                return Ok(());
            }
            match self.cache.ir_block(next) {
                Some(b)
                    if self.stats.instructions.saturating_add(b.body_instrs + 1) <= limit =>
                {
                    self.stats.superblock_batches += 1;
                    sb = next;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lowers superblock `sb` into the compiled tier, or bars it when its
    /// body cannot be lowered faithfully (see `ir.rs`).
    fn promote_run(&mut self, sb: u32) {
        match crate::ir::lower(&self.cache, sb) {
            Some(block) => {
                let head = block.addrs[0];
                let len = block.addrs.len() as u32;
                let ops = block.op_count() as u32;
                self.cache.install_ir(sb, block);
                self.stats.tier_promotions += 1;
                self.sync_code_watch();
                if let Some(o) = &mut self.observer {
                    o.event(SimEvent::TierPromote { head, len, ops });
                }
            }
            None => self.cache.bar_ir(sb),
        }
    }

    /// Demotes every compiled block overlapping the dirty store range back
    /// to the interpreter tier (self-modifying stores). Demoted blocks
    /// re-earn promotion through heat — and re-lower from the decode
    /// cache's entries, which (like the interpreter's own decode cache,
    /// whose entries are never replaced) do not observe data stores to
    /// text.
    fn flush_code_writes(&mut self) {
        let (lo, hi) = self.state.take_code_writes();
        // `hi` is the highest store *address*; the widest store covers
        // three bytes beyond it.
        self.cache.invalidate_ir_overlapping(lo, hi.saturating_add(4));
        self.note_ir_invalidations();
        self.sync_code_watch();
    }

    /// Accounts demotions queued by the decode cache: statistics, tier
    /// events, and the refreshed store watch window.
    fn note_ir_invalidations(&mut self) {
        if !self.cache.has_pending_ir_invalidations() {
            return;
        }
        let heads = self.cache.take_ir_invalidations();
        self.stats.tier_invalidations += heads.len() as u64;
        if let Some(o) = &mut self.observer {
            for head in heads {
                o.event(SimEvent::TierInvalidate { head });
            }
        }
        self.sync_code_watch();
    }

    /// Points the store watch window at the merged text range of the live
    /// compiled blocks (padded low by 3 bytes so a word store just below a
    /// block still hits the watch), or disables it when the tier is empty.
    fn sync_code_watch(&mut self) {
        match self.cache.ir_bounds() {
            Some((lo, hi)) => {
                let wlo = lo.saturating_sub(3);
                self.state.code_watch_lo = wlo;
                self.state.code_watch_span = hi - wlo;
            }
            None => {
                self.state.code_watch_lo = 0;
                self.state.code_watch_span = 0;
            }
        }
    }

    /// Runs until the program halts or `max_instructions` have executed.
    ///
    /// With the decode cache and [`SimConfig::superblocks`] enabled (the
    /// default), instructions are dispatched in straight-line batches;
    /// otherwise the per-entry [`Simulator::step`] path is used.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error (see [`Simulator::step`]).
    pub fn run(&mut self, max_instructions: u64) -> Result<RunOutcome, SimError> {
        let limit = self.stats.instructions.saturating_add(max_instructions);
        let superblocks = self.config.decode_cache && self.config.superblocks;
        while !self.state.halted {
            // A pending fabric operation (shared atomic or synchronization
            // simop on a multi-core fabric) stalls the core until the fabric
            // resolves it at the next quantum barrier; report the slice as
            // exhausted so the fabric scheduler regains control.
            if self.state.fabric_stalled() || self.stats.instructions >= limit {
                if let Some(m) = &mut self.model {
                    m.finish();
                }
                return Ok(RunOutcome::BudgetExhausted);
            }
            if superblocks {
                self.step_superblock(limit)?;
            } else {
                self.step()?;
            }
        }
        if let Some(m) = &mut self.model {
            m.finish();
        }
        Ok(RunOutcome::Halted { exit_code: self.state.exit_code })
    }

    /// Executes at most `budget` further instructions — the incremental
    /// stepping primitive behind pausable cells in the campaign engine.
    ///
    /// Semantically identical to [`Simulator::run`] (the budget is relative
    /// to the instructions already executed, so repeated calls resume where
    /// the previous slice stopped, even in the middle of a superblock), but
    /// named for the checkpointing workflow:
    ///
    /// ```text
    /// loop {
    ///     match sim.run_for(slice)? {
    ///         RunOutcome::Halted { .. } => break,
    ///         RunOutcome::BudgetExhausted => checkpoint = sim.snapshot()?,
    ///     }
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error (see [`Simulator::step`]).
    pub fn run_for(&mut self, budget: u64) -> Result<RunOutcome, SimError> {
        self.run(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_asm::build;
    use kahrisma_isa::isa_id;

    fn run_with(src: &str, config: SimConfig) -> (Simulator, RunOutcome) {
        let exe = build(&[("test.s", src)]).expect("assemble + link");
        let mut sim = Simulator::new(&exe, config).expect("load");
        let outcome = sim.run(10_000_000).expect("run");
        (sim, outcome)
    }

    const RETURN_42: &str = ".isa risc\n.text\n.global main\n.func main\nmain: li rv, 42\njr ra\n.endfunc\n";

    #[test]
    fn runs_minimal_program() {
        let (sim, outcome) = run_with(RETURN_42, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 42 });
        assert!(sim.stats().instructions > 0);
    }

    #[test]
    fn all_cache_configurations_agree() {
        let no = |sb| SimConfig { superblocks: sb, ..SimConfig::default() };
        let configs = [
            SimConfig { decode_cache: false, prediction: false, ..no(false) },
            SimConfig { decode_cache: true, prediction: false, ..no(false) },
            SimConfig { decode_cache: true, prediction: true, ..no(false) },
            SimConfig { decode_cache: true, prediction: false, ..no(true) },
            SimConfig { decode_cache: true, prediction: true, ..no(true) },
        ];
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t0, 0      ; sum
                li t1, 10     ; counter
            loop:
                add t0, t0, t1
                addi t1, t1, -1
                bne t1, zero, loop
                mv rv, t0
                jr ra
            .endfunc
        ";
        for config in configs {
            let (_, outcome) = run_with(src, config);
            assert_eq!(outcome, RunOutcome::Halted { exit_code: 55 });
        }
    }

    #[test]
    fn decode_cache_stats_show_amortization() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t1, 1000
            loop:
                addi t1, t1, -1
                bne t1, zero, loop
                li rv, 0
                jr ra
            .endfunc
        ";
        let (sim, _) = run_with(src, SimConfig::default());
        let s = sim.stats();
        // ~2000 loop instructions but only a handful of decodes.
        assert!(s.instructions > 2000);
        assert!(s.detect_decodes < 20, "decodes {}", s.detect_decodes);
        assert!(s.decode_avoided_ratio() > 0.99);
        // The loop branch pattern is highly predictable.
        assert!(s.lookup_avoided_ratio() > 0.9, "{}", s.lookup_avoided_ratio());
        assert_eq!(sim.decode_cache().len(), s.detect_decodes as usize);
    }

    #[test]
    fn memory_and_loads_work() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                la t0, value
                lw t1, 0(t0)
                addi t1, t1, 1
                sw t1, 4(t0)
                lw rv, 4(t0)
                jr ra
            .endfunc
            .data
            value: .word 41
            .word 0
        ";
        let (_, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 42 });
    }

    #[test]
    fn vliw_parallel_semantics_read_before_write() {
        // Swap two registers in one VLIW2 bundle: both reads happen before
        // either write (paper §V-B).
        let src = "
            .isa vliw4
            .text
            .global main
            .func main
            main:
                { addi t0, zero, 3 | addi t1, zero, 5 | nop | nop }
                { add t0, t1, zero | add t1, t0, zero | nop | nop }
                { sub rv, t0, t1 | nop | nop | nop }   ; 5 - 3 = 2
                { jr ra | nop | nop | nop }
            .endfunc
        ";
        let (_, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 2 });
    }

    #[test]
    fn mixed_isa_switch_roundtrip() {
        // main (RISC) calls a VLIW4 function using the cross-ISA call
        // convention: switch, call, switch back encoded in the callee ISA.
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                addi sp, sp, -8
                sw ra, 0(sp)
                li a0, 20
                switchtarget vliw4
                jal double_v4
                .isa vliw4
                { switchtarget risc | nop | nop | nop }
                .isa risc
                addi rv, rv, 2
                lw ra, 0(sp)
                addi sp, sp, 8
                jr ra
            .endfunc

            .isa vliw4
            .global double_v4
            .func double_v4
            double_v4:
                { add rv, a0, a0 | nop | nop | nop }
                { jr ra | nop | nop | nop }
            .endfunc
        ";
        let (sim, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 42 });
        assert!(sim.stats().isa_switches >= 2);
    }

    #[test]
    fn libc_emulation_via_stubs() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                addi sp, sp, -8
                sw ra, 0(sp)
                la a0, msg
                jal puts
                li a0, 65
                jal putchar
                li a0, 123
                jal print_int
                li rv, 0
                lw ra, 0(sp)
                addi sp, sp, 8
                jr ra
            .endfunc
            .rodata
            msg: .asciz \"hello\"
        ";
        let (sim, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 0 });
        assert_eq!(sim.state().stdout_string(), "hello\nA123");
    }

    #[test]
    fn cycle_models_produce_counts() {
        for kind in [CycleModelKind::Ilp, CycleModelKind::Aie, CycleModelKind::Doe] {
            let (sim, _) = run_with(RETURN_42, SimConfig::with_model(kind));
            let stats = sim.cycle_stats().expect("model configured");
            assert!(stats.cycles > 0, "{kind:?} produced zero cycles");
            assert!(stats.operations > 0);
        }
    }

    #[test]
    fn doe_cycles_at_most_aie_cycles() {
        let src = "
            .isa vliw4
            .text
            .global main
            .func main
            main:
                li t0, 100
            loop:
                { addi t0, t0, -1 | addi t1, t1, 1 | addi t2, t2, 2 | addi t3, t3, 3 }
                { bne t0, zero, loop | add t4, t1, t2 | nop | nop }
                { add rv, t4, t3 | nop | nop | nop }
                { jr ra | nop | nop | nop }
            .endfunc
        ";
        let (aie, _) = run_with(src, SimConfig::with_model(CycleModelKind::Aie));
        let (doe, _) = run_with(src, SimConfig::with_model(CycleModelKind::Doe));
        let a = aie.cycle_stats().unwrap().cycles;
        let d = doe.cycle_stats().unwrap().cycles;
        assert!(d <= a, "DOE ({d}) must not exceed AIE ({a})");
    }

    #[test]
    fn ilp_bound_at_least_doe_throughput() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t0, 50
            loop:
                add t1, t1, t0
                add t2, t2, t0
                addi t0, t0, -1
                bne t0, zero, loop
                li rv, 0
                jr ra
            .endfunc
        ";
        let (ilp, _) = run_with(src, SimConfig::with_model(CycleModelKind::Ilp));
        let (doe, _) = run_with(src, SimConfig::with_model(CycleModelKind::Doe));
        let bound = ilp.cycle_stats().unwrap().ops_per_cycle();
        let real = doe.cycle_stats().unwrap().ops_per_cycle();
        assert!(
            bound >= real - 1e-9,
            "ILP bound {bound} must be at least DOE throughput {real}"
        );
    }

    #[test]
    fn trace_records_operations() {
        let exe = build(&[("t.s", RETURN_42)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        sim.set_trace_sink(Box::new(crate::trace::VecTraceSink::new()));
        sim.run(1000).unwrap();
        let sink = sim.take_trace_sink().unwrap();
        // Downcast by rebuilding: VecTraceSink is the only sink used here.
        // (TraceSink has no downcast; keep the sink concrete in real code.)
        let _ = sink;
        // Use a concrete sink instead for assertions:
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        let records = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<crate::trace::TraceRecord>>>);
        impl TraceSink for Shared {
            fn record(&mut self, r: crate::trace::TraceRecord) {
                self.0.lock().unwrap().push(r);
            }
        }
        sim.set_trace_sink(Box::new(Shared(records.clone())));
        sim.run(1000).unwrap();
        let recs = records.lock().unwrap();
        assert!(!recs.is_empty());
        assert!(recs.iter().any(|r| r.opcode == "addi"));
        assert!(recs.iter().any(|r| !r.outputs.is_empty()));
    }

    #[test]
    fn illegal_instruction_has_context() {
        // Jump into the data segment (zeroes decode as nop — so jump into
        // an unmapped region with a bogus pattern instead).
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                la t0, bad
                jr t0
            .endfunc
            .data
            bad: .word 0xFFFFFFFF
        ";
        let exe = build(&[("t.s", src)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        let err = sim.run(1000).unwrap_err();
        assert!(matches!(err, SimError::IllegalInstruction { word: 0xFFFF_FFFF, .. }));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let src = ".isa risc\n.text\n.global main\n.func main\nmain: j main\n.endfunc\n";
        let exe = build(&[("t.s", src)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        assert_eq!(sim.run(100).unwrap(), RunOutcome::BudgetExhausted);
        assert!(sim.ip_history().count() > 0);
    }

    #[test]
    fn initial_isa_override_validated() {
        let exe = build(&[("t.s", RETURN_42)]).unwrap();
        let bad = SimConfig { initial_isa: Some(IsaId::new(99)), ..SimConfig::default() };
        assert!(matches!(Simulator::new(&exe, bad), Err(SimError::BadEntryIsa(99))));
        let good = SimConfig { initial_isa: Some(isa_id::RISC), ..SimConfig::default() };
        assert!(Simulator::new(&exe, good).is_ok());
    }

    #[test]
    fn branch_misprediction_extension_adds_cycles() {
        // The §VIII future-work extension: a data-dependent, hard-to-
        // predict branch pattern must cost more cycles under a bimodal
        // predictor than under perfect prediction, and loops must stay
        // nearly free.
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t0, 200     ; iterations
                li t1, 0       ; lfsr-ish state
                li t2, 0       ; taken counter
            loop:
                slli t1, t0, 3
                xor  t1, t1, t0
                andi t3, t1, 1
                beq  t3, zero, skip
                addi t2, t2, 1
            skip:
                addi t0, t0, -1
                bne  t0, zero, loop
                mv rv, t2
                jr ra
            .endfunc
        ";
        let exe = build(&[("b.s", src)]).unwrap();
        let run = |config: SimConfig| -> (u64, u32, Option<(u64, u64)>) {
            let mut sim = Simulator::new(&exe, config).unwrap();
            let RunOutcome::Halted { exit_code } = sim.run(1_000_000).unwrap() else {
                panic!("budget");
            };
            (sim.cycle_stats().unwrap().cycles, exit_code, sim.branch_stats())
        };
        let perfect = run(SimConfig::with_model(CycleModelKind::Doe));
        let mut bimodal_cfg = SimConfig::with_model(CycleModelKind::Doe);
        bimodal_cfg.branch_prediction = crate::cycles::BranchPredictorConfig::bimodal();
        let bimodal = run(bimodal_cfg);
        assert_eq!(perfect.1, bimodal.1, "prediction must not change results");
        assert!(perfect.2.is_none());
        let (preds, misses) = bimodal.2.expect("bimodal stats");
        assert!(preds > 400, "every branch observed: {preds}");
        assert!(misses > 10, "the data-dependent branch must miss: {misses}");
        assert!(
            bimodal.0 > perfect.0,
            "mispredictions must cost cycles ({} vs {})",
            bimodal.0,
            perfect.0
        );
        // The loop back-edge is learned even though the alternating data
        // branch is a bimodal worst case, so overall misses stay clearly
        // below the total (the alternating branch alone would be ~50%).
        assert!((misses as f64) < 0.7 * preds as f64, "{misses}/{preds}");
    }

    #[test]
    fn function_profile_attributes_cycles() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                addi sp, sp, -8
                sw ra, 0(sp)
                li t0, 50
            loop:
                jal work
                addi t0, t0, -1
                bne t0, zero, loop
                li rv, 0
                lw ra, 0(sp)
                addi sp, sp, 8
                jr ra
            .endfunc
            .global work
            .func work
            work:
                mul t1, t1, t1
                addi t1, t1, 3
                jr ra
            .endfunc
        ";
        let exe = build(&[("p.s", src)]).unwrap();
        let mut config = SimConfig::with_model(CycleModelKind::Doe);
        config.profile = true;
        let mut sim = Simulator::new(&exe, config).unwrap();
        sim.run(100_000).unwrap();
        let profile = sim.function_profile().expect("profiling enabled");
        let main = profile.iter().find(|p| p.name == "main").expect("main profiled");
        let work = profile.iter().find(|p| p.name == "work").expect("work profiled");
        assert_eq!(work.instructions, 150); // 3 instructions x 50 calls
        assert!(main.instructions > 150);
        assert!(work.cycles > 0);
        // All cycles are attributed somewhere, summing to the model total.
        let total: u64 = profile.iter().map(|p| p.cycles).sum();
        assert_eq!(total, sim.cycle_stats().unwrap().cycles);
        // The per-opcode histogram counts each executed operation, skips
        // nop fillers, and is sorted most-executed first.
        let opcodes = sim.opcode_histogram().expect("profiling enabled");
        let mul = opcodes.iter().find(|(n, _)| *n == "mul").expect("mul counted");
        assert_eq!(mul.1, 50);
        assert!(opcodes.iter().all(|(n, _)| *n != "nop"));
        assert!(opcodes.windows(2).all(|w| w[0].1 >= w[1].1));
        let op_total: u64 = opcodes.iter().map(|(_, c)| c).sum();
        assert_eq!(op_total, sim.stats().operations);
    }

    #[test]
    fn superblocks_batch_the_hot_loop() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t1, 500
            loop:
                addi t2, t2, 3
                addi t3, t3, 5
                addi t1, t1, -1
                bne t1, zero, loop
                li rv, 7
                jr ra
            .endfunc
        ";
        let (sim, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 7 });
        let s = sim.stats();
        // Each loop iteration is one batched dispatch of a 4-instruction
        // run, so batches stay well below instructions.
        assert!(s.superblocks_built > 0);
        assert!(s.superblock_batches > 0);
        assert!(
            s.superblock_batches * 2 < s.instructions,
            "batches {} vs instructions {}",
            s.superblock_batches,
            s.instructions
        );
        // Unique runs are bounded by the (tiny) program's block count.
        assert!(s.superblocks_built < 30, "{}", s.superblocks_built);
        // §VII-A: the decode cache serves essentially every resolution.
        assert!(s.cache_hit_ratio() > 0.99, "{}", s.cache_hit_ratio());
        // The flat arena holds exactly the cached instructions' slots
        // (RISC: one slot per instruction).
        assert_eq!(sim.decode_cache().slot_count(), sim.decode_cache().len());
    }

    #[test]
    fn superblock_and_baseline_paths_agree() {
        // Acceptance criterion: identical exit codes, instruction counts,
        // and cycle-model statistics under the batched hot loop vs. the
        // per-entry baseline path, for both pure-RISC and mixed-ISA code.
        let srcs = [
            "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t0, 0
                li t1, 37
            loop:
                andi t2, t1, 1
                beq t2, zero, even
                addi t0, t0, 1
            even:
                srli t1, t1, 1
                bne t1, zero, loop
                mv rv, t0
                jr ra
            .endfunc
            ",
            "
            .isa risc
            .text
            .global main
            .func main
            main:
                addi sp, sp, -8
                sw ra, 0(sp)
                li a0, 20
                switchtarget vliw4
                jal double_v4
                .isa vliw4
                { switchtarget risc | nop | nop | nop }
                .isa risc
                addi rv, rv, 2
                lw ra, 0(sp)
                addi sp, sp, 8
                jr ra
            .endfunc
            .isa vliw4
            .global double_v4
            .func double_v4
            double_v4:
                { add rv, a0, a0 | nop | nop | nop }
                { jr ra | nop | nop | nop }
            .endfunc
            ",
        ];
        for src in srcs {
            for model in [None, Some(CycleModelKind::Doe), Some(CycleModelKind::Aie)] {
                let config = |sb: bool| SimConfig {
                    superblocks: sb,
                    cycle_model: model,
                    ..SimConfig::default()
                };
                let (new, new_out) = run_with(src, config(true));
                let (base, base_out) = run_with(src, config(false));
                assert_eq!(new_out, base_out);
                assert_eq!(new.stats().instructions, base.stats().instructions);
                assert_eq!(new.stats().operations, base.stats().operations);
                assert_eq!(new.stats().taken_branches, base.stats().taken_branches);
                assert_eq!(new.stats().mem_reads, base.stats().mem_reads);
                assert_eq!(new.stats().mem_writes, base.stats().mem_writes);
                assert_eq!(new.stats().nops, base.stats().nops);
                assert_eq!(new.cycle_stats(), base.cycle_stats(), "{model:?}");
            }
        }
    }

    #[test]
    fn switchtarget_reexecution_same_address_decodes_fresh() {
        // A program that `switchtarget`s and re-executes the same address
        // must decode fresh under the arena/superblock cache: the shared
        // words execute as two RISC instructions first, then as one VLIW2
        // bundle, and both decodes (and their superblocks) coexist keyed by
        // ISA. Hand-assembled because the assembler assigns each address a
        // single ISA.
        use kahrisma_elf::Segment;
        use kahrisma_isa::{abi, isa_id, tables};

        let enc = |name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32| -> u32 {
            tables()
                .table(isa_id::RISC)
                .unwrap()
                .op_by_name(name)
                .unwrap()
                .1
                .encode(rd, rs1, rs2, imm)
        };
        let shared = 0x2000u32;
        // Shared block: `addi rv, rv, 1; jr ra`. Under RISC that is two
        // instructions; under VLIW2 the same words form one bundle.
        let shared_words = [enc("addi", abi::RV, abi::RV, 0, 1), enc("jr", 0, abi::RA, 0, 0)];
        let text = [
            enc("jal", 0, 0, 0, shared / 4),            // 0x1000: call shared (RISC)
            enc("switchtarget", 0, 0, 0, u32::from(isa_id::VLIW2.value())), // 0x1004
            enc("jal", 0, 0, 0, shared / 4),            // 0x1008: bundle { jal | nop }
            0,                                           // 0x100C: nop filler
            enc("halt", 0, 0, 0, 0),                     // 0x1010: bundle { halt | nop }
            0,                                           // 0x1014: nop filler
        ];
        let to_bytes =
            |words: &[u32]| words.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<u8>>();
        let exe = kahrisma_elf::Executable {
            entry: 0x1000,
            entry_isa: isa_id::RISC.value(),
            segments: vec![
                Segment::new(0x1000, to_bytes(&text), true),
                Segment::new(shared, to_bytes(&shared_words), true),
            ],
            debug: kahrisma_elf::DebugInfo::new(),
        };
        for superblocks in [false, true] {
            let config = SimConfig { superblocks, ..SimConfig::default() };
            let mut sim = Simulator::new(&exe, config).unwrap();
            let outcome = sim.run(10_000).unwrap();
            // The addi ran once per ISA — a stale decode would run the
            // RISC pair again (or an illegal bundle) after the switch.
            assert_eq!(outcome, RunOutcome::Halted { exit_code: 2 }, "superblocks={superblocks}");
            assert_eq!(sim.stats().isa_switches, 1);
            // Both decodes of the shared address coexist, keyed by ISA.
            let cache = sim.decode_cache();
            let risc_idx = cache.lookup(shared, isa_id::RISC).expect("RISC decode cached");
            let vliw_idx = cache.lookup(shared, isa_id::VLIW2).expect("VLIW2 decode cached");
            assert_ne!(risc_idx, vliw_idx);
            assert_eq!(cache.get(risc_idx).width, 1);
            assert_eq!(cache.get(vliw_idx).width, 2);
            if superblocks {
                // The RISC and VLIW2 executions of the shared address run
                // under distinct superblocks.
                let risc_sb = cache.run_of(risc_idx);
                let vliw_sb = cache.run_of(vliw_idx);
                assert_ne!(risc_sb, crate::decode::NO_IDX);
                assert_ne!(vliw_sb, crate::decode::NO_IDX);
                assert_ne!(risc_sb, vliw_sb);
            }
        }
    }

    /// Source with a mixed-ISA round trip and a long straight-line loop so
    /// budget pauses land both mid-superblock and right after
    /// `switchtarget`.
    const MIXED_LOOP: &str = "
        .isa risc
        .text
        .global main
        .func main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            li t0, 40
            li a0, 0
        loop:
            addi a0, a0, 1
            addi a0, a0, 2
            addi a0, a0, -2
            switchtarget vliw4
            jal bump_v4
            .isa vliw4
            { switchtarget risc | nop | nop | nop }
            .isa risc
            addi t0, t0, -1
            bne t0, zero, loop
            addi rv, a0, 2
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        .endfunc

        .isa vliw4
        .global bump_v4
        .func bump_v4
        bump_v4:
            { add rv, a0, zero | nop | nop | nop }
            { jr ra | nop | nop | nop }
        .endfunc
    ";

    #[test]
    fn run_for_resumes_across_slices() {
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let mut whole = Simulator::new(&exe, SimConfig::default()).unwrap();
        let expected = whole.run(1_000_000).unwrap();
        let RunOutcome::Halted { exit_code } = expected else { panic!("budget") };

        let mut sliced = Simulator::new(&exe, SimConfig::default()).unwrap();
        let mut slices = 0;
        let outcome = loop {
            match sliced.run_for(7).unwrap() {
                RunOutcome::Halted { exit_code } => break exit_code,
                RunOutcome::BudgetExhausted => slices += 1,
            }
        };
        assert_eq!(outcome, exit_code);
        assert!(slices > 10, "a 7-instruction slice must pause many times: {slices}");
        assert_eq!(sliced.stats().instructions, whole.stats().instructions);
        assert_eq!(sliced.stats().operations, whole.stats().operations);
        assert_eq!(sliced.stats().isa_switches, whole.stats().isa_switches);
    }

    #[test]
    fn snapshot_restore_is_deterministic_at_every_pause_point() {
        // Pause at a sweep of instruction counts — covering mid-superblock
        // positions and the instruction right after each `switchtarget` —
        // snapshot, restore into a FRESH simulator, and require bit-identical
        // results and DOE cycle statistics.
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let config = || SimConfig::with_model(CycleModelKind::Doe);
        let mut reference = Simulator::new(&exe, config()).unwrap();
        let expected = reference.run(1_000_000).unwrap();
        let total = reference.stats().instructions;
        let expected_cycles = reference.cycle_stats().unwrap();

        for pause in [1, 2, 3, 5, 7, 11, 13, total - 2, total - 1] {
            let mut first = Simulator::new(&exe, config()).unwrap();
            assert_eq!(first.run_for(pause).unwrap(), RunOutcome::BudgetExhausted);
            assert_eq!(first.stats().instructions, pause);
            let snap = first.snapshot().unwrap();
            assert_eq!(snap.instructions(), pause);

            let mut resumed = Simulator::new(&exe, config()).unwrap();
            resumed.restore(&snap).unwrap();
            let outcome = resumed.run(1_000_000).unwrap();
            assert_eq!(outcome, expected, "pause at {pause}");
            assert_eq!(resumed.stats().instructions, total, "pause at {pause}");
            assert_eq!(
                resumed.stats().operations,
                reference.stats().operations,
                "pause at {pause}"
            );
            assert_eq!(resumed.cycle_stats().unwrap(), expected_cycles, "pause at {pause}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrips_on_same_simulator() {
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        sim.run_for(10).unwrap();
        let snap = sim.snapshot().unwrap();
        let ip = snap.ip();
        // Run ahead, then rewind to the snapshot and re-run: same result.
        let a = sim.run(1_000_000).unwrap();
        let a_instrs = sim.stats().instructions;
        sim.restore(&snap).unwrap();
        assert_eq!(sim.state().ip, ip);
        let b = sim.run(1_000_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(sim.stats().instructions, a_instrs);
    }

    #[test]
    fn reset_reruns_with_warm_decode_cache() {
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Aie)).unwrap();
        let first = sim.run(1_000_000).unwrap();
        let instrs = sim.stats().instructions;
        let cycles = sim.cycle_stats().unwrap();
        let decodes = sim.stats().detect_decodes;
        assert!(decodes > 0);

        sim.reset();
        assert_eq!(sim.stats().instructions, 0);
        assert_eq!(sim.cycle_stats().unwrap().cycles, 0);
        let second = sim.run(1_000_000).unwrap();
        assert_eq!(second, first);
        assert_eq!(sim.stats().instructions, instrs);
        assert_eq!(sim.cycle_stats().unwrap(), cycles);
        // The decode cache survived the reset: nothing re-decoded.
        assert_eq!(sim.stats().detect_decodes, 0);
    }

    #[test]
    fn observer_stream_matches_stats() {
        use crate::observe::{Observer, SimEvent};
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<SimEvent>>>);
        impl Observer for Shared {
            fn event(&mut self, e: SimEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).unwrap();
        sim.set_observer(Box::new(Shared(events.clone())));
        let outcome = sim.run(1_000_000).unwrap();
        assert!(matches!(outcome, RunOutcome::Halted { .. }));
        let evs = events.lock().unwrap();

        // One Instr event per executed instruction, densely sequenced.
        let mut want_seq = 0u64;
        for e in evs.iter() {
            if let SimEvent::Instr { seq, .. } = e {
                assert_eq!(*seq, want_seq);
                want_seq += 1;
            }
        }
        assert_eq!(want_seq, sim.stats().instructions);

        // The DOE model issues exactly the non-`nop` operations.
        let issues = evs.iter().filter(|e| matches!(e, SimEvent::OpIssue { .. })).count();
        assert_eq!(issues as u64, sim.stats().operations);

        // ISA switches and simops surface as structured events.
        let switches = evs.iter().filter(|e| matches!(e, SimEvent::IsaSwitch { .. })).count();
        assert_eq!(switches as u64, sim.stats().isa_switches);
        assert!(evs.iter().any(|e| matches!(e, SimEvent::SuperblockBuild { .. })));
        assert!(evs.iter().any(|e| matches!(e, SimEvent::SuperblockBatch { .. })));

        // Observation must not perturb results or timing.
        let mut plain = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).unwrap();
        assert_eq!(plain.run(1_000_000).unwrap(), outcome);
        assert_eq!(plain.stats().instructions, sim.stats().instructions);
        assert_eq!(plain.stats().operations, sim.stats().operations);
        assert_eq!(plain.cycle_stats(), sim.cycle_stats());
    }

    #[test]
    fn observer_sees_snapshot_and_restore() {
        use crate::observe::{Observer, SimEvent};
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<SimEvent>>>);
        impl Observer for Shared {
            fn event(&mut self, e: SimEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        sim.set_observer(Box::new(Shared(events.clone())));
        sim.run_for(10).unwrap();
        let snap = sim.snapshot().unwrap();
        sim.run_for(5).unwrap();
        sim.restore(&snap).unwrap();
        let evs = events.lock().unwrap();
        assert!(evs.contains(&SimEvent::SnapshotTaken { instructions: 10 }));
        assert!(evs.contains(&SimEvent::Restored { instructions: 10 }));
    }

    #[test]
    fn simulator_and_snapshot_are_send() {
        // The serving daemon migrates sessions (and their snapshots)
        // between connection-handler threads; this must stay compile-true.
        fn check<T: Send>() {}
        check::<Simulator>();
        check::<Snapshot>();
    }

    #[test]
    fn reset_restarts_the_observer_stream_cleanly() {
        use crate::observe::{Observer, SimEvent};
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<SimEvent>>>);
        impl Observer for Shared {
            fn event(&mut self, e: SimEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).unwrap();
        sim.set_observer(Box::new(Shared(events.clone())));
        sim.run(1_000_000).unwrap();
        let first_instrs = sim.stats().instructions;
        let decodes_before = sim.stats().detect_decodes;
        sim.reset();
        sim.run(1_000_000).unwrap();
        // The decode cache stayed warm across the reset.
        assert_eq!(sim.stats().detect_decodes, 0);
        assert!(decodes_before > 0);

        let evs = events.lock().unwrap();
        let reset_at = evs
            .iter()
            .position(|e| matches!(e, SimEvent::Reset { .. }))
            .expect("reset marker emitted");
        assert_eq!(
            evs[reset_at],
            SimEvent::Reset { instructions: first_instrs },
            "marker carries the discarded instruction count"
        );
        // Before the marker: seq runs 0..first_instrs. After: it restarts
        // at 0 — no stale Instr record crosses the reset.
        let seqs = |evs: &[SimEvent]| -> Vec<u64> {
            evs.iter()
                .filter_map(|e| match e {
                    SimEvent::Instr { seq, .. } => Some(*seq),
                    _ => None,
                })
                .collect()
        };
        let before = seqs(&evs[..reset_at]);
        let after = seqs(&evs[reset_at..]);
        assert_eq!(before.len() as u64, first_instrs);
        assert_eq!(before.last(), Some(&(first_instrs - 1)));
        assert_eq!(after.first(), Some(&0));
        assert_eq!(after, before, "identical re-run, identical stream");
        // Both halves pair OpIssue records with their own run only: the
        // DOE model restarts at cycle 0, so no post-reset issue may carry
        // a pre-reset (monotonically larger) issue cycle at stream start.
        let first_issue_after = evs[reset_at..].iter().find_map(|e| match e {
            SimEvent::OpIssue { issue, .. } => Some(*issue),
            _ => None,
        });
        let first_issue_before = evs[..reset_at].iter().find_map(|e| match e {
            SimEvent::OpIssue { issue, .. } => Some(*issue),
            _ => None,
        });
        assert_eq!(first_issue_after, first_issue_before);
    }

    #[test]
    fn describe_addr_reports_function() {
        let exe = build(&[("t.s", RETURN_42)]).unwrap();
        let sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        let main = exe.debug.funcs.iter().find(|f| f.name == "main").unwrap();
        let desc = sim.describe_addr(main.start);
        assert!(desc.contains("main"), "{desc}");
        assert!(desc.contains("test.s") || desc.contains("t.s"), "{desc}");
    }

    /// An IR-tier config with an aggressive promotion threshold so short
    /// test programs actually exercise the compiled tier.
    fn hot_ir(threshold: u32) -> SimConfig {
        SimConfig { tier: TierMode::Ir, tier_threshold: threshold, ..SimConfig::default() }
    }

    fn interp_only() -> SimConfig {
        SimConfig { tier: TierMode::Interp, ..SimConfig::default() }
    }

    #[test]
    fn ir_tier_matches_interpreter_bit_for_bit() {
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let mut interp = Simulator::new(&exe, interp_only()).unwrap();
        let a = interp.run(1_000_000).unwrap();
        let mut tiered = Simulator::new(&exe, hot_ir(2)).unwrap();
        let b = tiered.run(1_000_000).unwrap();
        assert_eq!(a, b);
        let (si, st) = (interp.stats(), tiered.stats());
        assert_eq!(si.instructions, st.instructions);
        assert_eq!(si.operations, st.operations);
        assert_eq!(si.nops, st.nops);
        assert_eq!(si.mem_reads, st.mem_reads);
        assert_eq!(si.mem_writes, st.mem_writes);
        assert_eq!(si.taken_branches, st.taken_branches);
        assert_eq!(si.isa_switches, st.isa_switches);
        assert_eq!(si.simops, st.simops);
        assert_eq!(interp.state().ip, tiered.state().ip);
        // The interpreter run never tiered; the IR run really did.
        assert_eq!(si.tier_promotions, 0);
        assert_eq!(si.ir_instructions, 0);
        assert!(st.tier_promotions > 0);
        assert!(st.ir_instructions > 0, "compiled tier must retire instructions");
        assert!(st.ir_ratio() > 0.0 && st.ir_ratio() <= 1.0);
    }

    #[test]
    fn hot_loop_promotes_and_counts_ir_instructions() {
        let src = "
            .isa risc
            .text
            .global main
            .func main
            main:
                li t1, 500
            loop:
                addi t2, t2, 3
                addi t3, t3, 5
                addi t1, t1, -1
                bne t1, zero, loop
                li rv, 0
                jr ra
            .endfunc
        ";
        let (sim, outcome) = run_with(src, SimConfig::default());
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 0 });
        let s = sim.stats();
        assert!(s.tier_promotions >= 1, "promotions: {}", s.tier_promotions);
        assert_eq!(s.tier_invalidations, 0);
        // 500 iterations, default threshold 16: the bulk of the loop body
        // retires through the compiled tier.
        assert!(s.ir_instructions > 1_000, "ir instructions: {}", s.ir_instructions);
        assert!(s.ir_instructions < s.instructions);
        assert!(sim.decode_cache().ir_block_count() >= 1);
        // The interpreter tier never promotes and retires nothing via IR.
        let (plain, _) = run_with(src, interp_only());
        assert_eq!(plain.stats().tier_promotions, 0);
        assert_eq!(plain.stats().ir_instructions, 0);
        assert_eq!(plain.stats().instructions, s.instructions);
        assert_eq!(plain.stats().operations, s.operations);
    }

    #[test]
    fn stores_into_compiled_text_invalidate_and_retier() {
        // Hand-assembled so the addresses are exact: an inner hot loop at
        // 0x2000 gets promoted, then the outer loop stores the loop's own
        // body word back to 0x2004 (a self-modifying touch that rewrites
        // identical bytes), which must demote the compiled block; the
        // re-heated loop then re-earns promotion.
        use kahrisma_elf::Segment;
        use kahrisma_isa::{abi, tables};
        let enc = |name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32| -> u32 {
            tables()
                .table(isa_id::RISC)
                .unwrap()
                .op_by_name(name)
                .unwrap()
                .1
                .encode(rd, rs1, rs2, imm)
        };
        let (t0, t1, t2, t3, t4, t5, t6) = (
            abi::T0,
            abi::T0 + 1,
            abi::T0 + 2,
            abi::T0 + 3,
            abi::T0 + 4,
            abi::T0 + 5,
            abi::T0 + 6,
        );
        let z = abi::ZERO;
        let inner = [
            enc("addi", t1, z, 0, 0),    // 0x2000: reset trip counter
            enc("addi", t2, t2, 0, 1),   // 0x2004: hot body (the watched word)
            enc("addi", t1, t1, 0, 1),   // 0x2008
            enc("beq", 0, t1, t4, 2),    // 0x200C: done after t4 trips
            enc("j", 0, 0, 0, 0x2004 / 4), // 0x2010: back edge
            enc("jr", 0, abi::RA, 0, 0), // 0x2014
        ];
        let outer = [
            enc("lui", t5, 0, 0, 1),       // 0x1000: t5 = 0x2000
            enc("addi", t4, z, 0, 64),     // 0x1004: inner trip count
            enc("addi", t6, z, 0, 3),      // 0x1008: outer trip count
            enc("addi", t0, z, 0, 0),      // 0x100C
            enc("jal", 0, 0, 0, 0x2000 / 4), // 0x1010: run the hot loop
            enc("lw", t3, t5, 0, 4),       // 0x1014: read the hot body word
            enc("sw", 0, t5, t3, 4),       // 0x1018: write it back verbatim
            enc("addi", t0, t0, 0, 1),     // 0x101C
            enc("beq", 0, t0, t6, 2),      // 0x1020: exit after 3 rounds
            enc("j", 0, 0, 0, 0x1010 / 4), // 0x1024
            enc("addi", abi::RV, t2, 0, 0), // 0x1028
            enc("halt", 0, 0, 0, 0),       // 0x102C
        ];
        let to_bytes =
            |words: &[u32]| words.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<u8>>();
        let exe = kahrisma_elf::Executable {
            entry: 0x1000,
            entry_isa: isa_id::RISC.value(),
            segments: vec![
                Segment::new(0x1000, to_bytes(&outer), true),
                Segment::new(0x2000, to_bytes(&inner), true),
            ],
            debug: kahrisma_elf::DebugInfo::new(),
        };
        let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
        let outcome = sim.run(100_000).unwrap();
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 192 }); // 3 * 64
        let s = sim.stats();
        // Each of the three rounds promotes the inner loop; each store
        // lands inside the compiled block's watch window and demotes it.
        assert!(s.tier_promotions >= 2, "promotions: {}", s.tier_promotions);
        assert!(s.tier_invalidations >= 2, "invalidations: {}", s.tier_invalidations);
        assert!(s.ir_instructions > 0);
        // Bit-exact against the pure interpreter despite the churn.
        let mut plain = Simulator::new(&exe, interp_only()).unwrap();
        assert_eq!(plain.run(100_000).unwrap(), outcome);
        assert_eq!(plain.stats().instructions, s.instructions);
        assert_eq!(plain.stats().operations, s.operations);
        assert_eq!(plain.stats().mem_reads, s.mem_reads);
        assert_eq!(plain.stats().mem_writes, s.mem_writes);
    }

    #[test]
    fn mixed_isa_same_address_redecode_invalidates_compiled_block() {
        // The `switchtarget` re-decode scenario, tiered: the shared words
        // at 0x2000 execute hot enough under RISC to compile, then the
        // VLIW2 re-decode of the same address must invalidate the RISC
        // block (conservatively — the cache keeps both decodes).
        use crate::observe::{Observer, SimEvent};
        use kahrisma_elf::Segment;
        use kahrisma_isa::{abi, tables};
        let enc = |name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32| -> u32 {
            tables()
                .table(isa_id::RISC)
                .unwrap()
                .op_by_name(name)
                .unwrap()
                .1
                .encode(rd, rs1, rs2, imm)
        };
        let shared = 0x2000u32;
        let shared_words = [enc("addi", abi::RV, abi::RV, 0, 1), enc("jr", 0, abi::RA, 0, 0)];
        let text = [
            enc("jal", 0, 0, 0, shared / 4),
            enc("switchtarget", 0, 0, 0, u32::from(isa_id::VLIW2.value())),
            enc("jal", 0, 0, 0, shared / 4),
            0,
            enc("halt", 0, 0, 0, 0),
            0,
        ];
        let to_bytes =
            |words: &[u32]| words.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<u8>>();
        let exe = kahrisma_elf::Executable {
            entry: 0x1000,
            entry_isa: isa_id::RISC.value(),
            segments: vec![
                Segment::new(0x1000, to_bytes(&text), true),
                Segment::new(shared, to_bytes(&shared_words), true),
            ],
            debug: kahrisma_elf::DebugInfo::new(),
        };
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<SimEvent>>>);
        impl Observer for Shared {
            fn event(&mut self, e: SimEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        let mut sim = Simulator::new(&exe, hot_ir(1)).unwrap();
        sim.set_observer(Box::new(Shared(events.clone())));
        let outcome = sim.run(10_000).unwrap();
        assert_eq!(outcome, RunOutcome::Halted { exit_code: 2 });
        assert_eq!(sim.stats().isa_switches, 1);
        assert!(sim.stats().tier_promotions >= 1);
        assert!(sim.stats().tier_invalidations >= 1, "re-decode must demote");
        // Both decodes still coexist, keyed by ISA.
        let cache = sim.decode_cache();
        assert!(cache.lookup(shared, isa_id::RISC).is_some());
        assert!(cache.lookup(shared, isa_id::VLIW2).is_some());
        // The tier transitions surface as structured events.
        let evs = events.lock().unwrap();
        assert!(
            evs.iter().any(|e| matches!(e, SimEvent::TierPromote { head, .. } if *head == shared))
        );
        assert!(
            evs.iter()
                .any(|e| matches!(e, SimEvent::TierInvalidate { head } if *head == shared))
        );
    }

    #[test]
    fn snapshot_mid_run_restores_into_fresh_ir_simulator() {
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let mut sim = Simulator::new(&exe, hot_ir(2)).unwrap();
        // Drive to an arbitrary pause point (7 divides no block length, so
        // pauses land mid-superblock), well past the first promotion.
        for _ in 0..12 {
            sim.run_for(7).unwrap();
        }
        assert!(sim.stats().tier_promotions >= 1);
        let snap = sim.snapshot().unwrap();
        let a = sim.run(1_000_000).unwrap();
        let a_instrs = sim.stats().instructions;
        let a_ops = sim.stats().operations;
        // Restore into a *fresh* simulator: cold decode cache, cold tier.
        let mut fresh = Simulator::new(&exe, hot_ir(2)).unwrap();
        fresh.restore(&snap).unwrap();
        let b = fresh.run(1_000_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(fresh.stats().instructions, a_instrs);
        assert_eq!(fresh.stats().operations, a_ops);
        assert_eq!(fresh.state().ip, sim.state().ip);
    }

    #[test]
    fn observer_disables_ir_execution_but_not_tier_management() {
        use crate::observe::{Observer, SimEvent};
        let exe = build(&[("m.s", MIXED_LOOP)]).unwrap();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<SimEvent>>>);
        impl Observer for Shared {
            fn event(&mut self, e: SimEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        let mut sim = Simulator::new(&exe, hot_ir(2)).unwrap();
        sim.set_observer(Box::new(Shared(events.clone())));
        let outcome = sim.run(1_000_000).unwrap();
        // Promotion (and its event) happen under observation, but the
        // per-instruction stream stays authoritative: nothing retires
        // through the compiled loop while an observer is attached.
        assert!(sim.stats().tier_promotions >= 1);
        assert_eq!(sim.stats().ir_instructions, 0);
        let evs = events.lock().unwrap();
        let promotes =
            evs.iter().filter(|e| matches!(e, SimEvent::TierPromote { .. })).count() as u64;
        assert_eq!(promotes, sim.stats().tier_promotions);
        let mut want_seq = 0u64;
        for e in evs.iter() {
            if let SimEvent::Instr { seq, .. } = e {
                assert_eq!(*seq, want_seq);
                want_seq += 1;
            }
        }
        assert_eq!(want_seq, sim.stats().instructions, "Instr stream stays dense");
        drop(evs);
        // Observation must not perturb results vs the unobserved IR run.
        let mut plain = Simulator::new(&exe, hot_ir(2)).unwrap();
        assert_eq!(plain.run(1_000_000).unwrap(), outcome);
        assert_eq!(plain.stats().instructions, sim.stats().instructions);
        assert_eq!(plain.stats().operations, sim.stats().operations);
        assert!(plain.stats().ir_instructions > 0);
    }
}
