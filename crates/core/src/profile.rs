//! Function-granularity profiling.
//!
//! Paper §V, simulator goal 2: "The ISS gives cycle-approximate performance
//! results in combination with dynamic program analysis, e.g. profiling.
//! This is in our case especially important for the selection of
//! appropriate ISAs for an application on function granularity."
//!
//! The profiler attributes executed instructions, operations, and (when a
//! cycle model is attached) approximated cycles to the function containing
//! each instruction address, using the executable's function table
//! (`.kahrisma.funcs`).

use std::collections::BTreeMap;

use kahrisma_elf::DebugInfo;

use crate::decode::DecodedSlot;

/// Per-function accumulators.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionProfile {
    /// Function name (from the function table).
    pub name: String,
    /// Instructions (bundles) attributed to the function.
    pub instructions: u64,
    /// Non-`nop` operations attributed to the function.
    pub operations: u64,
    /// Cycle-model delta attributed to the function (0 without a model).
    pub cycles: u64,
}

/// Accumulates per-function execution statistics.
///
/// Attribution uses a sorted range table with a one-entry cache, so the
/// per-instruction cost is a comparison in the common case (execution stays
/// within one function for long stretches).
#[derive(Debug, Clone)]
pub struct Profiler {
    /// `(start, end, index into profiles)`, sorted by start.
    ranges: Vec<(u32, u32, usize)>,
    profiles: Vec<FunctionProfile>,
    /// Index of the "outside any function" bucket.
    other: usize,
    /// Cache of the last attributed range.
    last: usize,
    /// Executed non-`nop` operations per opcode mnemonic.
    opcodes: BTreeMap<&'static str, u64>,
}

impl Profiler {
    /// Builds a profiler from an executable's debug information.
    #[must_use]
    pub fn new(debug: &DebugInfo) -> Self {
        let mut profiles: Vec<FunctionProfile> = debug
            .funcs
            .iter()
            .map(|f| FunctionProfile { name: f.name.clone(), ..FunctionProfile::default() })
            .collect();
        let mut ranges: Vec<(u32, u32, usize)> =
            debug.funcs.iter().enumerate().map(|(i, f)| (f.start, f.end, i)).collect();
        ranges.sort_unstable_by_key(|r| r.0);
        profiles.push(FunctionProfile { name: "<unknown>".into(), ..FunctionProfile::default() });
        let other = profiles.len() - 1;
        Profiler { ranges, profiles, other, last: usize::MAX, opcodes: BTreeMap::new() }
    }

    fn bucket_for(&mut self, addr: u32) -> usize {
        if self.last != usize::MAX {
            if let Some(&(start, end, idx)) = self.ranges.get(self.last) {
                if start <= addr && addr < end {
                    return idx;
                }
            }
        }
        match self.ranges.binary_search_by(|&(start, end, _)| {
            if addr < start {
                std::cmp::Ordering::Greater
            } else if addr >= end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(pos) => {
                self.last = pos;
                self.ranges[pos].2
            }
            Err(_) => self.other,
        }
    }

    /// Attributes one executed instruction at `addr`.
    pub fn record(&mut self, addr: u32, operations: u64, cycle_delta: u64) {
        let idx = self.bucket_for(addr);
        let p = &mut self.profiles[idx];
        p.instructions += 1;
        p.operations += operations;
        p.cycles += cycle_delta;
    }

    /// Accounts the executed operations of one instruction into the
    /// per-opcode histogram (`nop` fillers are skipped).
    pub(crate) fn note_ops(&mut self, slots: &[DecodedSlot]) {
        for slot in slots {
            if !slot.is_nop {
                *self.opcodes.entry(slot.name).or_insert(0) += 1;
            }
        }
    }

    /// The per-opcode operation histogram, most-executed first (ties broken
    /// alphabetically for deterministic output).
    #[must_use]
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> =
            self.opcodes.iter().map(|(&name, &count)| (name, count)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// The accumulated profiles, hottest (by cycles, then instructions)
    /// first; empty buckets are omitted.
    #[must_use]
    pub fn report(&self) -> Vec<FunctionProfile> {
        let mut out: Vec<FunctionProfile> =
            self.profiles.iter().filter(|p| p.instructions > 0).cloned().collect();
        out.sort_by(|a, b| {
            (b.cycles, b.instructions, &a.name).cmp(&(a.cycles, a.instructions, &b.name))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_elf::FuncEntry;

    fn debug_with(funcs: &[(&str, u32, u32)]) -> DebugInfo {
        let mut d = DebugInfo::new();
        d.funcs = funcs
            .iter()
            .map(|&(name, start, end)| FuncEntry { name: name.into(), start, end, isa: 0 })
            .collect();
        d
    }

    #[test]
    fn attributes_to_containing_function() {
        let d = debug_with(&[("main", 0x100, 0x200), ("helper", 0x200, 0x240)]);
        let mut p = Profiler::new(&d);
        p.record(0x100, 1, 2);
        p.record(0x1FC, 2, 3);
        p.record(0x200, 1, 1);
        p.record(0x500, 1, 1); // outside: <unknown>
        let report = p.report();
        let main = report.iter().find(|f| f.name == "main").unwrap();
        assert_eq!((main.instructions, main.operations, main.cycles), (2, 3, 5));
        let helper = report.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.instructions, 1);
        assert!(report.iter().any(|f| f.name == "<unknown>"));
    }

    #[test]
    fn report_sorts_hottest_first_and_omits_cold() {
        let d = debug_with(&[("a", 0, 0x10), ("b", 0x10, 0x20), ("cold", 0x20, 0x30)]);
        let mut p = Profiler::new(&d);
        p.record(0x0, 1, 1);
        p.record(0x10, 1, 100);
        let report = p.report();
        let names: Vec<&str> = report.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn cache_survives_function_changes() {
        let d = debug_with(&[("a", 0, 0x10), ("b", 0x10, 0x20)]);
        let mut p = Profiler::new(&d);
        for _ in 0..3 {
            p.record(0x0, 1, 0);
            p.record(0x10, 1, 0);
        }
        let report = p.report();
        assert_eq!(report.iter().map(|f| f.instructions).sum::<u64>(), 6);
    }
}
