//! Trace-file generation.
//!
//! Paper §V: "A trace file tracks the behavior of the simulated processor.
//! For each executed operation the cycle number, opcode, input/output
//! register numbers and values, and immediate values are appended to the
//! trace file. The trace file is used to validate our hardware
//! implementation."

use std::io::Write;

/// One executed operation, as recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Retire index of the instruction (functional order). Cycle-model
    /// issue timing is not part of the trace; see
    /// [`crate::observe::SimEvent::OpIssue`] for per-operation issue
    /// cycles.
    pub cycle: u64,
    /// Address of the operation word.
    pub addr: u32,
    /// Issue slot within the instruction.
    pub slot: u8,
    /// Operation mnemonic.
    pub opcode: &'static str,
    /// Input registers and their values at issue.
    pub inputs: Vec<(u8, u32)>,
    /// Output registers and the values written.
    pub outputs: Vec<(u8, u32)>,
    /// Immediate operand, if the encoding has one.
    pub imm: Option<u32>,
}

impl TraceRecord {
    /// Formats the record as one trace line (the interchange format used to
    /// cross-check the cycle-accurate reference model).
    #[must_use]
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{} {:#010x}.{} {}", self.cycle, self.addr, self.slot, self.opcode);
        for (r, v) in &self.inputs {
            let _ = write!(s, " in r{r}={v:#x}");
        }
        for (r, v) in &self.outputs {
            let _ = write!(s, " out r{r}={v:#x}");
        }
        if let Some(imm) = self.imm {
            let _ = write!(s, " imm={imm:#x}");
        }
        s
    }
}

/// Destination for trace records.
///
/// The simulator calls [`TraceSink::record`] once per executed operation.
/// Sinks are `Send` so a tracing [`crate::Simulator`] can migrate between
/// worker threads between runs (serving sessions, campaign cells).
pub trait TraceSink: Send {
    /// Consumes one record.
    fn record(&mut self, record: TraceRecord);
}

/// Collects records in memory (tests, validation harnesses).
#[derive(Debug, Default)]
pub struct VecTraceSink {
    /// The collected records.
    pub records: Vec<TraceRecord>,
}

impl VecTraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecTraceSink::default()
    }
}

impl TraceSink for VecTraceSink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// Streams records as text lines to any [`Write`] implementation (pass
/// `&mut file` to keep ownership).
#[derive(Debug)]
pub struct WriteTraceSink<W> {
    writer: W,
}

impl<W: Write> WriteTraceSink<W> {
    /// Creates a sink writing to `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        WriteTraceSink { writer }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl WriteTraceSink<std::io::BufWriter<std::fs::File>> {
    /// Creates a buffered file sink at `path`, creating missing parent
    /// directories first (a trace path like `out/run1/trace.txt` should
    /// not require a manual `mkdir`).
    ///
    /// # Errors
    ///
    /// Returns an error that names the offending path — either the parent
    /// directory that could not be created (e.g. a path component that
    /// exists as a regular file) or the trace file itself.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot create trace directory {}: {e}", parent.display()),
                )
            })?;
        }
        let file = std::fs::File::create(path).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot create trace file {}: {e}", path.display()),
            )
        })?;
        Ok(WriteTraceSink::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> TraceSink for WriteTraceSink<W> {
    fn record(&mut self, record: TraceRecord) {
        // Trace emission is best-effort; an I/O error must not abort the
        // simulation (matching the paper's fire-and-forget trace file).
        let _ = writeln!(self.writer, "{}", record.to_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecord {
        TraceRecord {
            cycle: 12,
            addr: 0x1_0000,
            slot: 1,
            opcode: "add",
            inputs: vec![(2, 5), (3, 7)],
            outputs: vec![(1, 12)],
            imm: None,
        }
    }

    #[test]
    fn line_format_contains_all_fields() {
        let line = sample().to_line();
        assert!(line.contains("12 0x00010000.1 add"));
        assert!(line.contains("in r2=0x5"));
        assert!(line.contains("in r3=0x7"));
        assert!(line.contains("out r1=0xc"));
        assert!(!line.contains("imm="));
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecTraceSink::new();
        sink.record(sample());
        sink.record(sample());
        assert_eq!(sink.records.len(), 2);
    }

    #[test]
    fn create_makes_missing_parent_directories() {
        let dir = std::env::temp_dir()
            .join(format!("kahrisma-trace-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested/deeper/trace.txt");
        let mut sink = WriteTraceSink::create(&path).expect("parents created");
        sink.record(sample());
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("add"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_reports_the_offending_path() {
        let dir = std::env::temp_dir()
            .join(format!("kahrisma-trace-err-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A path component that exists as a regular file cannot become a
        // directory; the error must name it rather than surface a bare
        // io::Error with no context.
        let blocker = dir.join("file");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let err = WriteTraceSink::create(blocker.join("trace.txt")).unwrap_err();
        assert!(
            err.to_string().contains(&blocker.display().to_string()),
            "error must name the path: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_sink_emits_lines() {
        let mut sink = WriteTraceSink::new(Vec::<u8>::new());
        sink.record(TraceRecord { imm: Some(4), ..sample() });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.ends_with('\n'));
        assert!(text.contains("imm=0x4"));
    }
}
