//! The cycle-approximate, mixed-ISA KAHRISMA instruction-set simulator.
//!
//! This crate is the primary contribution of the reproduced paper (Stripf,
//! Koenig, Becker: *A cycle-approximate, mixed-ISA simulator for the
//! KAHRISMA architecture*, DATE 2012): an interpretation-based instruction
//! set simulator that
//!
//! * emulates every ISA of the KAHRISMA family through per-ISA operation
//!   tables generated from the architecture description (§V),
//! * amortizes the expensive *detect & decode* step with a **decode cache**
//!   (hash map keyed by instruction address) plus a per-instruction
//!   **prediction** of the following decode structure — "comparable to a
//!   1-bit branch predictor in hardware" (§V-A),
//! * executes the parallel operations of a VLIW instruction with
//!   read-before-write register semantics (§V-B),
//! * switches the active ISA at runtime via `switchtarget` (§V-D),
//! * emulates the C standard library natively in the simulator via the
//!   `simop` operation (§V-E),
//! * optionally produces a cycle-by-cycle **trace file** (§V) and maps
//!   instruction addresses back to assembly lines and functions (§V-C), and
//! * approximates execution time with three cycle models (§VI): the
//!   theoretical **ILP** upper bound, **atomic instruction execution**
//!   (AIE), and **dynamic operation execution** (DOE), all fed by a
//!   composable memory-hierarchy delay model (caches, connection limits,
//!   main memory — §VI-D).
//!
//! # Quick start
//!
//! ```
//! use kahrisma_core::{Simulator, SimConfig, RunOutcome};
//!
//! let exe = kahrisma_asm::build(&[(
//!     "main.s",
//!     ".isa risc\n.text\n.global main\n.func main\nmain: li rv, 41\naddi rv, rv, 1\njr ra\n.endfunc\n",
//! )])?;
//! let mut sim = Simulator::new(&exe, SimConfig::default())?;
//! let outcome = sim.run(1_000_000)?;
//! assert_eq!(outcome, RunOutcome::Halted { exit_code: 42 });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod cycles;
pub mod observe;

mod decode;
mod error;
mod exec;
mod ir;
mod libc_emu;
mod mem;
mod profile;
mod shared;
mod sim;
mod snapwire;
mod state;
mod stats;
mod trace;

pub use decode::{DecodeCache, DecodedInstr, DecodedSlot};
pub use error::SimError;
pub use mem::Memory;
pub use observe::{Observer, OpIssue, SimEvent, VecObserver};
pub use profile::{FunctionProfile, Profiler};
pub use shared::{DEFAULT_SHARED_BASE, DEFAULT_SHARED_LEN, SharedMem, SharedPort};
pub use sim::{RunOutcome, SimConfig, Simulator, Snapshot, TierMode};
pub use snapwire::{SNAPWIRE_VERSION, SnapWireError};
pub use state::{CpuState, FabricOp};
pub use stats::{STATS_SCHEMA_VERSION, SimStats, StatValue, StatsReport, Throughput};
pub use trace::{TraceRecord, TraceSink, VecTraceSink, WriteTraceSink};

pub use cycles::{
    AccessKind, AieModel, BranchPredictor, BranchPredictorConfig, CacheConfig, CacheModule,
    CacheStats, ConnectionLimit, CycleModel, CycleModelKind, CycleStats, DoeModel, IlpModel,
    InstrEvent, MainMemory, MemGeometry, MemoryHierarchy, MemoryLevelStats, MemoryModule, OpEvent,
    PredictorKind,
};
