//! Native C-standard-library emulation.
//!
//! Paper §V-E: "Within the simulator an emulated library function has direct
//! access to the register file and memory. It reads the input parameters
//! from the registers and stack according to the calling convention,
//! executes the corresponding C library function natively, and writes the
//! result back to the registers."

use kahrisma_isa::abi;
use kahrisma_isa::simop::SimOpCode;

use crate::error::SimError;
use crate::state::{CpuState, FabricOp};

/// Executes the emulated library function `code` against `state`.
///
/// # Errors
///
/// Returns [`SimError::UnknownSimOp`] for an undefined code and
/// [`SimError::Aborted`] for `abort()`.
pub(crate) fn do_simop(state: &mut CpuState, code: u32, addr: u32) -> Result<(), SimError> {
    let op = SimOpCode::from_code(code).ok_or(SimError::UnknownSimOp { code, addr })?;
    let a0 = state.reg(abi::A0);
    let a1 = state.reg(abi::A0 + 1);
    let a2 = state.reg(abi::A0 + 2);
    match op {
        SimOpCode::Exit => {
            state.halted = true;
            state.exit_code = a0;
        }
        SimOpCode::PutChar => {
            state.stdout.push(a0 as u8);
            state.write_reg(abi::RV, a0);
        }
        SimOpCode::PrintInt => {
            let s = (a0 as i32).to_string();
            state.stdout.extend_from_slice(s.as_bytes());
            state.write_reg(abi::RV, s.len() as u32);
        }
        SimOpCode::PrintUint => {
            let s = a0.to_string();
            state.stdout.extend_from_slice(s.as_bytes());
            state.write_reg(abi::RV, s.len() as u32);
        }
        SimOpCode::PrintHex => {
            let s = format!("{a0:#x}");
            state.stdout.extend_from_slice(s.as_bytes());
            state.write_reg(abi::RV, s.len() as u32);
        }
        SimOpCode::Puts => {
            let bytes = state.mem.read_cstr(a0, 1 << 20);
            state.stdout.extend_from_slice(&bytes);
            state.stdout.push(b'\n');
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::Malloc => {
            // Bump allocator over the simulated heap, 8-byte aligned.
            let base = (state.heap_ptr + 7) & !7;
            state.heap_ptr = base.wrapping_add(a0.max(1));
            state.write_reg(abi::RV, base);
        }
        SimOpCode::Free => {
            // The bump allocator never reclaims; free is a no-op, as in many
            // embedded C libraries.
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::Memcpy => {
            let bytes = state.mem.read_bytes(a1, a2 as usize);
            state.mem.write_bytes(a0, &bytes);
            state.write_reg(abi::RV, a0);
        }
        SimOpCode::Memset => {
            let fill = vec![a1 as u8; a2 as usize];
            state.mem.write_bytes(a0, &fill);
            state.write_reg(abi::RV, a0);
        }
        SimOpCode::Srand => {
            state.rng_state = u64::from(a0) | 1;
        }
        SimOpCode::Rand => {
            let v = state.next_rand();
            state.write_reg(abi::RV, v);
        }
        SimOpCode::Clock => {
            state.write_reg(abi::RV, state.retired_instructions as u32);
        }
        SimOpCode::GetChar => {
            let v = if state.stdin_pos < state.stdin.len() {
                let b = state.stdin[state.stdin_pos];
                state.stdin_pos += 1;
                u32::from(b)
            } else {
                u32::MAX // EOF = -1
            };
            state.write_reg(abi::RV, v);
        }
        SimOpCode::Abort => return Err(SimError::Aborted),
        SimOpCode::CoreId => {
            state.write_reg(abi::RV, state.core_id);
        }
        SimOpCode::CoreCount => {
            state.write_reg(abi::RV, state.core_count);
        }
        SimOpCode::SpawnArg => {
            state.write_reg(abi::RV, state.spawn_arg);
        }
        // The synchronization simops only have a well-defined global order
        // at fabric quantum barriers; on a multi-core fabric they stall the
        // core with a pending operation. Standalone (core_count == 1) they
        // degrade to no-ops so single-threaded fallback paths in workloads
        // run unchanged.
        SimOpCode::Spawn => {
            if state.core_count > 1 {
                state.pending_fabric = Some(FabricOp::Spawn { core: a0, entry: a1, arg: a2 });
            }
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::Park => {
            if state.core_count > 1 {
                state.pending_fabric = Some(FabricOp::Park);
            }
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::Join => {
            if state.core_count > 1 {
                state.pending_fabric = Some(FabricOp::Join { core: a0 });
            }
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::Barrier => {
            if state.core_count > 1 {
                state.pending_fabric = Some(FabricOp::Barrier);
            }
            state.write_reg(abi::RV, 0);
        }
        SimOpCode::SharedBase => {
            let base = state
                .mem
                .shared_port()
                .map_or(crate::shared::DEFAULT_SHARED_BASE, crate::shared::SharedPort::base);
            state.write_reg(abi::RV, base);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_isa::isa_id;

    fn state() -> CpuState {
        CpuState::new(0, isa_id::RISC, 0x0010_0000)
    }

    fn call(state: &mut CpuState, op: SimOpCode, args: &[u32]) -> Result<(), SimError> {
        for (i, &v) in args.iter().enumerate() {
            state.write_reg(abi::A0 + i as u8, v);
        }
        do_simop(state, op.code(), 0)
    }

    #[test]
    fn exit_halts_with_code() {
        let mut s = state();
        call(&mut s, SimOpCode::Exit, &[7]).unwrap();
        assert!(s.halted);
        assert_eq!(s.exit_code, 7);
    }

    #[test]
    fn output_functions_write_stdout() {
        let mut s = state();
        call(&mut s, SimOpCode::PutChar, &[u32::from(b'X')]).unwrap();
        call(&mut s, SimOpCode::PrintInt, &[(-42i32) as u32]).unwrap();
        call(&mut s, SimOpCode::PrintUint, &[42]).unwrap();
        call(&mut s, SimOpCode::PrintHex, &[255]).unwrap();
        assert_eq!(s.stdout_string(), "X-42420xff");
    }

    #[test]
    fn puts_reads_simulated_memory() {
        let mut s = state();
        s.mem.write_bytes(0x5000, b"hey\0");
        call(&mut s, SimOpCode::Puts, &[0x5000]).unwrap();
        assert_eq!(s.stdout_string(), "hey\n");
    }

    #[test]
    fn malloc_bumps_aligned() {
        let mut s = state();
        call(&mut s, SimOpCode::Malloc, &[10]).unwrap();
        let p1 = s.reg(abi::RV);
        call(&mut s, SimOpCode::Malloc, &[4]).unwrap();
        let p2 = s.reg(abi::RV);
        assert_eq!(p1 % 8, 0);
        assert_eq!(p2 % 8, 0);
        assert!(p2 >= p1 + 10);
        call(&mut s, SimOpCode::Free, &[p1]).unwrap(); // no-op, must not fail
    }

    #[test]
    fn memcpy_and_memset() {
        let mut s = state();
        s.mem.write_bytes(0x100, b"abcdef");
        call(&mut s, SimOpCode::Memcpy, &[0x200, 0x100, 6]).unwrap();
        assert_eq!(s.mem.read_bytes(0x200, 6), b"abcdef");
        assert_eq!(s.reg(abi::RV), 0x200);
        call(&mut s, SimOpCode::Memset, &[0x200, u32::from(b'z'), 3]).unwrap();
        assert_eq!(s.mem.read_bytes(0x200, 6), b"zzzdef");
    }

    #[test]
    fn memcpy_handles_overlap_via_buffer() {
        let mut s = state();
        s.mem.write_bytes(0x100, b"abcd");
        call(&mut s, SimOpCode::Memcpy, &[0x102, 0x100, 4]).unwrap();
        assert_eq!(s.mem.read_bytes(0x100, 6), b"ababcd");
    }

    #[test]
    fn rand_respects_seed() {
        let mut a = state();
        let mut b = state();
        call(&mut a, SimOpCode::Srand, &[123]).unwrap();
        call(&mut b, SimOpCode::Srand, &[123]).unwrap();
        for _ in 0..10 {
            call(&mut a, SimOpCode::Rand, &[]).unwrap();
            let va = a.reg(abi::RV);
            call(&mut b, SimOpCode::Rand, &[]).unwrap();
            assert_eq!(va, b.reg(abi::RV));
        }
    }

    #[test]
    fn getchar_consumes_stdin_then_eof() {
        let mut s = state();
        s.set_stdin(*b"ab");
        call(&mut s, SimOpCode::GetChar, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), u32::from(b'a'));
        call(&mut s, SimOpCode::GetChar, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), u32::from(b'b'));
        call(&mut s, SimOpCode::GetChar, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), u32::MAX);
    }

    #[test]
    fn clock_reports_instruction_count() {
        let mut s = state();
        s.retired_instructions = 99;
        call(&mut s, SimOpCode::Clock, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), 99);
    }

    #[test]
    fn fabric_identity_simops_read_state() {
        let mut s = state();
        s.core_id = 3;
        s.core_count = 4;
        s.spawn_arg = 0xBEEF;
        call(&mut s, SimOpCode::CoreId, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), 3);
        call(&mut s, SimOpCode::CoreCount, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), 4);
        call(&mut s, SimOpCode::SpawnArg, &[]).unwrap();
        assert_eq!(s.reg(abi::RV), 0xBEEF);
    }

    #[test]
    fn sync_simops_are_noops_standalone() {
        let mut s = state();
        for op in [SimOpCode::Spawn, SimOpCode::Park, SimOpCode::Join, SimOpCode::Barrier] {
            call(&mut s, op, &[1, 2, 3]).unwrap();
            assert!(!s.fabric_stalled(), "{op:?} must not stall a standalone core");
        }
    }

    #[test]
    fn sync_simops_stall_on_a_fabric() {
        let mut s = state();
        s.core_count = 2;
        call(&mut s, SimOpCode::Spawn, &[1, 0x4000, 9]).unwrap();
        assert_eq!(
            s.pending_fabric,
            Some(FabricOp::Spawn { core: 1, entry: 0x4000, arg: 9 })
        );
        s.pending_fabric = None;
        call(&mut s, SimOpCode::Barrier, &[]).unwrap();
        assert_eq!(s.pending_fabric, Some(FabricOp::Barrier));
    }

    #[test]
    fn abort_and_unknown_are_errors() {
        let mut s = state();
        assert_eq!(call(&mut s, SimOpCode::Abort, &[]), Err(SimError::Aborted));
        assert!(matches!(
            do_simop(&mut s, 9999, 0x40),
            Err(SimError::UnknownSimOp { code: 9999, addr: 0x40 })
        ));
    }
}
