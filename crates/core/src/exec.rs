//! Instruction execution (the generated simulation functions).
//!
//! In the paper's framework TargetGen generates one simulation function per
//! operation from its ADL semantics fragment; here decode resolves each
//! operation to a precompiled [`ExecKind`] plus function pointer (see
//! `decode.rs`), and execution dispatches over that compact vocabulary —
//! the same role with the declarative re-interpretation hoisted out of the
//! hot loop. Parallel VLIW operations follow the paper's §V-B semantics:
//! "It is important that the registers of all parallel operations are
//! loaded before any operation writes back its results" — all slot results
//! are computed into pending buffers first (the paper's stack locals) and
//! committed afterwards.
//!
//! Two entry points exist: [`execute_instr`] is the full-featured path
//! (cycle-model events, tracing, branch-predictor modelling), and
//! [`execute_instr_fast`] is the single-issue direct-commit path used by
//! the superblock loop when no observer is attached.

use kahrisma_isa::abi;
use kahrisma_isa::adl::{AtomicOp, Behavior, IsaId, MemWidth};

use crate::cycles::{AccessKind, BranchPredictor, OpEvent};
use crate::decode::{DecodedInstr, DecodedSlot, ExecKind};
use crate::error::SimError;
use crate::libc_emu::do_simop;
use crate::state::{CpuState, FabricOp};
use crate::stats::SimStats;
use crate::trace::{TraceRecord, TraceSink};

/// Side effects of one instruction, applied at commit, plus the per-slot
/// trace scratch buffers. All vectors are reused across instructions (owned
/// by the simulator) to keep the hot loop allocation-free.
#[derive(Debug, Default)]
pub(crate) struct Pending {
    reg_writes: Vec<(u8, u32)>,
    stores: Vec<(u32, u32, MemWidth)>,
    /// Trace scratch: input registers read by the current slot. Only
    /// populated while a trace sink is attached.
    tr_inputs: Vec<(u8, u32)>,
    /// Trace scratch: output registers written by the current slot.
    tr_outputs: Vec<(u8, u32)>,
    new_ip: Option<u32>,
    isa_switch: Option<u8>,
    simop: Option<(u32, u32)>, // (code, op address)
    atomic: Option<(u8, AtomicOp, u32, u32)>, // (rd, op, addr, operand)
    halt: bool,
}

impl Pending {
    fn reset(&mut self) {
        self.reg_writes.clear();
        self.stores.clear();
        self.new_ip = None;
        self.isa_switch = None;
        self.simop = None;
        self.atomic = None;
        self.halt = false;
    }
}

/// Resolves a word atomic. On a single-core simulator (or for addresses
/// outside the shared window) this is an immediate read-modify-write; on a
/// multi-core fabric an atomic whose word lies entirely inside the shared
/// window must be globally ordered, so it is parked in
/// [`CpuState::pending_fabric`] and the core stalls until the quantum
/// barrier resolves it. Atomics that merely straddle the shared-window edge
/// degrade to a local (non-globally-ordered) read-modify-write, which is
/// still deterministic because the straddled bytes commit through the
/// ordinary write log.
#[inline]
fn do_atomic(state: &mut CpuState, rd: u8, op: AtomicOp, addr: u32, operand: u32) {
    if state.core_count > 1 && state.mem.shared_covers_word(addr) {
        state.pending_fabric = Some(FabricOp::Atomic { rd, op, addr, operand });
    } else {
        let old = state.mem.read_word(addr);
        state.note_code_write(addr);
        state.mem.write_word(addr, op.apply(old, operand));
        state.write_reg(rd, old);
    }
}

/// Loads a value of the slot's width from memory, sign- or zero-extending.
#[inline]
fn do_load(state: &CpuState, kind: ExecKind, addr: u32) -> u32 {
    match kind {
        ExecKind::LoadByteSigned => state.mem.read_byte(addr) as i8 as i32 as u32,
        ExecKind::LoadByteUnsigned => u32::from(state.mem.read_byte(addr)),
        ExecKind::LoadHalfSigned => state.mem.read_half(addr) as i16 as i32 as u32,
        ExecKind::LoadHalfUnsigned => u32::from(state.mem.read_half(addr)),
        _ => state.mem.read_word(addr),
    }
}

fn unsupported(instr: &DecodedInstr, op_addr: u32) -> SimError {
    SimError::IllegalInstruction {
        addr: op_addr,
        word: 0,
        isa: instr.isa.value(),
        context: Some("unsupported behavior".into()),
    }
}

/// Executes one decoded instruction against `state` (full-featured path).
///
/// Fills `events` (cleared first) with one [`OpEvent`] per slot for the
/// cycle models, appends trace records to `trace` when provided, and
/// updates `stats`.
// The parameters are disjoint `Simulator` fields passed individually so the
// hot loop can split-borrow them; a context struct would force whole-struct
// borrows at every call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_instr(
    state: &mut CpuState,
    instr: &DecodedInstr,
    slots: &[DecodedSlot],
    events: &mut Vec<OpEvent>,
    pending: &mut Pending,
    predictor: &mut Option<BranchPredictor>,
    trace: &mut Option<Box<dyn TraceSink>>,
    stats: &mut SimStats,
) -> Result<(), SimError> {
    events.clear();
    pending.reset();
    let instr_size = instr.size();
    let next_seq_ip = instr.addr.wrapping_add(instr_size);
    let want_trace = trace.is_some();

    for (slot_idx, slot) in slots.iter().enumerate() {
        let op_addr = instr.addr.wrapping_add((slot_idx as u32) * 4);
        // The event template was prebuilt at decode time; only the dynamic
        // fields (memory address, misprediction penalty) are patched below.
        let mut event = slot.event;
        let mut tr_imm: Option<u32> = None;
        if want_trace {
            pending.tr_inputs.clear();
            pending.tr_outputs.clear();
        }

        macro_rules! input {
            ($r:expr) => {{
                let r = $r;
                let v = state.reg(r);
                if want_trace {
                    pending.tr_inputs.push((r, v));
                }
                v
            }};
        }
        macro_rules! output {
            ($r:expr, $v:expr) => {{
                let r = $r;
                let v = $v;
                pending.reg_writes.push((r, v));
                if want_trace {
                    pending.tr_outputs.push((r, v));
                }
            }};
        }
        macro_rules! take_branch {
            ($target:expr) => {{
                if pending.new_ip.is_none() {
                    pending.new_ip = Some($target);
                    stats.taken_branches += 1;
                }
            }};
        }

        match slot.exec {
            ExecKind::Nop => {
                stats.nops += 1;
            }
            ExecKind::Alu => {
                let a = input!(slot.rs1);
                let b = input!(slot.rs2);
                output!(slot.rd, (slot.fun)(a, b));
                stats.operations += 1;
            }
            ExecKind::AluImm => {
                let a = input!(slot.rs1);
                tr_imm = Some(slot.imm);
                output!(slot.rd, (slot.fun)(a, slot.imm));
                stats.operations += 1;
            }
            ExecKind::Lui => {
                tr_imm = Some(slot.imm);
                output!(slot.rd, slot.imm << 13);
                stats.operations += 1;
            }
            ExecKind::LoadByteSigned
            | ExecKind::LoadByteUnsigned
            | ExecKind::LoadHalfSigned
            | ExecKind::LoadHalfUnsigned
            | ExecKind::LoadWord => {
                let base = input!(slot.rs1);
                let addr = base.wrapping_add(slot.imm);
                tr_imm = Some(slot.imm);
                output!(slot.rd, do_load(state, slot.exec, addr));
                event.mem = Some((addr, AccessKind::Read));
                stats.operations += 1;
                stats.mem_reads += 1;
            }
            ExecKind::StoreByte | ExecKind::StoreHalf | ExecKind::StoreWord => {
                let base = input!(slot.rs1);
                let value = input!(slot.rs2);
                let addr = base.wrapping_add(slot.imm);
                tr_imm = Some(slot.imm);
                let width = match slot.exec {
                    ExecKind::StoreByte => MemWidth::Byte,
                    ExecKind::StoreHalf => MemWidth::Half,
                    _ => MemWidth::Word,
                };
                pending.stores.push((addr, value, width));
                event.mem = Some((addr, AccessKind::Write));
                stats.operations += 1;
                stats.mem_writes += 1;
            }
            ExecKind::Branch => {
                let a = input!(slot.rs1);
                let b = input!(slot.rs2);
                tr_imm = Some(slot.imm);
                let taken = (slot.fun)(a, b) != 0;
                if let Some(p) = predictor.as_mut() {
                    let backward = (slot.imm as i32) < 0;
                    if p.observe(op_addr, taken, backward, true) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                if taken {
                    take_branch!(slot.target);
                }
                stats.operations += 1;
            }
            ExecKind::Jump => {
                tr_imm = Some(slot.imm);
                take_branch!(slot.target);
                stats.operations += 1;
            }
            ExecKind::JumpAndLink => {
                tr_imm = Some(slot.imm);
                output!(abi::RA, next_seq_ip);
                take_branch!(slot.target);
                stats.operations += 1;
            }
            ExecKind::JumpReg => {
                let target = input!(slot.rs1);
                if let Some(p) = predictor.as_mut() {
                    // Indirect target: only a perfect predictor hits.
                    if p.observe(op_addr, true, false, false) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                take_branch!(target);
                stats.operations += 1;
            }
            ExecKind::JumpAndLinkReg => {
                let target = input!(slot.rs1);
                output!(slot.rd, next_seq_ip);
                if let Some(p) = predictor.as_mut() {
                    if p.observe(op_addr, true, false, false) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                take_branch!(target);
                stats.operations += 1;
            }
            ExecKind::SwitchTarget => {
                tr_imm = Some(slot.imm);
                if slot.imm > 255 {
                    return Err(SimError::UnknownIsa { isa: u8::MAX, addr: op_addr });
                }
                pending.isa_switch = Some(slot.imm as u8);
                stats.operations += 1;
                stats.isa_switches += 1;
            }
            ExecKind::SimOp => {
                tr_imm = Some(slot.imm);
                pending.simop = Some((slot.imm, op_addr));
                stats.operations += 1;
                stats.simops += 1;
            }
            ExecKind::Atomic => {
                let Behavior::Atomic(op) = slot.behavior else {
                    return Err(unsupported(instr, op_addr));
                };
                let addr = input!(slot.rs1);
                let operand = input!(slot.rs2);
                pending.atomic = Some((slot.rd, op, addr, operand));
                event.mem = Some((addr, AccessKind::Write));
                stats.operations += 1;
                stats.mem_reads += 1;
                stats.mem_writes += 1;
            }
            ExecKind::Halt => {
                pending.halt = true;
                stats.operations += 1;
            }
            ExecKind::Unsupported => {
                return Err(unsupported(instr, op_addr));
            }
        }

        events.push(event);
        if let Some(t) = trace.as_mut() {
            t.record(TraceRecord {
                cycle: state.retired_instructions,
                addr: op_addr,
                slot: slot_idx as u8,
                opcode: slot.name,
                inputs: pending.tr_inputs.clone(),
                outputs: pending.tr_outputs.clone(),
                imm: tr_imm,
            });
        }
    }

    commit(state, pending, next_seq_ip)?;
    state.retired_instructions += 1;
    stats.instructions += 1;
    Ok(())
}

/// Commit phase: register writes first (parallel read-before-write
/// semantics), then memory, then control and mode changes.
#[inline]
fn commit(state: &mut CpuState, pending: &mut Pending, next_seq_ip: u32) -> Result<(), SimError> {
    for (r, v) in pending.reg_writes.drain(..) {
        state.write_reg(r, v);
    }
    for (addr, value, width) in pending.stores.drain(..) {
        state.note_code_write(addr);
        match width {
            MemWidth::Byte => state.mem.write_byte(addr, value as u8),
            MemWidth::Half => state.mem.write_half(addr, value as u16),
            MemWidth::Word => state.mem.write_word(addr, value),
        }
    }
    state.ip = pending.new_ip.unwrap_or(next_seq_ip);
    if let Some(isa) = pending.isa_switch {
        state.active_isa = IsaId::new(isa);
    }
    if let Some((rd, op, addr, operand)) = pending.atomic.take() {
        do_atomic(state, rd, op, addr, operand);
    }
    if let Some((code, addr)) = pending.simop {
        do_simop(state, code, addr)?;
    }
    if pending.halt {
        state.halted = true;
        state.exit_code = state.reg(abi::RV);
    }
    Ok(())
}

/// Executes one single-issue decoded instruction with direct commit: no
/// cycle-model events, no tracing, no branch-predictor modelling, no
/// pending buffers. Only valid for `width == 1` instructions (one slot
/// cannot race itself, so read-before-write holds trivially); the caller
/// routes wider bundles through [`execute_instr`].
///
/// Observable effects (architectural state, stats, commit ordering, error
/// behavior) are identical to [`execute_instr`] without observers attached.
pub(crate) fn execute_instr_fast(
    state: &mut CpuState,
    instr: &DecodedInstr,
    slots: &[DecodedSlot],
    stats: &mut SimStats,
) -> Result<(), SimError> {
    debug_assert_eq!(instr.width, 1);
    let slot = &slots[0];
    let next_seq_ip = instr.addr.wrapping_add(4);
    let mut new_ip = next_seq_ip;
    let mut simop = false;
    let mut atomic: Option<(u8, AtomicOp, u32, u32)> = None;
    let mut halt = false;

    match slot.exec {
        ExecKind::Nop => {
            stats.nops += 1;
        }
        ExecKind::Alu => {
            let v = (slot.fun)(state.reg(slot.rs1), state.reg(slot.rs2));
            state.write_reg(slot.rd, v);
            stats.operations += 1;
        }
        ExecKind::AluImm => {
            let v = (slot.fun)(state.reg(slot.rs1), slot.imm);
            state.write_reg(slot.rd, v);
            stats.operations += 1;
        }
        ExecKind::Lui => {
            state.write_reg(slot.rd, slot.imm << 13);
            stats.operations += 1;
        }
        ExecKind::LoadByteSigned
        | ExecKind::LoadByteUnsigned
        | ExecKind::LoadHalfSigned
        | ExecKind::LoadHalfUnsigned
        | ExecKind::LoadWord => {
            let addr = state.reg(slot.rs1).wrapping_add(slot.imm);
            let v = do_load(state, slot.exec, addr);
            state.write_reg(slot.rd, v);
            stats.operations += 1;
            stats.mem_reads += 1;
        }
        ExecKind::StoreByte => {
            let addr = state.reg(slot.rs1).wrapping_add(slot.imm);
            state.note_code_write(addr);
            state.mem.write_byte(addr, state.reg(slot.rs2) as u8);
            stats.operations += 1;
            stats.mem_writes += 1;
        }
        ExecKind::StoreHalf => {
            let addr = state.reg(slot.rs1).wrapping_add(slot.imm);
            state.note_code_write(addr);
            state.mem.write_half(addr, state.reg(slot.rs2) as u16);
            stats.operations += 1;
            stats.mem_writes += 1;
        }
        ExecKind::StoreWord => {
            let addr = state.reg(slot.rs1).wrapping_add(slot.imm);
            state.note_code_write(addr);
            state.mem.write_word(addr, state.reg(slot.rs2));
            stats.operations += 1;
            stats.mem_writes += 1;
        }
        ExecKind::Branch => {
            if (slot.fun)(state.reg(slot.rs1), state.reg(slot.rs2)) != 0 {
                new_ip = slot.target;
                stats.taken_branches += 1;
            }
            stats.operations += 1;
        }
        ExecKind::Jump => {
            new_ip = slot.target;
            stats.taken_branches += 1;
            stats.operations += 1;
        }
        ExecKind::JumpAndLink => {
            state.write_reg(abi::RA, next_seq_ip);
            new_ip = slot.target;
            stats.taken_branches += 1;
            stats.operations += 1;
        }
        ExecKind::JumpReg => {
            new_ip = state.reg(slot.rs1);
            stats.taken_branches += 1;
            stats.operations += 1;
        }
        ExecKind::JumpAndLinkReg => {
            new_ip = state.reg(slot.rs1);
            state.write_reg(slot.rd, next_seq_ip);
            stats.taken_branches += 1;
            stats.operations += 1;
        }
        ExecKind::SwitchTarget => {
            if slot.imm > 255 {
                return Err(SimError::UnknownIsa { isa: u8::MAX, addr: instr.addr });
            }
            stats.operations += 1;
            stats.isa_switches += 1;
            state.ip = next_seq_ip;
            state.active_isa = IsaId::new(slot.imm as u8);
            state.retired_instructions += 1;
            stats.instructions += 1;
            return Ok(());
        }
        ExecKind::SimOp => {
            stats.operations += 1;
            stats.simops += 1;
            simop = true;
        }
        ExecKind::Atomic => {
            let Behavior::Atomic(op) = slot.behavior else {
                return Err(unsupported(instr, instr.addr));
            };
            atomic = Some((slot.rd, op, state.reg(slot.rs1), state.reg(slot.rs2)));
            stats.operations += 1;
            stats.mem_reads += 1;
            stats.mem_writes += 1;
        }
        ExecKind::Halt => {
            stats.operations += 1;
            halt = true;
        }
        ExecKind::Unsupported => {
            return Err(unsupported(instr, instr.addr));
        }
    }

    state.ip = new_ip;
    if let Some((rd, op, addr, operand)) = atomic {
        do_atomic(state, rd, op, addr, operand);
    }
    if simop {
        do_simop(state, slot.imm, instr.addr)?;
    }
    if halt {
        state.halted = true;
        state.exit_code = state.reg(abi::RV);
    }
    state.retired_instructions += 1;
    stats.instructions += 1;
    Ok(())
}
