//! Instruction execution (the generated simulation functions).
//!
//! In the paper's framework TargetGen generates one simulation function per
//! operation from its ADL semantics fragment; here the closed [`Behavior`]
//! vocabulary drives a single dispatch that plays the same role. Parallel
//! VLIW operations follow the paper's §V-B semantics: "It is important that
//! the registers of all parallel operations are loaded before any operation
//! writes back its results" — all slot results are computed into pending
//! buffers first (the paper's stack locals) and committed afterwards.

use kahrisma_isa::abi;
use kahrisma_isa::adl::{Behavior, IsaId, MemWidth};

use crate::cycles::{AccessKind, BranchPredictor, OpEvent};
use crate::decode::DecodedInstr;
use crate::error::SimError;
use crate::libc_emu::do_simop;
use crate::state::CpuState;
use crate::stats::SimStats;
use crate::trace::{TraceRecord, TraceSink};

/// Side effects of one instruction, applied at commit. The vectors are
/// reused across instructions (owned by the simulator) to keep the hot loop
/// allocation-free.
#[derive(Debug, Default)]
pub(crate) struct Pending {
    reg_writes: Vec<(u8, u32)>,
    stores: Vec<(u32, u32, MemWidth)>,
    new_ip: Option<u32>,
    isa_switch: Option<u8>,
    simop: Option<(u32, u32)>, // (code, op address)
    halt: bool,
}

impl Pending {
    fn reset(&mut self) {
        self.reg_writes.clear();
        self.stores.clear();
        self.new_ip = None;
        self.isa_switch = None;
        self.simop = None;
        self.halt = false;
    }
}

/// Executes one decoded instruction against `state`.
///
/// Fills `events` (cleared first) with one [`OpEvent`] per slot for the
/// cycle models, appends trace records to `trace` when provided, and
/// updates `stats`.
pub(crate) fn execute_instr(
    state: &mut CpuState,
    instr: &DecodedInstr,
    events: &mut Vec<OpEvent>,
    pending: &mut Pending,
    predictor: &mut Option<BranchPredictor>,
    trace: &mut Option<Box<dyn TraceSink>>,
    stats: &mut SimStats,
) -> Result<(), SimError> {
    events.clear();
    pending.reset();
    let instr_size = instr.size();
    let next_seq_ip = instr.addr.wrapping_add(instr_size);

    for (slot_idx, slot) in instr.slots.iter().enumerate() {
        let slot_u8 = slot_idx as u8;
        let op_addr = instr.addr.wrapping_add((slot_idx as u32) * 4);
        let mut event = OpEvent {
            slot: slot_u8,
            srcs: slot.srcs,
            nsrcs: slot.nsrcs,
            dst: slot.dst,
            delay: slot.delay,
            mem: None,
            is_branch: false,
            serialize: false,
            is_nop: slot.is_nop,
            is_muldiv: matches!(
                slot.behavior.fu_class(),
                kahrisma_isa::adl::FuClass::MulDiv
            ),
            mispredict_penalty: 0,
        };
        let mut tr_inputs: Vec<(u8, u32)> = Vec::new();
        let mut tr_outputs: Vec<(u8, u32)> = Vec::new();
        let mut tr_imm: Option<u32> = None;

        let want_trace = trace.is_some();
        macro_rules! input {
            ($r:expr) => {{
                let r = $r;
                let v = state.reg(r);
                if want_trace {
                    tr_inputs.push((r, v));
                }
                v
            }};
        }
        macro_rules! output {
            ($r:expr, $v:expr) => {{
                let r = $r;
                let v = $v;
                pending.reg_writes.push((r, v));
                if want_trace {
                    tr_outputs.push((r, v));
                }
            }};
        }

        match slot.behavior {
            Behavior::Nop => {
                stats.nops += 1;
            }
            Behavior::IntAlu(op) => {
                let a = input!(slot.rs1);
                let b = input!(slot.rs2);
                output!(slot.rd, op.eval(a, b));
                stats.operations += 1;
            }
            Behavior::IntAluImm(op) => {
                let a = input!(slot.rs1);
                tr_imm = Some(slot.imm);
                output!(slot.rd, op.eval(a, slot.imm));
                stats.operations += 1;
            }
            Behavior::LoadUpperImm => {
                tr_imm = Some(slot.imm);
                output!(slot.rd, slot.imm << 13);
                stats.operations += 1;
            }
            Behavior::Load { width, signed } => {
                let base = input!(slot.rs1);
                let addr = base.wrapping_add(slot.imm);
                tr_imm = Some(slot.imm);
                let raw = match width {
                    MemWidth::Byte => u32::from(state.mem.read_byte(addr)),
                    MemWidth::Half => u32::from(state.mem.read_half(addr)),
                    MemWidth::Word => state.mem.read_word(addr),
                };
                let value = if signed {
                    match width {
                        MemWidth::Byte => (raw as u8 as i8) as i32 as u32,
                        MemWidth::Half => (raw as u16 as i16) as i32 as u32,
                        MemWidth::Word => raw,
                    }
                } else {
                    raw
                };
                output!(slot.rd, value);
                event.mem = Some((addr, AccessKind::Read));
                stats.operations += 1;
                stats.mem_reads += 1;
            }
            Behavior::Store { width } => {
                let base = input!(slot.rs1);
                let value = input!(slot.rs2);
                let addr = base.wrapping_add(slot.imm);
                tr_imm = Some(slot.imm);
                pending.stores.push((addr, value, width));
                event.mem = Some((addr, AccessKind::Write));
                stats.operations += 1;
                stats.mem_writes += 1;
            }
            Behavior::Branch(cond) => {
                let a = input!(slot.rs1);
                let b = input!(slot.rs2);
                tr_imm = Some(slot.imm);
                event.is_branch = true;
                let taken = cond.eval(a, b);
                if let Some(p) = predictor.as_mut() {
                    let backward = (slot.imm as i32) < 0;
                    if p.observe(op_addr, taken, backward, true) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                if taken && pending.new_ip.is_none() {
                    pending.new_ip = Some(op_addr.wrapping_add(slot.imm.wrapping_mul(4)));
                    stats.taken_branches += 1;
                }
                stats.operations += 1;
            }
            Behavior::Jump => {
                tr_imm = Some(slot.imm);
                event.is_branch = true;
                if pending.new_ip.is_none() {
                    pending.new_ip = Some(slot.imm.wrapping_mul(4));
                    stats.taken_branches += 1;
                }
                stats.operations += 1;
            }
            Behavior::JumpAndLink => {
                tr_imm = Some(slot.imm);
                event.is_branch = true;
                output!(abi::RA, next_seq_ip);
                if pending.new_ip.is_none() {
                    pending.new_ip = Some(slot.imm.wrapping_mul(4));
                    stats.taken_branches += 1;
                }
                stats.operations += 1;
            }
            Behavior::JumpReg => {
                let target = input!(slot.rs1);
                event.is_branch = true;
                if let Some(p) = predictor.as_mut() {
                    // Indirect target: only a perfect predictor hits.
                    if p.observe(op_addr, true, false, false) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                if pending.new_ip.is_none() {
                    pending.new_ip = Some(target);
                    stats.taken_branches += 1;
                }
                stats.operations += 1;
            }
            Behavior::JumpAndLinkReg => {
                let target = input!(slot.rs1);
                event.is_branch = true;
                output!(slot.rd, next_seq_ip);
                if let Some(p) = predictor.as_mut() {
                    if p.observe(op_addr, true, false, false) {
                        event.mispredict_penalty = p.penalty();
                    }
                }
                if pending.new_ip.is_none() {
                    pending.new_ip = Some(target);
                    stats.taken_branches += 1;
                }
                stats.operations += 1;
            }
            Behavior::SwitchTarget => {
                tr_imm = Some(slot.imm);
                event.serialize = true;
                if slot.imm > 255 {
                    return Err(SimError::UnknownIsa { isa: u8::MAX, addr: op_addr });
                }
                pending.isa_switch = Some(slot.imm as u8);
                stats.operations += 1;
                stats.isa_switches += 1;
            }
            Behavior::SimOp => {
                tr_imm = Some(slot.imm);
                event.serialize = true;
                pending.simop = Some((slot.imm, op_addr));
                stats.operations += 1;
                stats.simops += 1;
            }
            Behavior::Halt => {
                event.serialize = true;
                pending.halt = true;
                stats.operations += 1;
            }
            _ => {
                return Err(SimError::IllegalInstruction {
                    addr: op_addr,
                    word: 0,
                    isa: instr.isa.value(),
                    context: Some("unsupported behavior".into()),
                });
            }
        }

        events.push(event);
        if let Some(t) = trace.as_mut() {
            t.record(TraceRecord {
                cycle: state.retired_instructions,
                addr: op_addr,
                slot: slot_u8,
                opcode: slot.name,
                inputs: tr_inputs,
                outputs: tr_outputs,
                imm: tr_imm,
            });
        }
    }

    // Commit phase: register writes first (parallel read-before-write
    // semantics), then memory, then control and mode changes.
    for (r, v) in pending.reg_writes.drain(..) {
        state.write_reg(r, v);
    }
    for (addr, value, width) in pending.stores.drain(..) {
        match width {
            MemWidth::Byte => state.mem.write_byte(addr, value as u8),
            MemWidth::Half => state.mem.write_half(addr, value as u16),
            MemWidth::Word => state.mem.write_word(addr, value),
        }
    }
    state.ip = pending.new_ip.unwrap_or(next_seq_ip);
    if let Some(isa) = pending.isa_switch {
        state.active_isa = IsaId::new(isa);
    }
    if let Some((code, addr)) = pending.simop {
        do_simop(state, code, addr)?;
    }
    if pending.halt {
        state.halted = true;
        state.exit_code = state.reg(abi::RV);
    }
    state.retired_instructions += 1;
    stats.instructions += 1;
    Ok(())
}
