//! Simulation statistics and the unified stats JSON document.
//!
//! Every machine-readable stats surface of the toolchain — `ksim --json`,
//! the `ksimd` `stats` verb, `kbatch` report cells, and the checked-in
//! `BENCH_*.json` artifacts — serializes through [`StatsReport`], so they
//! all share one flat, versioned schema: a single JSON object whose first
//! field is always `schema_version` ([`STATS_SCHEMA_VERSION`]), followed by
//! the counter and ratio fields in declaration order. Optional quantities
//! (cycle-model results, throughput, exit codes) are *omitted* rather than
//! emitted as `null`.

use std::fmt::Write as _;

use crate::cycles::CycleStats;

/// Counters collected during functional simulation.
///
/// These are the quantities behind the paper's §VII-A numbers: executed
/// instructions (MIPS), how many detect & decode operations the decode cache
/// avoided (99.991 % for cjpeg), and how many hash-table lookups the
/// instruction prediction avoided (99.2 %).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Executed instructions (bundles).
    pub instructions: u64,
    /// Executed non-`nop` operations.
    pub operations: u64,
    /// Executed `nop` slot fillers.
    pub nops: u64,
    /// Full detect & decode passes (operation-table scans).
    pub detect_decodes: u64,
    /// Decode-cache hash lookups performed.
    pub cache_lookups: u64,
    /// Hash lookups that found a cached decode structure.
    pub cache_hits: u64,
    /// Lookups avoided by the instruction prediction.
    pub prediction_hits: u64,
    /// Straight-line superblocks constructed (unique runs).
    pub superblocks_built: u64,
    /// Superblock executions (batched run dispatches).
    pub superblock_batches: u64,
    /// Data-memory loads.
    pub mem_reads: u64,
    /// Data-memory stores.
    pub mem_writes: u64,
    /// Executed `switchtarget` operations.
    pub isa_switches: u64,
    /// Executed `simop` (C-library emulation) operations.
    pub simops: u64,
    /// Taken control transfers.
    pub taken_branches: u64,
    /// Superblocks promoted to the IR-threaded compiled tier.
    pub tier_promotions: u64,
    /// Compiled blocks demoted back to the interpreter tier (overlapping
    /// store or same-address re-decode).
    pub tier_invalidations: u64,
    /// Instructions executed on the compiled tier (subset of
    /// [`SimStats::instructions`]).
    pub ir_instructions: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Fraction of instructions whose detect & decode was avoided by the
    /// cache (the paper's 99.991 % figure).
    ///
    /// Clamped to `[0, 1]`: superblock lookahead can decode instructions
    /// that never execute (e.g. a budget pause right before them), so
    /// `detect_decodes` may exceed `instructions` on short runs.
    #[must_use]
    pub fn decode_avoided_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (1.0 - (self.detect_decodes as f64 / self.instructions as f64)).max(0.0)
    }

    /// Fraction of potential hash lookups avoided by the instruction
    /// prediction (the paper's 99.2 % figure).
    #[must_use]
    pub fn lookup_avoided_ratio(&self) -> f64 {
        let total = self.cache_lookups + self.prediction_hits;
        if total == 0 {
            return 0.0;
        }
        self.prediction_hits as f64 / total as f64
    }

    /// Fraction of decode-structure resolutions served from the cache —
    /// by prediction or by a hash hit — rather than by a fresh detect &
    /// decode (the §VII-A "nearly 100 % hit rate" claim).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.prediction_hits + self.cache_lookups;
        if total == 0 {
            return 0.0;
        }
        (self.prediction_hits + self.cache_hits) as f64 / total as f64
    }

    /// Fraction of executed operations that access data memory (the paper
    /// reports 24.6 % for cjpeg).
    #[must_use]
    pub fn mem_ratio(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        (self.mem_reads + self.mem_writes) as f64 / self.operations as f64
    }

    /// Fraction of executed instructions that ran on the IR-threaded
    /// compiled tier.
    ///
    /// Clamped to `[0, 1]` (the counters always satisfy
    /// `ir_instructions <= instructions`, but the clamp keeps externally
    /// constructed statistics NaN- and overflow-free like the other
    /// ratios).
    #[must_use]
    pub fn ir_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.ir_instructions as f64 / self.instructions as f64).min(1.0)
    }

    /// Wall-clock throughput of a run that executed these statistics'
    /// instructions in `wall_seconds` — the quantity every harness reports
    /// (§VII-A's MIPS and Table I's ns/instruction).
    #[must_use]
    pub fn throughput(&self, wall_seconds: f64) -> Throughput {
        Throughput::new(self.instructions, wall_seconds)
    }

    /// Adds another set of counters field-wise — how a multi-core fabric
    /// folds its per-core statistics into one aggregate, and how a core
    /// that was reset mid-campaign carries its earlier runs forward.
    pub fn accumulate(&mut self, other: &SimStats) {
        self.instructions += other.instructions;
        self.operations += other.operations;
        self.nops += other.nops;
        self.detect_decodes += other.detect_decodes;
        self.cache_lookups += other.cache_lookups;
        self.cache_hits += other.cache_hits;
        self.prediction_hits += other.prediction_hits;
        self.superblocks_built += other.superblocks_built;
        self.superblock_batches += other.superblock_batches;
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
        self.isa_switches += other.isa_switches;
        self.simops += other.simops;
        self.taken_branches += other.taken_branches;
        self.tier_promotions += other.tier_promotions;
        self.tier_invalidations += other.tier_invalidations;
        self.ir_instructions += other.ir_instructions;
    }
}

/// Wall-clock throughput of a simulation run.
///
/// Centralizes the MIPS / ns-per-instruction arithmetic that the bench
/// binaries, `ksim --stats`, and the campaign engine all report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Wall-clock seconds of the simulation loop.
    pub wall_seconds: f64,
    /// Millions of simulated instructions per wall-clock second.
    pub mips: f64,
    /// Wall-clock nanoseconds per simulated instruction.
    pub ns_per_instruction: f64,
}

impl Throughput {
    /// Computes throughput from an instruction count and wall-clock time.
    /// Degenerate inputs (zero instructions or non-positive time) yield
    /// zero rates rather than infinities.
    #[must_use]
    pub fn new(instructions: u64, wall_seconds: f64) -> Self {
        if instructions == 0 || wall_seconds <= 0.0 {
            return Throughput { wall_seconds, mips: 0.0, ns_per_instruction: 0.0 };
        }
        Throughput {
            wall_seconds,
            mips: instructions as f64 / wall_seconds / 1e6,
            ns_per_instruction: wall_seconds * 1e9 / instructions as f64,
        }
    }
}

/// Version of the unified stats JSON schema.
///
/// Every stats document the toolchain emits starts with a
/// `"schema_version"` field carrying this value. The version is bumped
/// only when an existing field is renamed, retyped, or removed; adding new
/// optional fields is backward compatible and does not bump it.
pub const STATS_SCHEMA_VERSION: u64 = 1;

/// One typed field value of a [`StatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// An unsigned integer (exact in JSON; all counters fit below 2^53).
    U64(u64),
    /// A float, serialized with the shortest round-tripping representation;
    /// non-finite values are sanitized to `0` (JSON has no NaN/Inf).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on serialization).
    Str(String),
}

/// Builder for the unified, versioned stats JSON document.
///
/// The document is one flat JSON object; fields serialize in insertion
/// order, and the constructor inserts `schema_version` first, so the
/// serialization is deterministic. Consumers that carry extra context
/// (a campaign cell key, a daemon session's `runs_completed`) append their
/// fields through the typed `push_*` methods and still share the canonical
/// counter and ratio names.
///
/// # Example
///
/// ```
/// use kahrisma_core::{SimStats, StatsReport};
/// let stats = SimStats { instructions: 10, ..SimStats::default() };
/// let json = StatsReport::for_stats(&stats).to_json();
/// assert!(json.starts_with("{\"schema_version\":1,"));
/// assert!(json.contains("\"instructions\":10"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    fields: Vec<(String, StatValue)>,
}

impl Default for StatsReport {
    fn default() -> Self {
        StatsReport::new()
    }
}

impl StatsReport {
    /// Creates a report holding only the leading `schema_version` field.
    #[must_use]
    pub fn new() -> Self {
        let mut report = StatsReport { fields: Vec::with_capacity(24) };
        report.push_u64("schema_version", STATS_SCHEMA_VERSION);
        report
    }

    /// The standard document for one simulator: `schema_version` plus
    /// every [`SimStats`] counter and derived ratio.
    #[must_use]
    pub fn for_stats(stats: &SimStats) -> Self {
        let mut report = StatsReport::new();
        report.counters(stats);
        report.ratios(stats);
        report
    }

    /// Appends an integer field.
    pub fn push_u64(&mut self, name: &str, value: u64) {
        self.fields.push((name.to_string(), StatValue::U64(value)));
    }

    /// Appends a float field.
    pub fn push_f64(&mut self, name: &str, value: f64) {
        self.fields.push((name.to_string(), StatValue::F64(value)));
    }

    /// Appends a boolean field.
    pub fn push_bool(&mut self, name: &str, value: bool) {
        self.fields.push((name.to_string(), StatValue::Bool(value)));
    }

    /// Appends a string field.
    pub fn push_str(&mut self, name: &str, value: &str) {
        self.fields.push((name.to_string(), StatValue::Str(value.to_string())));
    }

    /// Appends every [`SimStats`] counter under its canonical name, in
    /// declaration order.
    pub fn counters(&mut self, stats: &SimStats) {
        self.push_u64("instructions", stats.instructions);
        self.push_u64("operations", stats.operations);
        self.push_u64("nops", stats.nops);
        self.push_u64("detect_decodes", stats.detect_decodes);
        self.push_u64("cache_lookups", stats.cache_lookups);
        self.push_u64("cache_hits", stats.cache_hits);
        self.push_u64("prediction_hits", stats.prediction_hits);
        self.push_u64("superblocks_built", stats.superblocks_built);
        self.push_u64("superblock_batches", stats.superblock_batches);
        self.push_u64("mem_reads", stats.mem_reads);
        self.push_u64("mem_writes", stats.mem_writes);
        self.push_u64("isa_switches", stats.isa_switches);
        self.push_u64("simops", stats.simops);
        self.push_u64("taken_branches", stats.taken_branches);
        self.push_u64("tier_promotions", stats.tier_promotions);
        self.push_u64("tier_invalidations", stats.tier_invalidations);
        self.push_u64("ir_instructions", stats.ir_instructions);
    }

    /// Appends the derived decode/memory ratios.
    pub fn ratios(&mut self, stats: &SimStats) {
        self.push_f64("decode_avoided_ratio", stats.decode_avoided_ratio());
        self.push_f64("lookup_avoided_ratio", stats.lookup_avoided_ratio());
        self.push_f64("cache_hit_ratio", stats.cache_hit_ratio());
        self.push_f64("mem_ratio", stats.mem_ratio());
        self.push_f64("ir_ratio", stats.ir_ratio());
    }

    /// Appends cycle-model results: `cycles`, `ops_per_cycle`,
    /// `model_operations`, and `l1_miss_ratio` when any level of the
    /// modelled hierarchy has a cache that saw at least one access. A cache
    /// with zero accesses (e.g. a zero-instruction run, or a hierarchy whose
    /// first cache level never received traffic) is skipped rather than
    /// reported as a fictitious perfect ratio.
    pub fn cycles(&mut self, cycles: &CycleStats) {
        self.push_u64("cycles", cycles.cycles);
        self.push_f64("ops_per_cycle", cycles.ops_per_cycle());
        self.push_u64("model_operations", cycles.operations);
        let l1 = cycles
            .memory
            .iter()
            .find_map(|l| l.cache)
            .filter(|c| c.hits + c.misses > 0)
            .map(|c| c.miss_ratio());
        if let Some(ratio) = l1 {
            self.push_f64("l1_miss_ratio", ratio);
        }
    }

    /// Appends wall-clock throughput: `wall_seconds`, `mips`,
    /// `ns_per_instruction`.
    pub fn throughput(&mut self, t: &Throughput) {
        self.push_f64("wall_seconds", t.wall_seconds);
        self.push_f64("mips", t.mips);
        self.push_f64("ns_per_instruction", t.ns_per_instruction);
    }

    /// The fields in serialization order (for consumers that embed the
    /// document into a larger response, like the `ksimd` wire protocol).
    #[must_use]
    pub fn fields(&self) -> &[(String, StatValue)] {
        &self.fields
    }

    /// The field names in serialization order (schema-shape tests).
    #[must_use]
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// Serializes the document as one compact JSON object line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 * self.fields.len().max(1));
        out.push('{');
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(name, &mut out);
            out.push(':');
            match value {
                StatValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                StatValue::F64(v) => out.push_str(&fmt_json_f64(*v)),
                StatValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                StatValue::Str(v) => write_json_str(v, &mut out),
            }
        }
        out.push('}');
        out
    }
}

/// Formats a float as a JSON number: the shortest representation that
/// round-trips the exact value; non-finite inputs sanitize to `0`.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = SimStats::new();
        assert_eq!(s.decode_avoided_ratio(), 0.0);
        assert_eq!(s.lookup_avoided_ratio(), 0.0);
        assert_eq!(s.mem_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SimStats {
            instructions: 1000,
            detect_decodes: 10,
            cache_lookups: 50,
            cache_hits: 40,
            prediction_hits: 950,
            operations: 200,
            mem_reads: 30,
            mem_writes: 20,
            ..SimStats::default()
        };
        assert!((s.decode_avoided_ratio() - 0.99).abs() < 1e-12);
        assert!((s.lookup_avoided_ratio() - 0.95).abs() < 1e-12);
        assert!((s.mem_ratio() - 0.25).abs() < 1e-12);
        assert!((s.cache_hit_ratio() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_ratio_handles_zero() {
        assert_eq!(SimStats::new().cache_hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_are_always_finite_and_bounded() {
        // Superblock lookahead can decode more instructions than execute;
        // the avoided ratio must not go negative (and no ratio may be NaN).
        let lookahead = SimStats {
            instructions: 3,
            detect_decodes: 7,
            ..SimStats::default()
        };
        assert_eq!(lookahead.decode_avoided_ratio(), 0.0);
        // Externally constructed stats may claim more IR instructions than
        // total instructions; the ratio clamps instead of exceeding 1.
        let overcount = SimStats { instructions: 2, ir_instructions: 5, ..SimStats::default() };
        assert_eq!(overcount.ir_ratio(), 1.0);
        for s in [SimStats::new(), lookahead, overcount] {
            for r in [
                s.decode_avoided_ratio(),
                s.lookup_avoided_ratio(),
                s.cache_hit_ratio(),
                s.mem_ratio(),
                s.ir_ratio(),
            ] {
                assert!(r.is_finite() && (0.0..=1.0).contains(&r), "{r}");
            }
        }
    }

    #[test]
    fn l1_miss_ratio_skipped_for_zero_access_cache() {
        use crate::cycles::{CacheStats, CycleStats, MemoryLevelStats};
        // A zero-instruction run: the hierarchy has a cache, but it never
        // saw an access. The report must omit l1_miss_ratio entirely
        // rather than claim a (meaningless) perfect ratio.
        let idle = CycleStats {
            cycles: 0,
            operations: 0,
            memory: vec![MemoryLevelStats {
                name: "cache(2KiB,4way)".into(),
                cache: Some(CacheStats::default()),
                stalls: None,
                accesses: None,
            }],
        };
        let mut report = StatsReport::new();
        report.cycles(&idle);
        assert!(report.fields().iter().all(|(n, _)| n != "l1_miss_ratio"));
        for (_, v) in report.fields() {
            if let StatValue::F64(f) = v {
                assert!(f.is_finite());
            }
        }
        // With traffic the ratio appears as before.
        let busy = CycleStats {
            cycles: 10,
            operations: 10,
            memory: vec![MemoryLevelStats {
                name: "cache(2KiB,4way)".into(),
                cache: Some(CacheStats { hits: 3, misses: 1, writebacks: 0 }),
                stalls: None,
                accesses: None,
            }],
        };
        let mut report = StatsReport::new();
        report.cycles(&busy);
        let ratio = report.fields().iter().find(|(n, _)| n == "l1_miss_ratio");
        assert!(matches!(ratio, Some((_, StatValue::F64(f))) if (f - 0.25).abs() < 1e-12));
    }

    #[test]
    fn throughput_zero_wall_time_is_nan_free() {
        let t = SimStats { instructions: 5, ..SimStats::default() }.throughput(0.0);
        assert!(t.mips.is_finite() && t.ns_per_instruction.is_finite());
        let t = SimStats::new().throughput(1.0);
        assert_eq!(t.mips, 0.0);
        assert!(t.ns_per_instruction.is_finite());
    }

    #[test]
    fn throughput_computes_rates() {
        let t = Throughput::new(2_000_000, 0.5);
        assert!((t.mips - 4.0).abs() < 1e-12);
        assert!((t.ns_per_instruction - 250.0).abs() < 1e-9);
        let s = SimStats { instructions: 2_000_000, ..SimStats::default() };
        assert_eq!(s.throughput(0.5), t);
    }

    #[test]
    fn throughput_handles_degenerate_inputs() {
        assert_eq!(Throughput::new(0, 1.0).mips, 0.0);
        assert_eq!(Throughput::new(100, 0.0).ns_per_instruction, 0.0);
        assert_eq!(Throughput::new(100, -1.0).mips, 0.0);
    }

    #[test]
    fn accumulate_sums_every_counter() {
        let mut a = SimStats {
            instructions: 1,
            operations: 2,
            nops: 3,
            detect_decodes: 4,
            cache_lookups: 5,
            cache_hits: 6,
            prediction_hits: 7,
            superblocks_built: 8,
            superblock_batches: 9,
            mem_reads: 10,
            mem_writes: 11,
            isa_switches: 12,
            simops: 13,
            taken_branches: 14,
            tier_promotions: 15,
            tier_invalidations: 16,
            ir_instructions: 17,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.taken_branches, 28);
        // Field-wise doubling: no counter was skipped.
        let mut doubled = b;
        doubled.accumulate(&b);
        assert_eq!(a, doubled);
    }

    #[test]
    fn stats_report_leads_with_schema_version() {
        let json = StatsReport::new().to_json();
        assert_eq!(json, format!("{{\"schema_version\":{STATS_SCHEMA_VERSION}}}"));
    }

    #[test]
    fn stats_report_serializes_counters_ratios_in_order() {
        let stats = SimStats {
            instructions: 1000,
            operations: 900,
            detect_decodes: 10,
            cache_lookups: 50,
            cache_hits: 40,
            prediction_hits: 950,
            ..SimStats::default()
        };
        let report = StatsReport::for_stats(&stats);
        let names = report.field_names();
        assert_eq!(names[0], "schema_version");
        assert_eq!(names[1], "instructions");
        assert_eq!(*names.last().unwrap(), "ir_ratio");
        let json = report.to_json();
        assert!(json.starts_with("{\"schema_version\":1,\"instructions\":1000,"));
        assert!(json.contains("\"prediction_hits\":950"));
        assert!(json.contains("\"decode_avoided_ratio\":0.99"));
        // Serialization is deterministic.
        assert_eq!(json, StatsReport::for_stats(&stats).to_json());
    }

    #[test]
    fn stats_report_extra_fields_and_escaping() {
        let mut report = StatsReport::new();
        report.push_str("key", "a\"b\\c");
        report.push_bool("halted", true);
        report.push_f64("bad", f64::NAN);
        report.push_f64("whole", 2.0);
        let json = report.to_json();
        assert!(json.contains("\"key\":\"a\\\"b\\\\c\""));
        assert!(json.contains("\"halted\":true"));
        assert!(json.contains("\"bad\":0"), "NaN must sanitize: {json}");
        assert!(json.contains("\"whole\":2"));
    }

    #[test]
    fn stats_report_throughput_fields() {
        let mut report = StatsReport::new();
        report.throughput(&Throughput::new(2_000_000, 0.5));
        let json = report.to_json();
        assert!(json.contains("\"wall_seconds\":0.5"));
        assert!(json.contains("\"mips\":4"));
    }
}
