//! Simulation statistics.

/// Counters collected during functional simulation.
///
/// These are the quantities behind the paper's §VII-A numbers: executed
/// instructions (MIPS), how many detect & decode operations the decode cache
/// avoided (99.991 % for cjpeg), and how many hash-table lookups the
/// instruction prediction avoided (99.2 %).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Executed instructions (bundles).
    pub instructions: u64,
    /// Executed non-`nop` operations.
    pub operations: u64,
    /// Executed `nop` slot fillers.
    pub nops: u64,
    /// Full detect & decode passes (operation-table scans).
    pub detect_decodes: u64,
    /// Decode-cache hash lookups performed.
    pub cache_lookups: u64,
    /// Hash lookups that found a cached decode structure.
    pub cache_hits: u64,
    /// Lookups avoided by the instruction prediction.
    pub prediction_hits: u64,
    /// Straight-line superblocks constructed (unique runs).
    pub superblocks_built: u64,
    /// Superblock executions (batched run dispatches).
    pub superblock_batches: u64,
    /// Data-memory loads.
    pub mem_reads: u64,
    /// Data-memory stores.
    pub mem_writes: u64,
    /// Executed `switchtarget` operations.
    pub isa_switches: u64,
    /// Executed `simop` (C-library emulation) operations.
    pub simops: u64,
    /// Taken control transfers.
    pub taken_branches: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Fraction of instructions whose detect & decode was avoided by the
    /// cache (the paper's 99.991 % figure).
    ///
    /// Clamped to `[0, 1]`: superblock lookahead can decode instructions
    /// that never execute (e.g. a budget pause right before them), so
    /// `detect_decodes` may exceed `instructions` on short runs.
    #[must_use]
    pub fn decode_avoided_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (1.0 - (self.detect_decodes as f64 / self.instructions as f64)).max(0.0)
    }

    /// Fraction of potential hash lookups avoided by the instruction
    /// prediction (the paper's 99.2 % figure).
    #[must_use]
    pub fn lookup_avoided_ratio(&self) -> f64 {
        let total = self.cache_lookups + self.prediction_hits;
        if total == 0 {
            return 0.0;
        }
        self.prediction_hits as f64 / total as f64
    }

    /// Fraction of decode-structure resolutions served from the cache —
    /// by prediction or by a hash hit — rather than by a fresh detect &
    /// decode (the §VII-A "nearly 100 % hit rate" claim).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.prediction_hits + self.cache_lookups;
        if total == 0 {
            return 0.0;
        }
        (self.prediction_hits + self.cache_hits) as f64 / total as f64
    }

    /// Fraction of executed operations that access data memory (the paper
    /// reports 24.6 % for cjpeg).
    #[must_use]
    pub fn mem_ratio(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        (self.mem_reads + self.mem_writes) as f64 / self.operations as f64
    }

    /// Wall-clock throughput of a run that executed these statistics'
    /// instructions in `wall_seconds` — the quantity every harness reports
    /// (§VII-A's MIPS and Table I's ns/instruction).
    #[must_use]
    pub fn throughput(&self, wall_seconds: f64) -> Throughput {
        Throughput::new(self.instructions, wall_seconds)
    }
}

/// Wall-clock throughput of a simulation run.
///
/// Centralizes the MIPS / ns-per-instruction arithmetic that the bench
/// binaries, `ksim --stats`, and the campaign engine all report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Wall-clock seconds of the simulation loop.
    pub wall_seconds: f64,
    /// Millions of simulated instructions per wall-clock second.
    pub mips: f64,
    /// Wall-clock nanoseconds per simulated instruction.
    pub ns_per_instruction: f64,
}

impl Throughput {
    /// Computes throughput from an instruction count and wall-clock time.
    /// Degenerate inputs (zero instructions or non-positive time) yield
    /// zero rates rather than infinities.
    #[must_use]
    pub fn new(instructions: u64, wall_seconds: f64) -> Self {
        if instructions == 0 || wall_seconds <= 0.0 {
            return Throughput { wall_seconds, mips: 0.0, ns_per_instruction: 0.0 };
        }
        Throughput {
            wall_seconds,
            mips: instructions as f64 / wall_seconds / 1e6,
            ns_per_instruction: wall_seconds * 1e9 / instructions as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = SimStats::new();
        assert_eq!(s.decode_avoided_ratio(), 0.0);
        assert_eq!(s.lookup_avoided_ratio(), 0.0);
        assert_eq!(s.mem_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SimStats {
            instructions: 1000,
            detect_decodes: 10,
            cache_lookups: 50,
            cache_hits: 40,
            prediction_hits: 950,
            operations: 200,
            mem_reads: 30,
            mem_writes: 20,
            ..SimStats::default()
        };
        assert!((s.decode_avoided_ratio() - 0.99).abs() < 1e-12);
        assert!((s.lookup_avoided_ratio() - 0.95).abs() < 1e-12);
        assert!((s.mem_ratio() - 0.25).abs() < 1e-12);
        assert!((s.cache_hit_ratio() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_ratio_handles_zero() {
        assert_eq!(SimStats::new().cache_hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_are_always_finite_and_bounded() {
        // Superblock lookahead can decode more instructions than execute;
        // the avoided ratio must not go negative (and no ratio may be NaN).
        let lookahead = SimStats {
            instructions: 3,
            detect_decodes: 7,
            ..SimStats::default()
        };
        assert_eq!(lookahead.decode_avoided_ratio(), 0.0);
        for s in [SimStats::new(), lookahead] {
            for r in [
                s.decode_avoided_ratio(),
                s.lookup_avoided_ratio(),
                s.cache_hit_ratio(),
                s.mem_ratio(),
            ] {
                assert!(r.is_finite() && (0.0..=1.0).contains(&r), "{r}");
            }
        }
    }

    #[test]
    fn throughput_zero_wall_time_is_nan_free() {
        let t = SimStats { instructions: 5, ..SimStats::default() }.throughput(0.0);
        assert!(t.mips.is_finite() && t.ns_per_instruction.is_finite());
        let t = SimStats::new().throughput(1.0);
        assert_eq!(t.mips, 0.0);
        assert!(t.ns_per_instruction.is_finite());
    }

    #[test]
    fn throughput_computes_rates() {
        let t = Throughput::new(2_000_000, 0.5);
        assert!((t.mips - 4.0).abs() < 1e-12);
        assert!((t.ns_per_instruction - 250.0).abs() < 1e-9);
        let s = SimStats { instructions: 2_000_000, ..SimStats::default() };
        assert_eq!(s.throughput(0.5), t);
    }

    #[test]
    fn throughput_handles_degenerate_inputs() {
        assert_eq!(Throughput::new(0, 1.0).mips, 0.0);
        assert_eq!(Throughput::new(100, 0.0).ns_per_instruction, 0.0);
        assert_eq!(Throughput::new(100, -1.0).mips, 0.0);
    }
}
