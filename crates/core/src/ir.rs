//! The IR-threaded compiled execution tier.
//!
//! When a superblock turns hot (see `sim.rs` tier management), its decoded
//! body is lowered into a flat vector of fixed-size [`MicroOp`]s — register
//! indices, immediates, and a pre-bound monomorphic handler resolved once
//! at promotion time — executed by a tight threaded-dispatch loop
//! ([`IrBlock::run_body`]). Compared to the superblock interpreter this
//! skips the per-instruction decode-structure fetch, `ExecKind` match,
//! per-member IP bookkeeping, and per-member statistics updates (the
//! block's statistic deltas are precomputed at lowering time and applied
//! once per execution).
//!
//! Only the *body* of a run — every member except the last — is lowered.
//! Body members are straight-line by construction (`ends_run` instructions
//! can only terminate a run), so the lowered vocabulary is exactly ALU,
//! load, store, and `lui` operations, all of which execute infallibly.
//! The tail member (branch, jump, `switchtarget`, `simop`, `halt`, or the
//! plain fall-through at `MAX_RUN_LEN`) keeps executing through the
//! generic paths in `exec.rs`, so control transfer, ISA switches, and
//! error semantics stay bit-exact with the interpreter tier.
//!
//! Lowering is conservative: blocks whose VLIW bundles have intra-bundle
//! read-after-write or store-then-load hazards are barred from the tier
//! (the flattened sequential execution would diverge from the paper's
//! §V-B parallel read-before-write semantics), as is anything outside the
//! specialized vocabulary.

use crate::decode::{DecodeCache, DecodedSlot, ExecKind};
use crate::state::CpuState;

/// One lowered micro-operation: a pre-bound handler plus its pre-resolved
/// operands. `fun` carries the decode-time ALU specialization for the
/// arithmetic handlers and is unused by the memory handlers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    run: fn(&mut CpuState, &MicroOp),
    fun: fn(u32, u32) -> u32,
    imm: u32,
    rd: u8,
    rs1: u8,
    rs2: u8,
}

fn mo_alu(state: &mut CpuState, mo: &MicroOp) {
    let v = (mo.fun)(state.reg(mo.rs1), state.reg(mo.rs2));
    state.write_reg(mo.rd, v);
}

fn mo_alu_imm(state: &mut CpuState, mo: &MicroOp) {
    let v = (mo.fun)(state.reg(mo.rs1), mo.imm);
    state.write_reg(mo.rd, v);
}

fn mo_lui(state: &mut CpuState, mo: &MicroOp) {
    state.write_reg(mo.rd, mo.imm << 13);
}

fn mo_load_byte_signed(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    let v = state.mem.read_byte(addr) as i8 as i32 as u32;
    state.write_reg(mo.rd, v);
}

fn mo_load_byte_unsigned(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    let v = u32::from(state.mem.read_byte(addr));
    state.write_reg(mo.rd, v);
}

fn mo_load_half_signed(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    let v = state.mem.read_half(addr) as i16 as i32 as u32;
    state.write_reg(mo.rd, v);
}

fn mo_load_half_unsigned(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    let v = u32::from(state.mem.read_half(addr));
    state.write_reg(mo.rd, v);
}

fn mo_load_word(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    let v = state.mem.read_word(addr);
    state.write_reg(mo.rd, v);
}

fn mo_store_byte(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    state.note_code_write(addr);
    state.mem.write_byte(addr, state.reg(mo.rs2) as u8);
}

fn mo_store_half(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    state.note_code_write(addr);
    state.mem.write_half(addr, state.reg(mo.rs2) as u16);
}

fn mo_store_word(state: &mut CpuState, mo: &MicroOp) {
    let addr = state.reg(mo.rs1).wrapping_add(mo.imm);
    state.note_code_write(addr);
    state.mem.write_word(addr, state.reg(mo.rs2));
}

/// A compiled superblock body plus the precomputed bookkeeping the
/// simulator applies around one execution of it.
#[derive(Debug)]
pub(crate) struct IrBlock {
    /// The lowered body, in execution order (`nop` slots elided).
    ops: Vec<MicroOp>,
    /// Addresses of every run member (body and tail) for the IP history.
    pub(crate) addrs: Vec<u32>,
    /// Decode-cache index of the tail member, executed generically.
    pub(crate) tail: u32,
    /// Number of body instructions (run length minus the tail).
    pub(crate) body_instrs: u64,
    /// Statistic deltas of one body execution (the body is branch-free and
    /// infallible, so these are static).
    pub(crate) d_ops: u64,
    /// Elided `nop` slots per body execution.
    pub(crate) d_nops: u64,
    /// Memory reads per body execution.
    pub(crate) d_reads: u64,
    /// Memory writes per body execution.
    pub(crate) d_writes: u64,
    /// Text range `[lo, hi)` covered by the run, for store invalidation.
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

impl IrBlock {
    /// Executes the body with threaded dispatch. Infallible by
    /// construction; the caller applies the stat deltas and then executes
    /// the tail through the generic paths.
    #[inline]
    pub(crate) fn run_body(&self, state: &mut CpuState) {
        for op in &self.ops {
            (op.run)(state, op);
        }
    }

    /// Number of lowered micro-ops.
    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }
}

/// Whether the slot reads from memory.
fn is_load(kind: ExecKind) -> bool {
    matches!(
        kind,
        ExecKind::LoadByteSigned
            | ExecKind::LoadByteUnsigned
            | ExecKind::LoadHalfSigned
            | ExecKind::LoadHalfUnsigned
            | ExecKind::LoadWord
    )
}

/// Whether the slot writes to memory.
fn is_store(kind: ExecKind) -> bool {
    matches!(kind, ExecKind::StoreByte | ExecKind::StoreHalf | ExecKind::StoreWord)
}

/// Whether flattening this bundle to sequential micro-ops would violate
/// the parallel read-before-write semantics: an earlier slot's register
/// write feeding a later slot's read, or an earlier store potentially
/// observed by a later load (addresses are unknown at lowering time, so
/// any store-then-load pair is conservatively hazardous). Write-after-
/// write and write-after-read stay order-preserving under flattening.
fn bundle_has_hazard(slots: &[DecodedSlot]) -> bool {
    for i in 0..slots.len() {
        let a = &slots[i];
        for b in &slots[i + 1..] {
            if a.dst != 255 && a.dst != 0 && b.srcs[..usize::from(b.nsrcs)].contains(&a.dst) {
                return true;
            }
            if is_store(a.exec) && is_load(b.exec) {
                return true;
            }
        }
    }
    false
}

/// Lowers one slot to a micro-op, or `None` if the slot is outside the
/// compiled tier's vocabulary.
fn lower_slot(slot: &DecodedSlot) -> Option<MicroOp> {
    let run = match slot.exec {
        ExecKind::Alu => mo_alu,
        ExecKind::AluImm => mo_alu_imm,
        ExecKind::Lui => mo_lui,
        ExecKind::LoadByteSigned => mo_load_byte_signed,
        ExecKind::LoadByteUnsigned => mo_load_byte_unsigned,
        ExecKind::LoadHalfSigned => mo_load_half_signed,
        ExecKind::LoadHalfUnsigned => mo_load_half_unsigned,
        ExecKind::LoadWord => mo_load_word,
        ExecKind::StoreByte => mo_store_byte,
        ExecKind::StoreHalf => mo_store_half,
        ExecKind::StoreWord => mo_store_word,
        _ => return None,
    };
    Some(MicroOp {
        run,
        fun: slot.fun,
        imm: slot.imm,
        rd: slot.rd,
        rs1: slot.rs1,
        rs2: slot.rs2,
    })
}

/// Lowers superblock `sb` into an [`IrBlock`], or `None` when the block
/// must stay on the interpreter tier: bodies shorter than one instruction
/// (nothing to compile), a body slot outside the specialized vocabulary,
/// or a VLIW bundle with an intra-bundle hazard.
pub(crate) fn lower(cache: &DecodeCache, sb: u32) -> Option<IrBlock> {
    let members = cache.run_members(sb);
    if members.len() < 2 {
        return None;
    }
    let mut ops = Vec::new();
    let mut addrs = Vec::with_capacity(members.len());
    let (mut d_ops, mut d_nops, mut d_reads, mut d_writes) = (0u64, 0u64, 0u64, 0u64);
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for (pos, &idx) in members.iter().enumerate() {
        let (instr, slots) = cache.instr_and_slots(idx);
        addrs.push(instr.addr);
        lo = lo.min(instr.addr);
        hi = hi.max(instr.addr.wrapping_add(instr.size()));
        if pos + 1 == members.len() {
            break; // the tail executes through the generic paths
        }
        if instr.width > 1 && bundle_has_hazard(slots) {
            return None;
        }
        for slot in slots {
            if slot.is_nop {
                d_nops += 1;
                continue;
            }
            ops.push(lower_slot(slot)?);
            d_ops += 1;
            if is_load(slot.exec) {
                d_reads += 1;
            } else if is_store(slot.exec) {
                d_writes += 1;
            }
        }
    }
    Some(IrBlock {
        ops,
        addrs,
        tail: *members.last().expect("non-empty run"),
        body_instrs: (members.len() - 1) as u64,
        d_ops,
        d_nops,
        d_reads,
        d_writes,
        lo,
        hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Memory;
    use kahrisma_isa::adl::IsaId;
    use kahrisma_isa::{isa_id, tables};

    #[test]
    fn micro_op_stays_compact() {
        // Two code pointers + operands; the threaded loop streams these.
        assert!(std::mem::size_of::<MicroOp>() <= 24, "{}", std::mem::size_of::<MicroOp>());
    }

    fn encode(isa: IsaId, name: &str, rd: u8, rs1: u8, rs2: u8, imm: u32) -> u32 {
        let t = tables();
        t.table(isa).unwrap().op_by_name(name).unwrap().1.encode(rd, rs1, rs2, imm)
    }

    fn cache_with_run(words: &[(u32, u32)], isa: IsaId, addrs: &[u32]) -> (DecodeCache, u32) {
        let t = tables();
        let mut mem = Memory::new();
        for &(a, w) in words {
            mem.write_word(a, w);
        }
        let mut cache = DecodeCache::new();
        let members: Vec<u32> =
            addrs.iter().map(|&a| cache.decode_insert(&t, &mem, a, isa).unwrap()).collect();
        let sb = cache.install_run(members[0], &members);
        (cache, sb)
    }

    #[test]
    fn lowers_straight_line_risc_body_and_elides_nothing_it_must_keep() {
        let words = [
            (0x100, encode(isa_id::RISC, "addi", 3, 0, 0, 7)),
            (0x104, encode(isa_id::RISC, "addi", 4, 3, 0, 1)),
            (0x108, encode(isa_id::RISC, "jr", 0, 31, 0, 0)),
        ];
        let (cache, sb) = cache_with_run(&words, isa_id::RISC, &[0x100, 0x104, 0x108]);
        let block = lower(&cache, sb).expect("lowered");
        assert_eq!(block.body_instrs, 2);
        assert_eq!(block.op_count(), 2);
        assert_eq!(block.addrs, vec![0x100, 0x104, 0x108]);
        assert_eq!(block.d_ops, 2);
        assert_eq!((block.lo, block.hi), (0x100, 0x10C));
        // Executing the body produces the architectural effect directly.
        let mut state = CpuState::new(0x100, isa_id::RISC, 0x9000);
        block.run_body(&mut state);
        assert_eq!(state.reg(3), 7);
        assert_eq!(state.reg(4), 8);
    }

    #[test]
    fn elides_nop_slots_but_counts_them() {
        let words = [
            (0x200, encode(isa_id::VLIW2, "addi", 3, 0, 0, 5)),
            (0x204, 0), // nop
            (0x208, encode(isa_id::VLIW2, "jr", 0, 31, 0, 0)),
            (0x20C, 0),
        ];
        let (cache, sb) = cache_with_run(&words, isa_id::VLIW2, &[0x200, 0x208]);
        let block = lower(&cache, sb).expect("lowered");
        assert_eq!(block.op_count(), 1, "nop slot must be elided");
        assert_eq!(block.d_nops, 1);
        assert_eq!(block.d_ops, 1);
    }

    #[test]
    fn bars_intra_bundle_raw_hazard() {
        // Slot 0 writes r3, slot 1 reads r3: under §V-B parallel semantics
        // slot 1 sees the pre-bundle value, so flattening would diverge.
        let words = [
            (0x300, encode(isa_id::VLIW2, "addi", 3, 0, 0, 9)),
            (0x304, encode(isa_id::VLIW2, "add", 4, 3, 0, 0)),
            (0x308, encode(isa_id::VLIW2, "jr", 0, 31, 0, 0)),
            (0x30C, 0),
        ];
        let (cache, sb) = cache_with_run(&words, isa_id::VLIW2, &[0x300, 0x308]);
        assert!(lower(&cache, sb).is_none(), "RAW-hazard bundle must stay interpreted");
    }

    #[test]
    fn bars_intra_bundle_store_then_load() {
        let words = [
            (0x400, encode(isa_id::VLIW2, "sw", 0, 29, 3, 0)),
            (0x404, encode(isa_id::VLIW2, "lw", 4, 29, 0, 0)),
            (0x408, encode(isa_id::VLIW2, "jr", 0, 31, 0, 0)),
            (0x40C, 0),
        ];
        let (cache, sb) = cache_with_run(&words, isa_id::VLIW2, &[0x400, 0x408]);
        assert!(lower(&cache, sb).is_none(), "store-then-load bundle must stay interpreted");
    }

    #[test]
    fn bars_single_member_runs() {
        let words = [(0x500, encode(isa_id::RISC, "jr", 0, 31, 0, 0))];
        let (cache, sb) = cache_with_run(&words, isa_id::RISC, &[0x500]);
        assert!(lower(&cache, sb).is_none(), "nothing to compile");
    }
}
