//! The fabric-shared memory window with barrier-commit semantics.
//!
//! KAHRISMA is an array of EDPEs; a multi-core fabric needs a memory
//! region the cores can communicate through without giving up the
//! determinism the rest of the simulator guarantees. The design mirrors
//! the snapshot/fork discipline of the cycle models:
//!
//! * [`SharedMem`] owns the *committed image* of a fixed address window
//!   (base + length, defaults at `0xE000_0000`).
//! * Each core holds a [`SharedPort`]: an immutable [`Arc`] snapshot of the
//!   image as of the last barrier, plus a private write overlay. During a
//!   scheduling quantum a core sees its **own** writes immediately (program
//!   order) and every other core's state **as of the quantum start** — so
//!   the cores can execute in parallel on host threads without any
//!   cross-core data race.
//! * At each barrier the fabric commits every port's ordered write log into
//!   the image **in core-index order** (later cores win conflicting bytes)
//!   and republishes the image to all ports. Results are therefore
//!   bit-identical regardless of how many host threads executed the
//!   quantum.
//!
//! Ordinary single-core simulation never attaches a port and pays only a
//! discriminant check per memory access.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Default base address of the shared window: high above text, data, heap
/// and below the stack region, so workload images never overlap it.
pub const DEFAULT_SHARED_BASE: u32 = 0xE000_0000;

/// Default length of the shared window in bytes (64 KiB).
pub const DEFAULT_SHARED_LEN: u32 = 64 * 1024;

/// The committed image of the shared window, owned by the fabric.
#[derive(Debug, Clone)]
pub struct SharedMem {
    base: u32,
    len: u32,
    committed: Arc<Vec<u8>>,
}

impl SharedMem {
    /// Creates a zeroed shared window of `len` bytes at `base`.
    #[must_use]
    pub fn new(base: u32, len: u32) -> SharedMem {
        SharedMem { base, len, committed: Arc::new(vec![0; len as usize]) }
    }

    /// The window's base address.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The window's length in bytes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when the window has zero length (a degenerate fabric with no
    /// shared communication).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A fresh port over the current committed image, for one core.
    #[must_use]
    pub fn port(&self) -> SharedPort {
        SharedPort {
            base: self.base,
            len: self.len,
            image: Arc::clone(&self.committed),
            overlay: HashMap::new(),
            log: Vec::new(),
            trace: false,
            accesses: RefCell::new(Vec::new()),
        }
    }

    /// Applies one port's ordered write log to the committed image and
    /// clears the log. Call once per core **in core-index order** at each
    /// barrier; the ordering is what makes conflicting writes resolve
    /// deterministically (the highest core index wins a byte).
    pub fn commit(&mut self, port: &mut SharedPort) {
        if port.log.is_empty() {
            return;
        }
        let image = Arc::make_mut(&mut self.committed);
        for (offset, byte) in port.log.drain(..) {
            image[offset as usize] = byte;
        }
    }

    /// Hands the freshly committed image back to a port and clears its
    /// overlay. Call for every core after all [`SharedMem::commit`] calls
    /// of the barrier.
    pub fn publish(&self, port: &mut SharedPort) {
        port.image = Arc::clone(&self.committed);
        port.overlay.clear();
        port.log.clear();
    }

    /// Reads one byte of the committed image (tests, final-state dumps).
    #[must_use]
    pub fn read_committed(&self, addr: u32) -> u8 {
        let offset = addr.wrapping_sub(self.base);
        if offset < self.len {
            self.committed[offset as usize]
        } else {
            0
        }
    }

    /// Reads a little-endian 32-bit value of the committed image.
    #[must_use]
    pub fn read_committed_word(&self, addr: u32) -> u32 {
        u32::from(self.read_committed(addr))
            | (u32::from(self.read_committed(addr.wrapping_add(1))) << 8)
            | (u32::from(self.read_committed(addr.wrapping_add(2))) << 16)
            | (u32::from(self.read_committed(addr.wrapping_add(3))) << 24)
    }

    /// Writes a little-endian 32-bit value directly into the committed
    /// image. This is the fabric's barrier-time primitive for resolving
    /// atomic read-modify-writes: in-window bytes are updated, out-of-window
    /// bytes of a straddling word are dropped (the caller handles them).
    /// Must only be called between [`SharedMem::commit`] and
    /// [`SharedMem::publish`], so every port observes the result.
    pub fn write_committed_word(&mut self, addr: u32, value: u32) {
        let image = Arc::make_mut(&mut self.committed);
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            let offset = addr.wrapping_add(i as u32).wrapping_sub(self.base);
            if offset < self.len {
                image[offset as usize] = byte;
            }
        }
    }

    /// The committed image as a byte slice.
    #[must_use]
    pub fn committed(&self) -> &[u8] {
        &self.committed
    }
}

/// One core's view of the shared window: the last published image plus a
/// private write overlay.
#[derive(Debug, Clone)]
pub struct SharedPort {
    base: u32,
    len: u32,
    image: Arc<Vec<u8>>,
    /// This core's writes since the last barrier, by window offset; reads
    /// consult the overlay before the image so a core observes its own
    /// stores in program order.
    overlay: HashMap<u32, u8>,
    /// The same writes in program order, for the deterministic commit.
    log: Vec<(u32, u8)>,
    /// When set, every in-window access appends to [`SharedPort::accesses`]
    /// (the coherence model's per-quantum feed). Off by default: ideal-mode
    /// fabrics and standalone cores pay one branch per byte.
    trace: bool,
    /// Word-granular access log: `(word_offset << 1) | is_write`, in
    /// program order, with consecutive duplicates coalesced (a word store
    /// appears once, not four times). Interior-mutable because reads go
    /// through `&self`; the port is owned by exactly one core.
    accesses: RefCell<Vec<u32>>,
}

impl SharedPort {
    /// The window's base address.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// `true` when `addr` falls inside the window.
    #[inline]
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr.wrapping_sub(self.base) < self.len
    }

    /// `true` when any byte of `[addr, addr + n)` falls inside the window
    /// (correct even for windows narrower than the access).
    #[inline]
    #[must_use]
    pub fn overlaps(&self, addr: u32, n: u32) -> bool {
        addr.wrapping_sub(self.base) < self.len || self.base.wrapping_sub(addr) < n
    }

    /// Reads one byte: the core's own overlay first, then the image.
    #[must_use]
    pub fn read_byte(&self, addr: u32) -> u8 {
        let offset = addr.wrapping_sub(self.base);
        if offset >= self.len {
            return 0;
        }
        if self.trace {
            self.note_access(offset, false);
        }
        match self.overlay.get(&offset) {
            Some(&b) => b,
            None => self.image[offset as usize],
        }
    }

    /// Writes one byte into the overlay and the ordered commit log.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        let offset = addr.wrapping_sub(self.base);
        if offset >= self.len {
            return;
        }
        if self.trace {
            self.note_access(offset, true);
        }
        self.overlay.insert(offset, value);
        self.log.push((offset, value));
    }

    /// Number of logged (uncommitted) writes.
    #[must_use]
    pub fn pending_writes(&self) -> usize {
        self.log.len()
    }

    /// Enables or disables word-granular access tracing (see
    /// [`SharedPort::take_accesses`]). The fabric turns this on when a
    /// modeled (coherent) memory system is configured.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
        if !on {
            self.accesses.get_mut().clear();
        }
    }

    /// Drains the access log gathered since the previous drain: one entry
    /// per coalesced word access, `(word_offset << 1) | is_write`, in
    /// program order. Empty unless tracing is enabled.
    pub fn take_accesses(&mut self) -> Vec<u32> {
        std::mem::take(self.accesses.get_mut())
    }

    #[inline]
    fn note_access(&self, offset: u32, is_write: bool) {
        let entry = ((offset >> 2) << 1) | u32::from(is_write);
        let mut log = self.accesses.borrow_mut();
        if log.last() != Some(&entry) {
            log.push(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_writes_visible_others_deferred_to_barrier() {
        let mut shared = SharedMem::new(0x1000, 0x100);
        let mut a = shared.port();
        let mut b = shared.port();
        a.write_byte(0x1010, 7);
        assert_eq!(a.read_byte(0x1010), 7, "own write visible immediately");
        assert_eq!(b.read_byte(0x1010), 0, "peer write invisible before barrier");
        shared.commit(&mut a);
        shared.commit(&mut b);
        shared.publish(&mut a);
        shared.publish(&mut b);
        assert_eq!(b.read_byte(0x1010), 7, "visible after barrier");
        assert_eq!(a.pending_writes(), 0);
    }

    #[test]
    fn commit_order_resolves_conflicts_deterministically() {
        let mut shared = SharedMem::new(0, 16);
        let mut a = shared.port();
        let mut b = shared.port();
        a.write_byte(4, 0xAA);
        b.write_byte(4, 0xBB);
        shared.commit(&mut a);
        shared.commit(&mut b); // core-index order: the later core wins
        assert_eq!(shared.read_committed(4), 0xBB);
    }

    #[test]
    fn out_of_window_accesses_are_inert() {
        let shared = SharedMem::new(0x1000, 0x10);
        let mut p = shared.port();
        p.write_byte(0x0FFF, 1);
        p.write_byte(0x1010, 2);
        assert_eq!(p.pending_writes(), 0);
        assert_eq!(p.read_byte(0x2000), 0);
        assert_eq!(shared.read_committed(0x2000), 0);
    }

    #[test]
    fn overlaps_handles_narrow_windows_and_edges() {
        let shared = SharedMem::new(0x1002, 2);
        let p = shared.port();
        assert!(p.overlaps(0x1000, 4), "window strictly inside the access");
        assert!(p.overlaps(0x1003, 4));
        assert!(!p.overlaps(0x0FFC, 4));
        assert!(!p.overlaps(0x1004, 4));
        let wide = SharedMem::new(0x1000, 0x100).port();
        assert!(wide.overlaps(0x0FFD, 4), "tail byte lands in window");
        assert!(!wide.overlaps(0x0FFC, 4));
        assert!(wide.overlaps(0x10FF, 4));
    }

    #[test]
    fn access_trace_coalesces_word_entries() {
        let shared = SharedMem::new(0x1000, 0x100);
        let mut p = shared.port();
        p.write_byte(0x1010, 1); // untraced: tracing still off
        p.set_trace(true);
        // A word store = four byte writes to the same word → one entry.
        for i in 0..4 {
            p.write_byte(0x1020 + i, 0xAB);
        }
        // A word load of the same word → one read entry (write ≠ read).
        for i in 0..4 {
            let _ = p.read_byte(0x1020 + i);
        }
        let _ = p.read_byte(0x1040); // different word
        let _ = p.read_byte(0x2000); // out of window: untraced
        let word = (0x1020u32 - 0x1000) >> 2;
        assert_eq!(
            p.take_accesses(),
            vec![(word << 1) | 1, word << 1, ((0x1040u32 - 0x1000) >> 2) << 1]
        );
        assert!(p.take_accesses().is_empty(), "drain clears the log");
        p.set_trace(false);
        let _ = p.read_byte(0x1020);
        assert!(p.take_accesses().is_empty(), "disabled tracing records nothing");
    }

    #[test]
    fn publish_resets_overlay_to_committed_image() {
        let mut shared = SharedMem::new(0, 8);
        let mut a = shared.port();
        a.write_byte(0, 9);
        // A barrier that commits *other* cores only must still clear this
        // port's overlay when publishing (the fabric always commits every
        // port first, so nothing is lost in practice).
        shared.commit(&mut a);
        shared.publish(&mut a);
        assert_eq!(a.read_byte(0), 9);
        assert_eq!(shared.read_committed_word(0), 9);
    }
}
