//! Structured observability hooks: the event stream behind `--observe`.
//!
//! The paper makes trace-file generation and dynamic program analysis
//! first-class simulator goals (§V, goals 2 and 3). This module is the
//! modern counterpart of the line-oriented trace file: a typed, enum-tagged
//! event stream that external collectors (ring buffers, metrics
//! registries, Perfetto exporters — see the `kahrisma-observe` crate)
//! consume through the [`Observer`] trait.
//!
//! The stream is **zero-cost when disabled**: the simulator holds an
//! `Option<Box<dyn Observer>>` and every emission site is guarded by a
//! single `is_some()` check; with no observer attached the superblock hot
//! loop still takes its allocation-free direct path, so observation never
//! taxes unobserved runs.

/// Allocates a process-unique request trace id.
///
/// Trace context for the serving plane: `kctl` and `kgate` stamp every
/// wire request with one of these at its entry point, and every span the
/// request produces (gate hop, worker execution) carries it, so one
/// request can be followed across processes. Ids combine a per-process
/// random-ish tag (from the first call's clock) with a monotonic counter,
/// and are kept under 2^48 so they survive a round trip through JSON
/// `f64` numbers exactly.
#[must_use]
pub fn next_trace_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    if n == 0 {
        // Seed the high bits once from the wall clock (sub-second part) so
        // ids from different processes rarely collide; retries keep the
        // counter monotonic either way.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(1, |d| d.subsec_nanos() as u64 | 1);
        let tag = (nanos & 0xFFFF) << 32;
        let _ = NEXT.compare_exchange(1, tag | 1, Ordering::Relaxed, Ordering::Relaxed);
        return next_trace_id();
    }
    n & 0xFFFF_FFFF_FFFF
}

/// One structured simulator event.
///
/// Events are small `Copy` values so collectors can ring-buffer them
/// without allocation. Addresses are operation-word addresses; `cycle`
/// timestamps come from the attached cycle model (0 without one); `seq` is
/// the functional instruction index (retire order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A decode-cache hash lookup found a cached decode structure (§V-A).
    CacheHit {
        /// Instruction address.
        addr: u32,
    },
    /// A decode-cache hash lookup missed; a full detect & decode follows.
    CacheMiss {
        /// Instruction address.
        addr: u32,
    },
    /// The instruction prediction resolved the decode structure without a
    /// hash lookup (§V-A).
    PredictionHit {
        /// Instruction address.
        addr: u32,
    },
    /// A straight-line superblock was constructed (unique run).
    SuperblockBuild {
        /// Address of the run's head instruction.
        head: u32,
        /// Number of member instructions.
        len: u32,
    },
    /// A superblock was dispatched as one batched execution.
    SuperblockBatch {
        /// Address of the run's head instruction.
        head: u32,
        /// Number of member instructions.
        len: u32,
    },
    /// A `switchtarget` operation executed (§V-D).
    IsaSwitch {
        /// Address of the `switchtarget` operation word.
        addr: u32,
        /// ISA id active before the switch.
        from: u8,
        /// ISA id requested by the operation.
        to: u8,
    },
    /// A `simop` (C-library emulation, §V-E) operation executed.
    SimOp {
        /// Address of the `simop` operation word.
        addr: u32,
        /// The emulation code (which libc routine ran).
        code: u32,
    },
    /// [`crate::Simulator::snapshot`] captured the execution state.
    SnapshotTaken {
        /// Instructions executed at the capture point.
        instructions: u64,
    },
    /// [`crate::Simulator::restore`] reapplied a snapshot.
    Restored {
        /// Instructions executed at the restored point.
        instructions: u64,
    },
    /// [`crate::Simulator::reset`] re-initialized the simulator to its
    /// load-time state (warm decode cache retained). Event `seq` numbering
    /// restarts at 0 after this marker; no `Instr`/`OpIssue` record from
    /// before the reset is ever delivered after it.
    Reset {
        /// Instructions executed before the reset discarded them.
        instructions: u64,
    },
    /// One instruction (bundle) retired — the functional-instruction track.
    Instr {
        /// Functional sequence number (retire order, 0-based).
        seq: u64,
        /// Instruction address.
        addr: u32,
        /// ISA the instruction was decoded under.
        isa: u8,
        /// Issue width (slots, including `nop` fillers).
        width: u8,
        /// Non-`nop` operations in the bundle.
        ops: u8,
        /// Cycle-model time after the instruction (0 without a model).
        cycle: u64,
    },
    /// A hot superblock was promoted to the IR-threaded compiled tier.
    TierPromote {
        /// Address of the run's head instruction.
        head: u32,
        /// Number of member instructions (body plus tail).
        len: u32,
        /// Number of lowered micro-ops in the compiled body.
        ops: u32,
    },
    /// A compiled block was demoted back to the interpreter tier
    /// (overlapping store or same-address re-decode); its heat resets, so
    /// it must re-earn promotion.
    TierInvalidate {
        /// Address of the run's head instruction.
        head: u32,
    },
    /// One non-`nop` operation was issued by the cycle model — the per-slot
    /// DOE issue/stall timeline.
    OpIssue {
        /// Address of the operation word.
        addr: u32,
        /// Issue slot of the operation.
        slot: u8,
        /// Operation mnemonic.
        name: &'static str,
        /// Cycle the model issued the operation.
        issue: u64,
        /// Cycle the operation's result completes.
        completion: u64,
        /// Cycles the operation waited beyond its slot's structural
        /// availability (dependency / serialization stall).
        stall: u32,
    },
}

/// Per-operation issue record produced by a cycle model for the observer
/// stream (see [`crate::cycles::CycleModel::instruction_observed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpIssue {
    /// Issue slot of the operation.
    pub slot: u8,
    /// Cycle the operation issued.
    pub issue: u64,
    /// Cycle the operation's result completes.
    pub completion: u64,
    /// Cycles the operation waited beyond its slot's structural
    /// availability.
    pub stall: u32,
}

/// Consumer of the structured event stream.
///
/// Attached with [`crate::Simulator::set_observer`]; the simulator calls
/// [`Observer::event`] once per event, in execution order. Implementations
/// should be cheap — they run inside the simulation loop (though never on
/// the allocation-free fast path, which is bypassed while an observer is
/// attached).
///
/// Observers are `Send` so an observed [`crate::Simulator`] can migrate
/// between worker threads between runs (serving sessions, campaign cells).
/// Observers needing shared interior state should use a thread-safe handle
/// such as `kahrisma-observe`'s `Shared`.
pub trait Observer: Send {
    /// Consumes one event.
    fn event(&mut self, event: SimEvent);
}

/// Collects events into a plain vector (tests, small runs; unbounded).
#[derive(Debug, Default)]
pub struct VecObserver {
    /// The collected events, in emission order.
    pub events: Vec<SimEvent>,
}

impl VecObserver {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        VecObserver::default()
    }
}

impl Observer for VecObserver {
    fn event(&mut self, event: SimEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_copy_values() {
        // The ring-buffer design budget: one event stays within two cache
        // lines even on the widest variant.
        assert!(std::mem::size_of::<SimEvent>() <= 48, "{}", std::mem::size_of::<SimEvent>());
        let e = SimEvent::CacheHit { addr: 4 };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn trace_ids_are_unique_monotonic_and_json_safe() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert!(b > a, "{a} then {b}");
        // Must survive a JSON f64 round trip exactly.
        assert!(a < 1u64 << 48);
        assert_eq!(a as f64 as u64, a);
    }

    #[test]
    fn vec_observer_collects_in_order() {
        let mut o = VecObserver::new();
        o.event(SimEvent::CacheMiss { addr: 0 });
        o.event(SimEvent::CacheHit { addr: 4 });
        assert_eq!(o.events.len(), 2);
        assert_eq!(o.events[1], SimEvent::CacheHit { addr: 4 });
    }
}
