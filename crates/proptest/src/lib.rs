//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no access to the crates-io registry, so the real
//! `proptest` cannot be downloaded. This crate implements the API subset the
//! workspace's property tests use — the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_filter`/
//! `prop_recursive`/`boxed`, integer-range and tuple strategies, [`any`],
//! [`Just`], [`prop_oneof!`], `prop::collection::{vec, hash_set}`, simple
//! regex-class string strategies, and the `prop_assert*`/`prop_assume!`
//! macros — on top of a deterministic xorshift PRNG seeded from the test
//! name.
//!
//! Compared to the real crate there is no shrinking: a failing case panics
//! with the formatted assertion message. Determinism means failures
//! reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

// ------------------------------------------------------------------- rng --

/// Deterministic xorshift64* generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator seeded from a test's fully qualified name, so
    /// every test has a distinct but reproducible stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed so a zero hash cannot occur.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ------------------------------------------------------------ errors/cfg --

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// --------------------------------------------------------------- strategy --

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<R: Strategy, F: Fn(Self::Value) -> R>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (resampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// nested level and returns the strategy for one more level; leaves and
    /// branches are mixed at every level, nesting at most `depth` deep.
    fn prop_recursive<R, F>(self, depth: u32, _desired_size: u32, _branch: u32, recurse: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R: Strategy, F: Fn(S::Value) -> R> Strategy for FlatMap<S, F> {
    type Value = R::Value;
    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive samples", self.whence);
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives (at least one).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// -------------------------------------------------------------- integers --

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.below(span as u64) as i128)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                ((*self.start() as i128) + (rng.below(span as u64) as i128)) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, i8, i16, i32, i64, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

// ------------------------------------------------------------- arbitrary --

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------- tuples --

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// A `Vec` of strategies generates a `Vec` of one value from each, in order
/// (proptest's per-element collection strategy).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// --------------------------------------------------------------- strings --

/// Strategy from a simplified character-class regex (`"[a-z_]{1,8}"` style):
/// a sequence of `[...]` classes or literal characters, each optionally
/// repeated `{m}` or `{m,n}` times.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let mut class: Vec<char> = Vec::new();
            if chars[i] == '[' {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in {self:?}");
                        class.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {self:?}");
                i += 1; // skip ']'
            } else {
                class.push(chars[i]);
                i += 1;
            }
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated repetition") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().expect("bad {m,n}"), n.parse().expect("bad {m,n}")),
                    None => {
                        let m: usize = body.parse().expect("bad {m}");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty character class in {self:?}");
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

// ------------------------------------------------------------ collection --

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Hash, HashSet, Strategy, TestRng};

    /// Ways to express a collection size (plain count or range).
    pub trait SizeRange {
        /// Samples a concrete size.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Generates `Vec`s of values from `element` with a size from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `HashSet`s of distinct values from `element`.
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Duplicates shrink the set, like proptest under a tight domain.
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

// ---------------------------------------------------------------- macros --

/// Runs property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]`-able function executing `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(1000),
                        "proptest {}: too many rejected cases",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (case {}): {}", stringify!($name), executed, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserting variant of `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserting variant of `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface matching `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let v = Strategy::generate(&(-10i32..=10), &mut rng);
            assert!((-10..=10).contains(&v));
            let v = Strategy::generate(&(u32::MAX - 1..), &mut rng);
            assert!(v >= u32::MAX - 1);
        }
    }

    #[test]
    fn string_classes_match_shape() {
        let mut rng = crate::TestRng::for_test("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z_][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_', "{s}");
        }
    }

    #[test]
    fn oneof_map_filter_compose() {
        let mut rng = crate::TestRng::for_test("compose");
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)]
            .prop_map(|v| v * 10)
            .prop_filter("not 20", |&v| v != 20);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 30);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_cases(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
