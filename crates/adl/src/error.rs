//! Error type for architecture-description validation and table generation.

use std::fmt;

/// Error produced while validating an architecture description or while
/// generating operation tables from it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdlError {
    /// Two ISAs in the same architecture share an identifier.
    DuplicateIsaId(u8),
    /// Two operations in the same ISA share an opcode.
    DuplicateOpcode {
        /// ISA in which the clash occurred.
        isa: String,
        /// The clashing opcode value.
        opcode: u8,
        /// Name of the first operation that claimed the opcode.
        first: String,
        /// Name of the second operation that claimed the opcode.
        second: String,
    },
    /// Two operations in the same ISA share a mnemonic.
    DuplicateName {
        /// ISA in which the clash occurred.
        isa: String,
        /// The clashing mnemonic.
        name: String,
    },
    /// An ISA declared an unsupported issue width.
    InvalidIssueWidth {
        /// ISA with the bad width.
        isa: String,
        /// The declared width.
        width: u8,
    },
    /// The architecture contains no ISA.
    EmptyArchitecture,
    /// An ISA contains no operations.
    EmptyIsa(String),
    /// A referenced ISA identifier does not exist in the architecture.
    UnknownIsa(u8),
}

impl fmt::Display for AdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlError::DuplicateIsaId(id) => write!(f, "duplicate ISA identifier {id}"),
            AdlError::DuplicateOpcode { isa, opcode, first, second } => write!(
                f,
                "ISA `{isa}`: operations `{first}` and `{second}` share opcode {opcode:#04x}"
            ),
            AdlError::DuplicateName { isa, name } => {
                write!(f, "ISA `{isa}`: duplicate operation mnemonic `{name}`")
            }
            AdlError::InvalidIssueWidth { isa, width } => {
                write!(f, "ISA `{isa}`: invalid issue width {width} (must be 1..=16)")
            }
            AdlError::EmptyArchitecture => write!(f, "architecture description contains no ISA"),
            AdlError::EmptyIsa(isa) => write!(f, "ISA `{isa}` contains no operations"),
            AdlError::UnknownIsa(id) => write!(f, "unknown ISA identifier {id}"),
        }
    }
}

impl std::error::Error for AdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let errs = [
            AdlError::DuplicateIsaId(3),
            AdlError::DuplicateOpcode {
                isa: "risc".into(),
                opcode: 0x10,
                first: "add".into(),
                second: "sub".into(),
            },
            AdlError::DuplicateName { isa: "risc".into(), name: "add".into() },
            AdlError::InvalidIssueWidth { isa: "vliw".into(), width: 0 },
            AdlError::EmptyArchitecture,
            AdlError::EmptyIsa("risc".into()),
            AdlError::UnknownIsa(9),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AdlError>();
    }
}
