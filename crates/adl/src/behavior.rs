//! Declarative operation semantics.
//!
//! In the paper's framework the ADL embeds a C++ source fragment per
//! operation from which TargetGen generates a simulation function. In this
//! Rust reproduction the semantics vocabulary is a closed enum ([`Behavior`]);
//! the simulator's table generator maps each variant to a concrete simulation
//! function, which preserves the paper's structure (one simulation function
//! per operation, dispatched through the operation table) while staying safe
//! and testable.

use std::fmt;

/// Arithmetic/logic operations computed by an EDPE's ALU (and its
/// multiply/divide unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set-if-less-than, signed (result 0/1).
    Slt,
    /// Set-if-less-than, unsigned (result 0/1).
    Sltu,
    /// Logical shift left (shift amount masked to 5 bits).
    Sll,
    /// Logical shift right (shift amount masked to 5 bits).
    Srl,
    /// Arithmetic shift right (shift amount masked to 5 bits).
    Sra,
    /// Low 32 bits of the signed product.
    Mul,
    /// High 32 bits of the signed product.
    Mulh,
    /// High 32 bits of the unsigned product.
    Mulhu,
    /// Signed division (division by zero yields all-ones, as in RISC-V).
    Div,
    /// Unsigned division (division by zero yields all-ones).
    Divu,
    /// Signed remainder (remainder by zero yields the dividend).
    Rem,
    /// Unsigned remainder (remainder by zero yields the dividend).
    Remu,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit operands.
    ///
    /// This single definition is shared by the instruction-set simulator, the
    /// cycle-accurate reference model, and the compiler's constant folder, so
    /// the three can never disagree on semantics.
    ///
    /// # Example
    ///
    /// ```
    /// use kahrisma_adl::AluOp;
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xFFFF_FFFF);
    /// assert_eq!(AluOp::Div.eval(7, 0), u32::MAX); // division by zero
    /// ```
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let sa = a as i32;
        let sb = b as i32;
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => u32::from(sa < sb),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (sa.wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => ((i64::from(sa) * i64::from(sb)) >> 32) as u32,
            AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if sa == i32::MIN && sb == -1 {
                    sa as u32
                } else {
                    (sa / sb) as u32
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if sa == i32::MIN && sb == -1 {
                    0
                } else {
                    (sa % sb) as u32
                }
            }
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }

    /// Functional-unit class the operation occupies in the microarchitecture.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            AluOp::Mul | AluOp::Mulh | AluOp::Mulhu | AluOp::Div | AluOp::Divu | AluOp::Rem
            | AluOp::Remu => FuClass::MulDiv,
            _ => FuClass::Alu,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
        };
        f.write_str(s)
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl CondOp {
    /// Evaluates the condition on two 32-bit operands.
    ///
    /// # Example
    ///
    /// ```
    /// use kahrisma_adl::CondOp;
    /// assert!(CondOp::Lt.eval(0xFFFF_FFFF, 0)); // -1 < 0 signed
    /// assert!(!CondOp::Ltu.eval(0xFFFF_FFFF, 0));
    /// ```
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CondOp::Eq => a == b,
            CondOp::Ne => a != b,
            CondOp::Lt => (a as i32) < (b as i32),
            CondOp::Ge => (a as i32) >= (b as i32),
            CondOp::Ltu => a < b,
            CondOp::Geu => a >= b,
        }
    }
}

impl fmt::Display for CondOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CondOp::Eq => "eq",
            CondOp::Ne => "ne",
            CondOp::Lt => "lt",
            CondOp::Ge => "ge",
            CondOp::Ltu => "ltu",
            CondOp::Geu => "geu",
        };
        f.write_str(s)
    }
}

/// Memory access width of a load or store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl MemWidth {
    /// Width of the access in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Read-modify-write operations performed atomically on a memory word.
///
/// The fabric resolves atomics to the shared window at quantum barriers in
/// core-index order, which is what makes lock acquisition deterministic at
/// any host-thread count (see `kahrisma-fabric`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AtomicOp {
    /// `rd = mem[rs1]; mem[rs1] = rs2` — atomic exchange.
    Swap,
    /// `rd = mem[rs1]; mem[rs1] = rd + rs2` — atomic fetch-and-add.
    Add,
}

impl AtomicOp {
    /// The value stored back given the old memory word and the operand.
    #[must_use]
    pub fn apply(self, old: u32, operand: u32) -> u32 {
        match self {
            AtomicOp::Swap => operand,
            AtomicOp::Add => old.wrapping_add(operand),
        }
    }
}

impl fmt::Display for AtomicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicOp::Swap => "swap",
            AtomicOp::Add => "add",
        };
        f.write_str(s)
    }
}

/// Functional-unit class used for microarchitectural resource modelling.
///
/// The cycle-approximate DOE model deliberately ignores these constraints
/// (paper §VI-C, heuristic reason 1); the cycle-accurate reference model in
/// `kahrisma-rtl` enforces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FuClass {
    /// Single-cycle integer ALU.
    Alu,
    /// Multi-cycle multiply/divide unit (may be shared between slots).
    MulDiv,
    /// Load/store unit (memory port).
    Mem,
    /// Branch/control unit.
    Branch,
    /// System operations (ISA switch, libc emulation, halt).
    System,
}

/// Declarative semantics of one operation.
///
/// Register operands named in the variants (`rd`, `rs1`, `rs2`, `imm`) refer
/// to the fields extracted from the instruction word by the operation's
/// [`Encoding`](crate::Encoding); implicit registers (e.g. the instruction
/// pointer written by every branch) are declared separately on
/// [`OperationDesc`](crate::OperationDesc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Behavior {
    /// `rd = alu(rs1, rs2)`.
    IntAlu(AluOp),
    /// `rd = alu(rs1, imm)`; logical operations zero-extend the immediate,
    /// arithmetic operations sign-extend it (see `kahrisma-isa` docs).
    IntAluImm(AluOp),
    /// `rd = imm << 13` — load-upper-immediate (U encoding, 19-bit field).
    LoadUpperImm,
    /// `rd = mem[rs1 + imm]` with the given width; `signed` selects sign- vs
    /// zero-extension for sub-word loads.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend sub-word data when `true`.
        signed: bool,
    },
    /// `mem[rs1 + imm] = rs2` with the given width.
    Store {
        /// Access width.
        width: MemWidth,
    },
    /// `if cond(rs1, rs2) { ip = op_addr + imm * 4 }`, where `op_addr` is
    /// the address of the branch operation's own word (within a VLIW bundle:
    /// `instr_addr + slot * 4`).
    Branch(CondOp),
    /// `ip = imm * 4` — absolute jump (J encoding, 24-bit field).
    Jump,
    /// `rd_link = next_instr_addr; ip = imm * 4` — call (link register is an
    /// implicit destination).
    JumpAndLink,
    /// `ip = rs1` — indirect jump / return.
    JumpReg,
    /// `rd_link = next_instr_addr; ip = rs1` — indirect call.
    JumpAndLinkReg,
    /// Switches the active ISA to identifier `imm` (paper §V-D). The next
    /// instruction is detected and decoded with the new ISA's tables.
    SwitchTarget,
    /// Executes emulated C-standard-library function `imm` natively in the
    /// simulator (paper §V-E); reads arguments and writes results through the
    /// calling convention.
    SimOp,
    /// Stops simulation; the exit code follows the calling convention.
    Halt,
    /// No operation (also the VLIW slot filler).
    Nop,
    /// `rd = mem[rs1]; mem[rs1] = op(mem[rs1], rs2)` — word-sized atomic
    /// read-modify-write. On a fabric core an atomic addressing the shared
    /// window is resolved at the next quantum barrier against the committed
    /// image (in core-index order); elsewhere it executes immediately.
    Atomic(AtomicOp),
}

impl Behavior {
    /// Whether the operation reads data memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Behavior::Load { .. })
    }

    /// Whether the operation writes data memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Behavior::Store { .. })
    }

    /// Whether the operation accesses data memory at all.
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store() || matches!(self, Behavior::Atomic(_))
    }

    /// Whether the operation may redirect control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Behavior::Branch(_)
                | Behavior::Jump
                | Behavior::JumpAndLink
                | Behavior::JumpReg
                | Behavior::JumpAndLinkReg
        )
    }

    /// Whether the operation serializes the pipeline (ISA switch, halt,
    /// atomic read-modify-write).
    #[must_use]
    pub fn is_serializing(self) -> bool {
        matches!(self, Behavior::SwitchTarget | Behavior::Halt | Behavior::Atomic(_))
    }

    /// Functional-unit class occupied by the operation.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            Behavior::IntAlu(op) | Behavior::IntAluImm(op) => op.fu_class(),
            Behavior::LoadUpperImm | Behavior::Nop => FuClass::Alu,
            Behavior::Load { .. } | Behavior::Store { .. } => FuClass::Mem,
            Behavior::Branch(_)
            | Behavior::Jump
            | Behavior::JumpAndLink
            | Behavior::JumpReg
            | Behavior::JumpAndLinkReg => FuClass::Branch,
            Behavior::SwitchTarget | Behavior::SimOp | Behavior::Halt => FuClass::System,
            Behavior::Atomic(_) => FuClass::Mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basic_arithmetic() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Nor.eval(0, 0), u32::MAX);
    }

    #[test]
    fn alu_comparisons() {
        assert_eq!(AluOp::Slt.eval(0xFFFF_FFFF, 0), 1); // -1 < 0
        assert_eq!(AluOp::Sltu.eval(0xFFFF_FFFF, 0), 0);
        assert_eq!(AluOp::Slt.eval(3, 3), 0);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 33), 2); // 33 & 31 == 1
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 1), 0xC000_0000);
    }

    #[test]
    fn alu_mul_div_edge_cases() {
        assert_eq!(AluOp::Mul.eval(0x1_0000, 0x1_0000), 0); // low 32 bits
        assert_eq!(AluOp::Mulh.eval(0x8000_0000, 2), 0xFFFF_FFFF); // -2^31 * 2 >> 32
        assert_eq!(AluOp::Mulhu.eval(0x8000_0000, 2), 1);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Div.eval(0x8000_0000, 0xFFFF_FFFF), 0x8000_0000); // overflow case
        assert_eq!(AluOp::Rem.eval(0x8000_0000, 0xFFFF_FFFF), 0);
        assert_eq!(AluOp::Divu.eval(10, 0), u32::MAX);
        assert_eq!(AluOp::Remu.eval(10, 0), 10);
        assert_eq!(AluOp::Rem.eval((-7i32) as u32, 2), (-1i32) as u32);
    }

    #[test]
    fn cond_signedness() {
        assert!(CondOp::Eq.eval(5, 5));
        assert!(CondOp::Ne.eval(5, 6));
        assert!(CondOp::Ge.eval(0, 0xFFFF_FFFF)); // 0 >= -1 signed
        assert!(CondOp::Geu.eval(0xFFFF_FFFF, 0));
        assert!(!CondOp::Geu.eval(0, 1));
    }

    #[test]
    fn behavior_classification() {
        assert!(Behavior::Load { width: MemWidth::Word, signed: false }.is_mem());
        assert!(Behavior::Store { width: MemWidth::Byte }.is_store());
        assert!(!Behavior::Store { width: MemWidth::Byte }.is_load());
        assert!(Behavior::Branch(CondOp::Eq).is_control());
        assert!(Behavior::JumpAndLinkReg.is_control());
        assert!(Behavior::SwitchTarget.is_serializing());
        assert!(!Behavior::Nop.is_control());
        assert_eq!(Behavior::IntAlu(AluOp::Mul).fu_class(), FuClass::MulDiv);
        assert_eq!(Behavior::Branch(CondOp::Eq).fu_class(), FuClass::Branch);
        assert_eq!(Behavior::Load { width: MemWidth::Word, signed: true }.fu_class(), FuClass::Mem);
    }

    #[test]
    fn atomic_classification_and_semantics() {
        let swap = Behavior::Atomic(AtomicOp::Swap);
        assert!(swap.is_mem() && !swap.is_load() && !swap.is_store());
        assert!(swap.is_serializing() && !swap.is_control());
        assert_eq!(swap.fu_class(), FuClass::Mem);
        assert_eq!(AtomicOp::Swap.apply(5, 9), 9);
        assert_eq!(AtomicOp::Add.apply(u32::MAX, 2), 1);
        assert_eq!(AtomicOp::Swap.to_string(), "swap");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }

    #[test]
    fn display_names_are_lowercase_mnemonics() {
        assert_eq!(AluOp::Sltu.to_string(), "sltu");
        assert_eq!(CondOp::Geu.to_string(), "geu");
    }
}
