//! Register-file description and register indices.

use std::fmt;

/// Index of a general-purpose register in the KAHRISMA register file.
///
/// The value is always below the register-file size declared by the
/// architecture description (32 for the shipped KAHRISMA family).
///
/// # Example
///
/// ```
/// use kahrisma_adl::Reg;
/// let r = Reg::new(4);
/// assert_eq!(r.index(), 4);
/// assert_eq!(r.to_string(), "r4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`; the shipped architecture has 32 registers and
    /// all encodings reserve 5 bits per register field.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range (0..32)");
        Reg(index)
    }

    /// Returns the raw register index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hardwired-zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// Description of the register file shared by every ISA of the architecture.
///
/// KAHRISMA EDPEs each carry a local register file; architecturally the ISAs
/// expose one flat file of `count` general-purpose registers, of which
/// register 0 reads as zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFileDesc {
    count: u8,
    zero_register: bool,
}

impl RegFileDesc {
    /// Creates a register-file description.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 32.
    #[must_use]
    pub fn new(count: u8, zero_register: bool) -> Self {
        assert!((1..=32).contains(&count), "register count must be in 1..=32");
        RegFileDesc { count, zero_register }
    }

    /// Number of architecturally visible general-purpose registers.
    #[must_use]
    pub fn count(&self) -> u8 {
        self.count
    }

    /// Whether register 0 is hardwired to zero (writes are discarded).
    #[must_use]
    pub fn has_zero_register(&self) -> bool {
        self.zero_register
    }
}

impl Default for RegFileDesc {
    /// The KAHRISMA default: 32 registers with a hardwired `r0 = 0`.
    fn default() -> Self {
        RegFileDesc::new(32, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        for i in 0..32 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i);
            assert_eq!(u8::from(r), i);
            assert_eq!(r.to_string(), format!("r{i}"));
        }
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::default(), Reg::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn regfile_defaults_match_kahrisma() {
        let rf = RegFileDesc::default();
        assert_eq!(rf.count(), 32);
        assert!(rf.has_zero_register());
    }

    #[test]
    #[should_panic(expected = "register count")]
    fn regfile_rejects_zero_count() {
        let _ = RegFileDesc::new(0, true);
    }
}
