//! Architecture, ISA and operation descriptions.

use std::fmt;

use crate::behavior::Behavior;
use crate::error::AdlError;
use crate::field::{Field, FieldKind};
use crate::reg::{Reg, RegFileDesc};

/// Identifier of one ISA configuration within an architecture description.
///
/// The paper (§V-D): "Each ISA is identified by a unique number that is
/// provided by the ADL"; the `SWITCHTARGET` instruction takes this number as
/// an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IsaId(u8);

impl IsaId {
    /// Creates an ISA identifier.
    #[must_use]
    pub const fn new(id: u8) -> Self {
        IsaId(id)
    }

    /// The raw identifier value.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl From<u8> for IsaId {
    fn from(v: u8) -> Self {
        IsaId(v)
    }
}

impl fmt::Display for IsaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isa#{}", self.0)
    }
}

/// Standard operation-word encodings of the KAHRISMA family.
///
/// Every encoding reserves bits `[31:24]` for the opcode; the remaining 24
/// bits are laid out per variant. [`Encoding::fields`] materializes the
/// corresponding [`Field`] list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Encoding {
    /// `op rd, rs1, rs2` — rd `[23:19]`, rs1 `[18:14]`, rs2 `[13:9]`.
    R,
    /// `op rd, rs1, imm14` — rd `[23:19]`, rs1 `[18:14]`, signed imm `[13:0]`.
    I,
    /// Like [`Encoding::I`] but the immediate is zero-extended (logical
    /// immediates, shift amounts).
    Iu,
    /// `op rs1, rs2, off14` — rs1 `[23:19]`, rs2 `[18:14]`, signed word
    /// offset `[13:0]` (branches).
    B,
    /// `op rd, imm19` — rd `[23:19]`, unsigned imm `[18:0]` (`lui`).
    U,
    /// `op imm24` — unsigned imm `[23:0]` (jumps, `switchtarget`, `simop`).
    J,
    /// `op rd, rs1` — rd `[23:19]`, rs1 `[18:14]` (indirect calls).
    Rr,
    /// `op rs1` — rs1 `[23:19]` (indirect jumps).
    R1,
    /// No operands beyond the opcode (`nop`, `halt`).
    None,
}

impl Encoding {
    /// The opcode field shared by all encodings: bits `[31:24]`.
    #[must_use]
    pub fn opcode_field() -> Field {
        Field::new(FieldKind::Opcode, 24, 8)
    }

    /// Materializes the field list of the encoding (opcode first).
    #[must_use]
    pub fn fields(self) -> Vec<Field> {
        let mut f = vec![Self::opcode_field()];
        match self {
            Encoding::R => {
                f.push(Field::new(FieldKind::Rd, 19, 5));
                f.push(Field::new(FieldKind::Rs1, 14, 5));
                f.push(Field::new(FieldKind::Rs2, 9, 5));
            }
            Encoding::I => {
                f.push(Field::new(FieldKind::Rd, 19, 5));
                f.push(Field::new(FieldKind::Rs1, 14, 5));
                f.push(Field::new(FieldKind::Imm { signed: true }, 0, 14));
            }
            Encoding::Iu => {
                f.push(Field::new(FieldKind::Rd, 19, 5));
                f.push(Field::new(FieldKind::Rs1, 14, 5));
                f.push(Field::new(FieldKind::Imm { signed: false }, 0, 14));
            }
            Encoding::B => {
                f.push(Field::new(FieldKind::Rs1, 19, 5));
                f.push(Field::new(FieldKind::Rs2, 14, 5));
                f.push(Field::new(FieldKind::Imm { signed: true }, 0, 14));
            }
            Encoding::U => {
                f.push(Field::new(FieldKind::Rd, 19, 5));
                f.push(Field::new(FieldKind::Imm { signed: false }, 0, 19));
            }
            Encoding::J => {
                f.push(Field::new(FieldKind::Imm { signed: false }, 0, 24));
            }
            Encoding::Rr => {
                f.push(Field::new(FieldKind::Rd, 19, 5));
                f.push(Field::new(FieldKind::Rs1, 14, 5));
            }
            Encoding::R1 => {
                f.push(Field::new(FieldKind::Rs1, 19, 5));
            }
            Encoding::None => {}
        }
        f
    }

    /// The immediate field of this encoding, if any.
    #[must_use]
    pub fn imm_field(self) -> Option<Field> {
        self.fields().into_iter().find(|f| matches!(f.kind(), FieldKind::Imm { .. }))
    }
}

/// Description of one operation of an ISA.
///
/// Mirrors the paper's operation-table entry: "Each operation within an
/// operation table contains its name, size, fields, implicit registers, and
/// pointer to the simulation function." The simulation function is generated
/// from [`Behavior`] by the simulator's table generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDesc {
    name: &'static str,
    opcode: u8,
    encoding: Encoding,
    behavior: Behavior,
    delay: u32,
    implicit_reads: Vec<Reg>,
    implicit_writes: Vec<Reg>,
    writes_ip: bool,
}

impl OperationDesc {
    /// Creates an operation description.
    ///
    /// `delay` is the operation's execution delay in cycles; for memory
    /// operations it is the *issue* delay, the memory hierarchy adds the
    /// access latency.
    #[must_use]
    pub fn new(
        name: &'static str,
        opcode: u8,
        encoding: Encoding,
        behavior: Behavior,
        delay: u32,
    ) -> Self {
        let writes_ip = behavior.is_control();
        OperationDesc {
            name,
            opcode,
            encoding,
            behavior,
            delay,
            implicit_reads: Vec::new(),
            implicit_writes: Vec::new(),
            writes_ip,
        }
    }

    /// Adds an implicitly read register (e.g. the stack pointer of `simop`).
    #[must_use]
    pub fn with_implicit_read(mut self, r: Reg) -> Self {
        self.implicit_reads.push(r);
        self
    }

    /// Adds an implicitly written register (e.g. the link register of `jal`).
    #[must_use]
    pub fn with_implicit_write(mut self, r: Reg) -> Self {
        self.implicit_writes.push(r);
        self
    }

    /// Operation mnemonic.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Opcode value (bits `[31:24]` of the operation word).
    #[must_use]
    pub fn opcode(&self) -> u8 {
        self.opcode
    }

    /// Encoding layout of the operation word.
    #[must_use]
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Declarative semantics.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Execution delay in cycles.
    #[must_use]
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// Size of the operation word in bytes (constant 4 in this family).
    #[must_use]
    pub fn size(&self) -> u32 {
        4
    }

    /// Implicitly read registers.
    #[must_use]
    pub fn implicit_reads(&self) -> &[Reg] {
        &self.implicit_reads
    }

    /// Implicitly written registers.
    #[must_use]
    pub fn implicit_writes(&self) -> &[Reg] {
        &self.implicit_writes
    }

    /// Whether the operation implicitly writes the instruction pointer.
    #[must_use]
    pub fn writes_ip(&self) -> bool {
        self.writes_ip
    }

    /// Encodes this operation with the given field values into a word.
    #[must_use]
    pub fn encode(&self, rd: u8, rs1: u8, rs2: u8, imm: u32) -> u32 {
        let mut w = 0u32;
        for f in self.encoding.fields() {
            w = match f.kind() {
                FieldKind::Opcode => f.insert(w, u32::from(self.opcode)),
                FieldKind::Rd => f.insert(w, u32::from(rd)),
                FieldKind::Rs1 => f.insert(w, u32::from(rs1)),
                FieldKind::Rs2 => f.insert(w, u32::from(rs2)),
                FieldKind::Imm { .. } => f.insert(w, imm),
            };
        }
        w
    }
}

/// Description of one ISA configuration (instruction format + operation set).
///
/// An *instruction* of an ISA with issue width `w` consists of `w`
/// consecutive 32-bit operation words, one per issue slot (EDPE); the RISC
/// configuration is the `w = 1` case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaDesc {
    id: IsaId,
    name: &'static str,
    issue_width: u8,
    operations: Vec<OperationDesc>,
}

impl IsaDesc {
    /// Creates an ISA description with the given identifier, name and issue
    /// width. Operations are added with [`IsaDesc::push_op`].
    #[must_use]
    pub fn new(id: u8, name: &'static str, issue_width: u8) -> Self {
        IsaDesc { id: IsaId::new(id), name, issue_width, operations: Vec::new() }
    }

    /// Appends an operation to this ISA's operation set.
    pub fn push_op(&mut self, op: OperationDesc) {
        self.operations.push(op);
    }

    /// Unique identifier of the ISA.
    #[must_use]
    pub fn id(&self) -> IsaId {
        self.id
    }

    /// Human-readable name (e.g. `"risc"`, `"vliw4"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of issue slots per instruction.
    #[must_use]
    pub fn issue_width(&self) -> u8 {
        self.issue_width
    }

    /// Size of one full instruction in bytes (`issue_width * 4`).
    #[must_use]
    pub fn instr_size(&self) -> u32 {
        u32::from(self.issue_width) * 4
    }

    /// The operations of this ISA.
    #[must_use]
    pub fn operations(&self) -> &[OperationDesc] {
        &self.operations
    }
}

/// A complete architecture description: register file plus all ISA
/// configurations that may co-exist or be switched between at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchDesc {
    name: &'static str,
    regfile: RegFileDesc,
    isas: Vec<IsaDesc>,
    default_isa: IsaId,
}

impl ArchDesc {
    /// Creates and validates an architecture description. The first ISA in
    /// `isas` becomes the default ISA (used when no initial ISA is given to
    /// the simulator, paper §V-D).
    ///
    /// # Errors
    ///
    /// Returns an error if the description is inconsistent: no ISAs, an ISA
    /// without operations, duplicate ISA ids, duplicate opcodes or mnemonics
    /// within an ISA, or an invalid issue width.
    pub fn new(name: &'static str, isas: Vec<IsaDesc>) -> Result<Self, AdlError> {
        Self::with_regfile(name, RegFileDesc::default(), isas)
    }

    /// Like [`ArchDesc::new`] with an explicit register-file description.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ArchDesc::new`].
    pub fn with_regfile(
        name: &'static str,
        regfile: RegFileDesc,
        isas: Vec<IsaDesc>,
    ) -> Result<Self, AdlError> {
        if isas.is_empty() {
            return Err(AdlError::EmptyArchitecture);
        }
        let mut seen_ids = std::collections::HashSet::new();
        for isa in &isas {
            if !(1..=16).contains(&isa.issue_width) {
                return Err(AdlError::InvalidIssueWidth { isa: isa.name.into(), width: isa.issue_width });
            }
            if !seen_ids.insert(isa.id) {
                return Err(AdlError::DuplicateIsaId(isa.id.value()));
            }
            if isa.operations.is_empty() {
                return Err(AdlError::EmptyIsa(isa.name.into()));
            }
            let mut opcodes: std::collections::HashMap<u8, &str> = std::collections::HashMap::new();
            let mut names = std::collections::HashSet::new();
            for op in &isa.operations {
                if let Some(first) = opcodes.insert(op.opcode, op.name) {
                    return Err(AdlError::DuplicateOpcode {
                        isa: isa.name.into(),
                        opcode: op.opcode,
                        first: first.into(),
                        second: op.name.into(),
                    });
                }
                if !names.insert(op.name) {
                    return Err(AdlError::DuplicateName { isa: isa.name.into(), name: op.name.into() });
                }
            }
        }
        let default_isa = isas[0].id();
        Ok(ArchDesc { name, regfile, isas, default_isa })
    }

    /// Architecture name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Register-file description.
    #[must_use]
    pub fn regfile(&self) -> &RegFileDesc {
        &self.regfile
    }

    /// All ISA configurations.
    #[must_use]
    pub fn isas(&self) -> &[IsaDesc] {
        &self.isas
    }

    /// Looks up an ISA by identifier.
    #[must_use]
    pub fn isa(&self, id: IsaId) -> Option<&IsaDesc> {
        self.isas.iter().find(|i| i.id() == id)
    }

    /// Looks up an ISA by name.
    #[must_use]
    pub fn isa_by_name(&self, name: &str) -> Option<&IsaDesc> {
        self.isas.iter().find(|i| i.name() == name)
    }

    /// The default ISA used when simulation starts without an explicit
    /// initial ISA (paper §V-D).
    #[must_use]
    pub fn default_isa(&self) -> IsaId {
        self.default_isa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::AluOp;

    fn op(name: &'static str, opcode: u8) -> OperationDesc {
        OperationDesc::new(name, opcode, Encoding::R, Behavior::IntAlu(AluOp::Add), 1)
    }

    #[test]
    fn encoding_fields_cover_expected_kinds() {
        let f = Encoding::I.fields();
        assert_eq!(f.len(), 4);
        assert!(Encoding::J.imm_field().is_some());
        assert!(Encoding::R.imm_field().is_none());
        assert!(Encoding::None.fields().len() == 1);
    }

    #[test]
    fn encode_places_opcode_high() {
        let o = op("add", 0xAB);
        let w = o.encode(1, 2, 3, 0);
        assert_eq!(w >> 24, 0xAB);
    }

    #[test]
    fn arch_validation_catches_duplicates() {
        let mut isa = IsaDesc::new(0, "risc", 1);
        isa.push_op(op("add", 1));
        isa.push_op(op("sub", 1));
        let err = ArchDesc::new("a", vec![isa]).unwrap_err();
        assert!(matches!(err, AdlError::DuplicateOpcode { .. }));

        let mut isa = IsaDesc::new(0, "risc", 1);
        isa.push_op(op("add", 1));
        isa.push_op(op("add", 2));
        let err = ArchDesc::new("a", vec![isa]).unwrap_err();
        assert!(matches!(err, AdlError::DuplicateName { .. }));

        let mut a = IsaDesc::new(0, "risc", 1);
        a.push_op(op("add", 1));
        let mut b = IsaDesc::new(0, "vliw2", 2);
        b.push_op(op("add", 1));
        let err = ArchDesc::new("a", vec![a, b]).unwrap_err();
        assert_eq!(err, AdlError::DuplicateIsaId(0));
    }

    #[test]
    fn arch_validation_rejects_empty() {
        assert_eq!(ArchDesc::new("a", vec![]).unwrap_err(), AdlError::EmptyArchitecture);
        let isa = IsaDesc::new(0, "risc", 1);
        assert!(matches!(ArchDesc::new("a", vec![isa]).unwrap_err(), AdlError::EmptyIsa(_)));
        let mut isa = IsaDesc::new(0, "wide", 0);
        isa.push_op(op("add", 1));
        assert!(matches!(
            ArchDesc::new("a", vec![isa]).unwrap_err(),
            AdlError::InvalidIssueWidth { .. }
        ));
    }

    #[test]
    fn lookup_by_id_and_name() {
        let mut a = IsaDesc::new(0, "risc", 1);
        a.push_op(op("add", 1));
        let mut b = IsaDesc::new(1, "vliw2", 2);
        b.push_op(op("add", 1));
        let arch = ArchDesc::new("k", vec![a, b]).unwrap();
        assert_eq!(arch.isa(IsaId::new(1)).unwrap().name(), "vliw2");
        assert_eq!(arch.isa_by_name("risc").unwrap().id(), IsaId::new(0));
        assert!(arch.isa(IsaId::new(9)).is_none());
        assert_eq!(arch.default_isa(), IsaId::new(0));
        assert_eq!(arch.isa_by_name("vliw2").unwrap().instr_size(), 8);
    }

    #[test]
    fn implicit_registers_recorded() {
        let o = OperationDesc::new("jal", 9, Encoding::J, Behavior::JumpAndLink, 1)
            .with_implicit_write(Reg::new(31));
        assert_eq!(o.implicit_writes(), &[Reg::new(31)]);
        assert!(o.writes_ip());
        assert_eq!(o.size(), 4);
    }
}
