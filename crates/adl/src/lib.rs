//! Architecture Description Language (ADL) for the KAHRISMA simulator.
//!
//! The KAHRISMA software framework (Stripf, Koenig, Becker; DATE 2012) is
//! retargeted from a single *architecture description* that specifies every
//! processor configuration (ISA) in parallel: the register file, the
//! operations of each ISA, their instruction-word encodings ("fields"),
//! implicitly accessed registers, operation delays, and operation semantics.
//! A utility called *TargetGen* compiles that description into the tables the
//! simulator, assembler and compiler consume.
//!
//! This crate is the Rust equivalent of that ADL layer:
//!
//! * [`ArchDesc`] / [`IsaDesc`] / [`OperationDesc`] — the declarative
//!   description (what the paper stores in its ADL file),
//! * [`Behavior`] — a closed, declarative semantics vocabulary standing in
//!   for the paper's embedded C++ simulation fragments,
//! * [`TargetGen`] and [`OperationTable`] — the generated per-ISA operation
//!   tables used for instruction *detection* (matching constant fields) and
//!   *decoding* (extracting all fields into a decode structure).
//!
//! The concrete KAHRISMA ISA family is defined on top of this crate in
//! `kahrisma-isa`; the simulator in `kahrisma-core` turns each operation's
//! [`Behavior`] into a simulation function, mirroring TargetGen's generated
//! code.
//!
//! # Example
//!
//! ```
//! use kahrisma_adl::{ArchDesc, IsaDesc, OperationDesc, Encoding, Behavior, AluOp, TargetGen};
//!
//! let mut isa = IsaDesc::new(0, "demo", 1);
//! isa.push_op(OperationDesc::new("add", 0x01, Encoding::R, Behavior::IntAlu(AluOp::Add), 1));
//! let arch = ArchDesc::new("demo-arch", vec![isa])?;
//! let tables = TargetGen::new(&arch).generate()?;
//! let table = tables.table(0.into()).unwrap();
//! let word = 0x01_00_00_00; // opcode 0x01 in bits [31:24]
//! let op = table.detect(word).unwrap();
//! assert_eq!(op.name(), "add");
//! # Ok::<(), kahrisma_adl::AdlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod desc;
mod error;
mod field;
mod reg;
mod table;

pub use behavior::{AluOp, AtomicOp, Behavior, CondOp, FuClass, MemWidth};
pub use desc::{ArchDesc, Encoding, IsaDesc, IsaId, OperationDesc};
pub use error::AdlError;
pub use field::{Field, FieldKind, FieldValues};
pub use reg::{Reg, RegFileDesc};
pub use table::{DecodedOp, OperationTable, TableSet, TargetGen};
