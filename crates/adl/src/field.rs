//! Instruction-word fields.
//!
//! Per the paper (§V), each operation in an operation table carries its
//! *fields*: "the organization of the operation's instruction word, e.g. the
//! encoding and location of the opcode or destination/source registers".
//! [`Field`] describes one such bit range; [`FieldValues`] is the extracted
//! *decode structure* contents for one operation word.

use std::fmt;

/// The role a bit-field plays within an operation word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FieldKind {
    /// Constant field matched during instruction detection (the opcode).
    Opcode,
    /// Destination register number.
    Rd,
    /// First source register number.
    Rs1,
    /// Second source register number.
    Rs2,
    /// Immediate operand; `signed` selects sign-extension on extract.
    Imm {
        /// Sign-extend the extracted value when `true`.
        signed: bool,
    },
}

/// One contiguous bit range of an operation word together with its role.
///
/// # Example
///
/// ```
/// use kahrisma_adl::{Field, FieldKind};
/// // destination register in bits [23:19]
/// let rd = Field::new(FieldKind::Rd, 19, 5);
/// assert_eq!(rd.extract(0b0101_1 << 19), 0b0101_1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Field {
    kind: FieldKind,
    lsb: u8,
    width: u8,
}

impl Field {
    /// Creates a field occupying `width` bits starting at bit `lsb`.
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit in a 32-bit word or `width` is zero.
    #[must_use]
    pub fn new(kind: FieldKind, lsb: u8, width: u8) -> Self {
        assert!(width > 0 && lsb < 32 && u32::from(lsb) + u32::from(width) <= 32,
            "field [{lsb}+:{width}] does not fit a 32-bit operation word");
        Field { kind, lsb, width }
    }

    /// The role of this field.
    #[must_use]
    pub fn kind(self) -> FieldKind {
        self.kind
    }

    /// Least-significant bit position of the field.
    #[must_use]
    pub fn lsb(self) -> u8 {
        self.lsb
    }

    /// Width of the field in bits.
    #[must_use]
    pub fn width(self) -> u8 {
        self.width
    }

    /// Bit mask of the field within the operation word.
    #[must_use]
    pub fn mask(self) -> u32 {
        let ones = if self.width == 32 { u32::MAX } else { (1u32 << self.width) - 1 };
        ones << self.lsb
    }

    /// Extracts the raw (zero-extended) field value from an operation word.
    #[must_use]
    pub fn extract(self, word: u32) -> u32 {
        (word & self.mask()) >> self.lsb
    }

    /// Extracts the field value, sign-extending immediates marked signed.
    #[must_use]
    pub fn extract_value(self, word: u32) -> u32 {
        let raw = self.extract(word);
        match self.kind {
            FieldKind::Imm { signed: true } => {
                let shift = 32 - u32::from(self.width);
                (((raw << shift) as i32) >> shift) as u32
            }
            _ => raw,
        }
    }

    /// Inserts `value` into `word` at this field's position.
    ///
    /// Only the low `width` bits of `value` are used, so signed immediates may
    /// be passed as their two's-complement `u32` representation.
    #[must_use]
    pub fn insert(self, word: u32, value: u32) -> u32 {
        (word & !self.mask()) | ((value << self.lsb) & self.mask())
    }

    /// Whether `value` is representable in this field (as signed or unsigned
    /// according to the field kind).
    #[must_use]
    pub fn fits(self, value: i64) -> bool {
        let w = i64::from(self.width);
        match self.kind {
            FieldKind::Imm { signed: true } => {
                value >= -(1 << (w - 1)) && value < (1 << (w - 1))
            }
            _ => value >= 0 && value < (1 << w),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}[{}+:{}]", self.kind, self.lsb, self.width)
    }
}

/// The field values extracted from one operation word — the contents of the
/// paper's *decode structure* for a single operation.
///
/// Register fields absent from an encoding read as 0 (`r0`), immediates as 0;
/// the operation's [`Behavior`](crate::Behavior) determines which values are
/// meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldValues {
    /// Destination register number.
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Immediate operand (already sign-extended if the field is signed).
    pub imm: u32,
}

impl FieldValues {
    /// Extracts all of `fields` from `word`.
    #[must_use]
    pub fn extract(fields: &[Field], word: u32) -> Self {
        let mut v = FieldValues::default();
        for f in fields {
            match f.kind() {
                FieldKind::Opcode => {}
                FieldKind::Rd => v.rd = f.extract(word) as u8,
                FieldKind::Rs1 => v.rs1 = f.extract(word) as u8,
                FieldKind::Rs2 => v.rs2 = f.extract(word) as u8,
                FieldKind::Imm { .. } => v.imm = f.extract_value(word),
            }
        }
        v
    }

    /// Immediate interpreted as a signed value.
    #[must_use]
    pub fn simm(&self) -> i32 {
        self.imm as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_and_insert_roundtrip() {
        let f = Field::new(FieldKind::Rs1, 14, 5);
        for v in 0..32u32 {
            let w = f.insert(0, v);
            assert_eq!(f.extract(w), v);
        }
    }

    #[test]
    fn signed_imm_sign_extends() {
        let f = Field::new(FieldKind::Imm { signed: true }, 0, 14);
        let w = f.insert(0, (-5i32) as u32);
        assert_eq!(f.extract_value(w) as i32, -5);
        assert_eq!(f.extract(w), 0x3FFB); // raw is zero-extended
    }

    #[test]
    fn unsigned_imm_zero_extends() {
        let f = Field::new(FieldKind::Imm { signed: false }, 0, 14);
        let w = f.insert(0, 0x3FFF);
        assert_eq!(f.extract_value(w), 0x3FFF);
    }

    #[test]
    fn fits_ranges() {
        let s = Field::new(FieldKind::Imm { signed: true }, 0, 14);
        assert!(s.fits(8191));
        assert!(!s.fits(8192));
        assert!(s.fits(-8192));
        assert!(!s.fits(-8193));
        let u = Field::new(FieldKind::Imm { signed: false }, 0, 14);
        assert!(u.fits(16383));
        assert!(!u.fits(16384));
        assert!(!u.fits(-1));
    }

    #[test]
    fn insert_does_not_clobber_other_bits() {
        let rd = Field::new(FieldKind::Rd, 19, 5);
        let word = 0xFF00_0000;
        let w = rd.insert(word, 0b10101);
        assert_eq!(w & 0xFF00_0000, 0xFF00_0000);
        assert_eq!(rd.extract(w), 0b10101);
    }

    #[test]
    fn field_values_extract_all() {
        let fields = [
            Field::new(FieldKind::Opcode, 24, 8),
            Field::new(FieldKind::Rd, 19, 5),
            Field::new(FieldKind::Rs1, 14, 5),
            Field::new(FieldKind::Imm { signed: true }, 0, 14),
        ];
        let mut w = 0u32;
        w = fields[0].insert(w, 0x42);
        w = fields[1].insert(w, 7);
        w = fields[2].insert(w, 9);
        w = fields[3].insert(w, (-100i32) as u32);
        let v = FieldValues::extract(&fields, w);
        assert_eq!(v.rd, 7);
        assert_eq!(v.rs1, 9);
        assert_eq!(v.rs2, 0);
        assert_eq!(v.simm(), -100);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_field_panics() {
        let _ = Field::new(FieldKind::Imm { signed: false }, 30, 8);
    }

    #[test]
    fn full_width_field_mask() {
        let f = Field::new(FieldKind::Imm { signed: false }, 0, 32);
        assert_eq!(f.mask(), u32::MAX);
    }
}
