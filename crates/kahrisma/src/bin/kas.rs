//! `kas` — the mixed-ISA assembler/linker driver.
//!
//! ```text
//! kas [options] <source.s>...
//!   -o <file>    output executable path (default a.elf)
//!   --no-libc    do not link the generated C-library stubs
//!   -c           assemble each input to an object (<name>.o) without linking
//! ```

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: kas [-o FILE] [--no-libc] [-c] <source.s>...");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut inputs: Vec<String> = Vec::new();
    let mut output = "a.elf".to_string();
    let mut link_libc = true;
    let mut objects_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => {
                output = args.next().unwrap_or_else(|| usage());
            }
            "--no-libc" => link_libc = false,
            "-c" => objects_only = true,
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => inputs.push(path.to_string()),
            other => {
                eprintln!("kas: unexpected argument `{other}`");
                usage();
            }
        }
    }
    if inputs.is_empty() {
        usage();
    }

    let mut objects = Vec::new();
    for path in &inputs {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("kas: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match kahrisma::asm::assemble(path, &source) {
            Ok(obj) => {
                if objects_only {
                    let out = format!("{}.o", path.trim_end_matches(".s"));
                    if let Err(e) = std::fs::write(&out, obj.to_bytes()) {
                        eprintln!("kas: cannot write {out}: {e}");
                        return ExitCode::from(2);
                    }
                    eprintln!("kas: wrote {out}");
                }
                objects.push(obj);
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    }
    if objects_only {
        return ExitCode::SUCCESS;
    }

    if link_libc {
        let stubs = kahrisma::asm::libc_stubs_asm();
        match kahrisma::asm::assemble("libc_stubs.s", &stubs) {
            Ok(obj) => objects.push(obj),
            Err(e) => {
                eprintln!("kas: internal stub error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match kahrisma::asm::link(&objects, &kahrisma::asm::LinkOptions::default()) {
        Ok(exe) => {
            if let Err(e) = std::fs::write(&output, exe.to_bytes()) {
                eprintln!("kas: cannot write {output}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("kas: wrote {output} (entry {:#010x})", exe.entry);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kas: link error: {e}");
            ExitCode::from(1)
        }
    }
}
