//! `kcc` — the retargetable KC compiler driver.
//!
//! ```text
//! kcc [options] <source.kc>
//!   --isa <risc|vliw2|vliw4|vliw6|vliw8>  target ISA (default risc)
//!   --fn-isa <name=isa>                   per-function ISA override (repeatable)
//!   -S                                    emit assembly instead of an executable
//!   -o <file>                             output path (default a.elf / out.s)
//!   -O0                                   disable IR optimizations
//! ```

use std::process::ExitCode;

use kahrisma::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: kcc [--isa NAME] [--fn-isa name=isa]... [-S] [-o FILE] [-O0] <source.kc>"
    );
    std::process::exit(2);
}

fn parse_isa(name: &str) -> IsaKind {
    IsaKind::ALL.into_iter().find(|k| k.name() == name).unwrap_or_else(|| {
        eprintln!("kcc: unknown ISA `{name}`");
        usage()
    })
}

fn main() -> ExitCode {
    let mut options = CompileOptions::default();
    let mut emit_asm = false;
    let mut output: Option<String> = None;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("kcc: {what} expects a value");
                usage()
            })
        };
        match arg.as_str() {
            "--isa" => options.isa = parse_isa(&value("--isa")),
            "--fn-isa" => {
                let spec = value("--fn-isa");
                let Some((name, isa)) = spec.split_once('=') else {
                    eprintln!("kcc: --fn-isa expects name=isa");
                    usage()
                };
                options.function_isa.insert(name.to_string(), parse_isa(isa));
            }
            "-S" => emit_asm = true,
            "-o" => output = Some(value("-o")),
            "-O0" => options.optimize = false,
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && input.is_none() => input = Some(path.to_string()),
            other => {
                eprintln!("kcc: unexpected argument `{other}`");
                usage();
            }
        }
    }
    let Some(input) = input else { usage() };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kcc: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };

    if emit_asm {
        match kahrisma::kcc::compile(&source, &options) {
            Ok(asm) => {
                let path = output.unwrap_or_else(|| "out.s".to_string());
                if let Err(e) = std::fs::write(&path, asm) {
                    eprintln!("kcc: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("kcc: wrote {path}");
            }
            Err(e) => {
                eprintln!("{input}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match kahrisma::kcc::compile_to_executable(&source, &options) {
            Ok(exe) => {
                let path = output.unwrap_or_else(|| "a.elf".to_string());
                if let Err(e) = std::fs::write(&path, exe.to_bytes()) {
                    eprintln!("kcc: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("kcc: wrote {path} (entry {:#010x})", exe.entry);
            }
            Err(e) => {
                eprintln!("{input}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
