//! `ksim` — the KAHRISMA instruction-set simulator as a command-line tool.
//!
//! Mirrors the paper's simulator interface: it takes an ELF executable,
//! optionally an initial ISA ("the initial ISA can optionally be specified
//! per command line parameter", §V-D), a cycle model (§VI), a trace file
//! (§V), and reports statistics.
//!
//! ```text
//! ksim [options] <executable.elf>
//!   --isa <risc|vliw2|vliw4|vliw6|vliw8>   initial ISA (default: from ELF)
//!   --model <ilp|aie|doe>                  cycle-approximation model
//!   --predictor <perfect|static|bimodal>   branch prediction (default perfect)
//!   --trace                                write the trace to stderr
//!   --trace-out <file>                     write the trace to a file
//!   --observe <file>                       write a Perfetto/Chrome trace JSON
//!   --observe-capacity <n>                 event ring capacity (default 1000000)
//!   --metrics <file>                       write the metrics registry JSON ("-" = stderr)
//!   --json <file>                          write the unified stats JSON ("-" = stdout)
//!   --flame <file>                         write collapsed stacks (needs --profile)
//!   --rtl                                  run the cycle-accurate reference
//!   --max-instr <n>                        instruction budget (default 1e9)
//!   --no-cache | --no-prediction           disable §V-A mechanisms
//!   --baseline-cache                       per-entry cache path (no superblocks)
//!   --tier <interp|ir>                     execution tier (default ir: compile
//!                                          hot superblocks to threaded IR)
//!   --tier-threshold <n>                   dispatches before promotion (default 16)
//!   --profile                              per-function attribution (§V goal 2)
//!   --stats                                print detailed statistics
//!   --cores <n>                            fabric mode: replicate the program
//!                                          onto N cores (see kfab for
//!                                          heterogeneous fabrics)
//!   --host-threads <n>                     fabric worker threads (default 1)
//!   --quantum <n>                          fabric barrier interval (default 50000)
//! ```
//!
//! Traces never go to stdout: simulated-program output owns stdout, so
//! `--trace` interleaves nothing (stderr) and `--trace-out` writes a file.
//!
//! With `--cores N` (N ≥ 2) the executable is replicated onto an N-core
//! fabric with a shared memory window; results are bit-identical for any
//! `--host-threads` value. Exit code 0 then means all cores halted.

use std::io::Write as _;
use std::process::ExitCode;

use kahrisma::core::args::ArgList;
use kahrisma::core::{PredictorKind, WriteTraceSink};
use kahrisma::prelude::*;

#[derive(Debug)]
struct Options {
    exe_path: String,
    initial_isa: Option<IsaKind>,
    model: Option<CycleModelKind>,
    predictor: kahrisma::core::BranchPredictorConfig,
    trace_stderr: bool,
    trace_out: Option<String>,
    observe: Option<String>,
    observe_capacity: usize,
    metrics: Option<String>,
    json: Option<String>,
    flame: Option<String>,
    rtl: bool,
    max_instr: u64,
    decode_cache: bool,
    prediction: bool,
    superblocks: bool,
    tier: TierMode,
    tier_threshold: u32,
    stats: bool,
    profile: bool,
    cores: usize,
    host_threads: usize,
    quantum: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            exe_path: String::new(),
            initial_isa: None,
            model: None,
            predictor: kahrisma::core::BranchPredictorConfig::perfect(),
            trace_stderr: false,
            trace_out: None,
            observe: None,
            observe_capacity: 1_000_000,
            metrics: None,
            json: None,
            flame: None,
            rtl: false,
            max_instr: 1_000_000_000,
            decode_cache: true,
            prediction: true,
            superblocks: true,
            tier: TierMode::Ir,
            tier_threshold: SimConfig::default().tier_threshold,
            stats: false,
            profile: false,
            cores: 1,
            host_threads: 1,
            quantum: kahrisma::fabric::DEFAULT_QUANTUM,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ksim [--isa NAME] [--model ilp|aie|doe] [--predictor perfect|static|bimodal]\n\
         \x20           [--trace] [--trace-out FILE] [--observe FILE] [--observe-capacity N]\n\
         \x20           [--metrics FILE|-] [--json FILE|-] [--flame FILE] [--rtl] [--max-instr N]\n\
         \x20           [--no-cache] [--no-prediction] [--baseline-cache] [--tier interp|ir]\n\
         \x20           [--tier-threshold N] [--profile] [--stats]\n\
         \x20           [--cores N] [--host-threads N] [--quantum N]\n\
         \x20           <executable.elf>"
    );
    ExitCode::from(2)
}

fn parse_isa(name: &str) -> Result<IsaKind, String> {
    IsaKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown ISA `{name}`"))
}

fn parse_args(mut args: ArgList) -> Result<Options, String> {
    let mut options = Options::default();
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--isa" => options.initial_isa = Some(parse_isa(&args.value("--isa")?)?),
            "--model" => {
                options.model = Some(match args.value("--model")?.as_str() {
                    "ilp" => CycleModelKind::Ilp,
                    "aie" => CycleModelKind::Aie,
                    "doe" => CycleModelKind::Doe,
                    other => return Err(format!("unknown model `{other}`")),
                });
            }
            "--predictor" => {
                options.predictor = match args.value("--predictor")?.as_str() {
                    "perfect" => kahrisma::core::BranchPredictorConfig::perfect(),
                    "bimodal" => kahrisma::core::BranchPredictorConfig::bimodal(),
                    "static" => kahrisma::core::BranchPredictorConfig {
                        kind: PredictorKind::StaticBackwardTaken,
                        penalty: 3,
                    },
                    other => return Err(format!("unknown predictor `{other}`")),
                };
            }
            "--trace" => options.trace_stderr = true,
            "--trace-out" => options.trace_out = Some(args.value("--trace-out")?),
            "--observe" => options.observe = Some(args.value("--observe")?),
            "--observe-capacity" => {
                options.observe_capacity = args.parse_value("--observe-capacity")?;
            }
            "--metrics" => options.metrics = Some(args.value("--metrics")?),
            "--json" => options.json = Some(args.value("--json")?),
            "--flame" => options.flame = Some(args.value("--flame")?),
            "--rtl" => options.rtl = true,
            "--max-instr" => options.max_instr = args.parse_value("--max-instr")?,
            "--no-cache" => options.decode_cache = false,
            "--baseline-cache" => options.superblocks = false,
            "--no-prediction" => options.prediction = false,
            "--tier" => {
                options.tier = match args.value("--tier")?.as_str() {
                    "interp" => TierMode::Interp,
                    "ir" => TierMode::Ir,
                    other => return Err(format!("unknown tier `{other}`")),
                };
            }
            "--tier-threshold" => options.tier_threshold = args.parse_value("--tier-threshold")?,
            "--stats" => options.stats = true,
            "--profile" => options.profile = true,
            "--cores" => options.cores = args.parse_value("--cores")?,
            "--host-threads" => options.host_threads = args.parse_value("--host-threads")?,
            "--quantum" => options.quantum = args.parse_value("--quantum")?,
            "--help" | "-h" => return Err(String::new()),
            path if !path.starts_with('-') && options.exe_path.is_empty() => {
                options.exe_path = path.to_string();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if options.exe_path.is_empty() {
        return Err("an <executable.elf> argument is required".to_string());
    }
    if options.cores == 0 || options.host_threads == 0 || options.quantum == 0 {
        return Err("--cores, --host-threads, and --quantum must be at least 1".to_string());
    }
    if options.tier_threshold == 0 {
        return Err("--tier-threshold must be at least 1".to_string());
    }
    if options.cores > 1 {
        let single_core_only: [(&str, bool); 6] = [
            ("--trace", options.trace_stderr),
            ("--trace-out", options.trace_out.is_some()),
            ("--observe", options.observe.is_some()),
            ("--flame", options.flame.is_some()),
            ("--profile", options.profile),
            ("--rtl", options.rtl),
        ];
        if let Some((flag, _)) = single_core_only.iter().find(|(_, set)| *set) {
            return Err(format!(
                "{flag} is single-core only; use kfab for fabric observability"
            ));
        }
    }
    Ok(options)
}

fn write_json(what: &str, path: &str, json: &str) -> Result<(), String> {
    match path {
        "-" if what == "json" => {
            println!("{json}");
            Ok(())
        }
        "-" => {
            eprintln!("{json}");
            Ok(())
        }
        _ => std::fs::write(path, json).map_err(|e| format!("cannot write {what} file {path}: {e}")),
    }
}

/// `--cores N`: replicate the program onto an N-core fabric.
fn run_fabric(options: &Options, exe: Executable, config: SimConfig) -> ExitCode {
    let label = options
        .exe_path
        .rsplit('/')
        .next()
        .unwrap_or(options.exe_path.as_str())
        .to_string();
    let specs = (0..options.cores)
        .map(|_| CoreSpec::new(label.clone(), exe.clone(), config.clone()))
        .collect();
    let fabric_config = FabricConfig {
        quantum: options.quantum,
        host_threads: options.host_threads,
        ..FabricConfig::default()
    };
    let mut fabric = match Fabric::new(specs, fabric_config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match fabric.run_for(options.max_instr) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ksim: simulation error: {e}");
            return ExitCode::from(3);
        }
    };
    let stats = fabric.stats();
    if options.stats {
        for (index, core) in stats.cores.iter().enumerate() {
            eprintln!(
                "core{index}: {} instructions, {} operations, exit {}",
                core.stats.instructions,
                core.stats.operations,
                core.exit_code.map_or_else(|| "-".to_string(), |c| c.to_string()),
            );
        }
        eprintln!(
            "fabric: {} cores, {} quanta, {} instructions aggregate",
            stats.cores.len(),
            stats.quanta,
            stats.aggregate.instructions
        );
    }
    if let Some(path) = &options.json {
        let mut report = StatsReport::new();
        stats.report_into(&mut report);
        report.push_f64("wall_seconds", stats.wall.as_secs_f64());
        report.push_str(
            "outcome",
            match outcome {
                FabricOutcome::AllHalted => "halted",
                FabricOutcome::BudgetExhausted => "budget",
            },
        );
        if let Err(e) = write_json("json", path, &report.to_json()) {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &options.metrics {
        if let Err(e) = write_json("metrics", path, &fabric.metrics().to_json()) {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    }
    match outcome {
        FabricOutcome::AllHalted => ExitCode::SUCCESS,
        FabricOutcome::BudgetExhausted => {
            eprintln!("ksim: instruction budget exhausted");
            ExitCode::from(124)
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args(ArgList::from_env()) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ksim: {msg}");
            }
            return usage();
        }
    };
    let bytes = match std::fs::read(&options.exe_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ksim: cannot read {}: {e}", options.exe_path);
            return ExitCode::from(2);
        }
    };
    let exe = match Executable::from_bytes(&bytes) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("ksim: {}: {e}", options.exe_path);
            return ExitCode::from(2);
        }
    };

    if options.rtl {
        match kahrisma::rtl::simulate(&exe, &RtlConfig::default(), options.max_instr) {
            Ok(result) => {
                eprintln!(
                    "ksim (rtl): {} cycles, {} instructions, {} operations",
                    result.cycles, result.instructions, result.operations
                );
                return ExitCode::from(result.exit_code.unwrap_or(124) as u8);
            }
            Err(e) => {
                eprintln!("ksim (rtl): {e}");
                return ExitCode::from(3);
            }
        }
    }

    let config = SimConfig {
        initial_isa: options.initial_isa.map(IsaKind::id),
        cycle_model: options.model,
        decode_cache: options.decode_cache,
        prediction: options.prediction,
        superblocks: options.superblocks,
        branch_prediction: options.predictor,
        profile: options.profile,
        tier: options.tier,
        tier_threshold: options.tier_threshold,
        ..SimConfig::default()
    };

    if options.cores > 1 {
        return run_fabric(&options, exe, config);
    }

    let mut sim = match Simulator::new(&exe, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &options.trace_out {
        // Creates missing parent directories; errors already name the
        // offending path.
        match WriteTraceSink::create(path) {
            Ok(sink) => sim.set_trace_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("ksim: {e}");
                return ExitCode::from(2);
            }
        }
    } else if options.trace_stderr {
        // Simulated-program output owns stdout, so the trace goes to stderr.
        sim.set_trace_sink(Box::new(WriteTraceSink::new(std::io::BufWriter::new(
            std::io::stderr(),
        ))));
    }

    let collector = if options.observe.is_some() || options.metrics.is_some() {
        let shared = kahrisma::observe::Shared::new(kahrisma::observe::Collector::new(
            options.observe_capacity,
        ));
        sim.set_observer(Box::new(shared.handle()));
        Some(shared)
    } else {
        None
    };

    let start = std::time::Instant::now();
    let outcome = match sim.run(options.max_instr) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ksim: simulation error: {e}");
            eprintln!("ksim: instruction pointer history (newest last):");
            for addr in sim.ip_history() {
                eprintln!("  {addr:#010x}  {}", sim.describe_addr(addr));
            }
            return ExitCode::from(3);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();

    // Program stdout goes to the host stdout.
    let mut out = std::io::stdout();
    let _ = out.write_all(sim.state().stdout.as_slice());
    let _ = out.flush();

    let stats = sim.stats();
    if options.stats {
        eprintln!("instructions:     {}", stats.instructions);
        eprintln!("operations:       {} (+{} nops)", stats.operations, stats.nops);
        eprintln!("detect&decodes:   {} ({:.3}% avoided)", stats.detect_decodes, stats.decode_avoided_ratio() * 100.0);
        eprintln!("prediction hits:  {} ({:.1}% of lookups avoided)", stats.prediction_hits, stats.lookup_avoided_ratio() * 100.0);
        eprintln!("memory ops:       {} reads, {} writes", stats.mem_reads, stats.mem_writes);
        eprintln!("isa switches:     {}", stats.isa_switches);
        eprintln!("speed:            {:.2} MIPS", stats.throughput(elapsed).mips);
        if let Some(cycles) = sim.cycle_stats() {
            eprintln!("approx cycles:    {} ({:.3} ops/cycle)", cycles.cycles, cycles.ops_per_cycle());
            for level in &cycles.memory {
                if let Some(c) = level.cache {
                    eprintln!(
                        "  {}: {} hits, {} misses ({:.1}%), {} writebacks",
                        level.name,
                        c.hits,
                        c.misses,
                        c.miss_ratio() * 100.0,
                        c.writebacks
                    );
                }
            }
        }
        if let Some((preds, misses)) = sim.branch_stats() {
            eprintln!("branch predictor: {misses}/{preds} mispredicted");
        }
    }
    if let Some(path) = &options.json {
        let mut report = StatsReport::for_stats(stats);
        if let Some(cycles) = sim.cycle_stats() {
            report.cycles(&cycles);
        }
        report.throughput(&stats.throughput(elapsed));
        match outcome {
            RunOutcome::Halted { exit_code } => {
                report.push_str("outcome", "halted");
                report.push_u64("exit_code", u64::from(exit_code));
            }
            RunOutcome::BudgetExhausted => report.push_str("outcome", "budget"),
        }
        if let Err(e) = write_json("json", path, &report.to_json()) {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(profile) = sim.function_profile() {
        eprintln!("{:<20}{:>12}{:>12}{:>12}", "function", "instrs", "ops", "cycles");
        for f in profile.iter().take(20) {
            eprintln!("{:<20}{:>12}{:>12}{:>12}", f.name, f.instructions, f.operations, f.cycles);
        }
        if let Some(opcodes) = sim.opcode_histogram() {
            eprintln!("{:<20}{:>12}", "opcode", "count");
            for (name, count) in opcodes.iter().take(10) {
                eprintln!("{name:<20}{count:>12}");
            }
        }
        if let Some(path) = &options.flame {
            let weight = kahrisma::observe::flame::default_weight(&profile);
            let stacks = kahrisma::observe::flame::collapsed_stacks(&profile, weight);
            if let Err(e) = std::fs::write(path, stacks) {
                eprintln!("ksim: cannot write flame file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    } else if options.flame.is_some() {
        eprintln!("ksim: --flame requires --profile");
        return ExitCode::from(2);
    }

    if let Some(shared) = &collector {
        let c = shared.lock();
        if let Some(path) = &options.observe {
            if c.ring.dropped() > 0 {
                eprintln!(
                    "ksim: event ring dropped {} of {} events; raise --observe-capacity \
                     (currently {}) for a complete timeline",
                    c.ring.dropped(),
                    c.ring.total(),
                    c.ring.capacity()
                );
            }
            let json = kahrisma::observe::perfetto::trace_json(&c.ring.to_vec());
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("ksim: cannot write observe file {path}: {e}");
                return ExitCode::from(2);
            }
        }
        if let Some(path) = &options.metrics {
            let json = c.metrics.registry().to_json();
            if let Err(e) = write_json("metrics", path, &json) {
                eprintln!("ksim: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match outcome {
        RunOutcome::Halted { exit_code } => ExitCode::from(exit_code as u8),
        RunOutcome::BudgetExhausted => {
            eprintln!("ksim: instruction budget exhausted");
            ExitCode::from(124)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Result<Options, String> {
        parse_args(ArgList::new(items.iter().map(|s| (*s).to_string()).collect()))
    }

    #[test]
    fn parses_the_classic_single_core_flag_set() {
        let options = parse(&[
            "--isa", "vliw4", "--model", "doe", "--predictor", "bimodal", "--trace-out",
            "t.txt", "--metrics", "-", "--json", "stats.json", "--max-instr", "123456",
            "--no-cache", "--stats", "--profile", "prog.elf",
        ])
        .expect("parse");
        assert_eq!(options.initial_isa, Some(IsaKind::Vliw4));
        assert_eq!(options.model, Some(CycleModelKind::Doe));
        assert_eq!(options.trace_out.as_deref(), Some("t.txt"));
        assert_eq!(options.metrics.as_deref(), Some("-"));
        assert_eq!(options.json.as_deref(), Some("stats.json"));
        assert_eq!(options.max_instr, 123_456);
        assert!(!options.decode_cache);
        assert!(options.stats && options.profile);
        assert_eq!(options.exe_path, "prog.elf");
        assert_eq!(options.cores, 1);
    }

    #[test]
    fn parses_fabric_mode_flags() {
        let options = parse(&[
            "--cores", "4", "--host-threads", "2", "--quantum", "1000", "--json", "-",
            "prog.elf",
        ])
        .expect("parse");
        assert_eq!(options.cores, 4);
        assert_eq!(options.host_threads, 2);
        assert_eq!(options.quantum, 1000);
    }

    #[test]
    fn rejects_missing_input_bad_values_and_unknown_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--max-instr", "abc", "prog.elf"]).is_err());
        assert!(parse(&["--isa", "mips", "prog.elf"]).is_err());
        assert!(parse(&["--model", "warp", "prog.elf"]).is_err());
        assert!(parse(&["--wat", "prog.elf"]).is_err());
        assert!(parse(&["--cores", "0", "prog.elf"]).is_err());
    }

    #[test]
    fn parses_tier_flags_and_rejects_bad_values() {
        let options = parse(&["prog.elf"]).expect("parse");
        assert_eq!(options.tier, TierMode::Ir, "the compiled tier is the default");
        assert_eq!(options.tier_threshold, SimConfig::default().tier_threshold);
        let options =
            parse(&["--tier", "interp", "--tier-threshold", "4", "prog.elf"]).expect("parse");
        assert_eq!(options.tier, TierMode::Interp);
        assert_eq!(options.tier_threshold, 4);
        assert!(parse(&["--tier", "jit", "prog.elf"]).is_err());
        assert!(parse(&["--tier-threshold", "0", "prog.elf"]).is_err());
        // Tier flags flow through to fabric mode (per-core SimConfig).
        assert!(parse(&["--cores", "2", "--tier", "ir", "prog.elf"]).is_ok());
    }

    #[test]
    fn fabric_mode_rejects_single_core_only_flags() {
        let err = parse(&["--cores", "2", "--trace", "prog.elf"]).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        assert!(parse(&["--cores", "2", "--profile", "prog.elf"]).is_err());
        assert!(parse(&["--cores", "2", "--observe", "t.json", "prog.elf"]).is_err());
        // But stats/json/metrics/model all work on a fabric.
        assert!(
            parse(&["--cores", "2", "--model", "aie", "--stats", "--metrics", "-", "prog.elf"])
                .is_ok()
        );
    }
}
