//! `ksim` — the KAHRISMA instruction-set simulator as a command-line tool.
//!
//! Mirrors the paper's simulator interface: it takes an ELF executable,
//! optionally an initial ISA ("the initial ISA can optionally be specified
//! per command line parameter", §V-D), a cycle model (§VI), a trace file
//! (§V), and reports statistics.
//!
//! ```text
//! ksim [options] <executable.elf>
//!   --isa <risc|vliw2|vliw4|vliw6|vliw8>   initial ISA (default: from ELF)
//!   --model <ilp|aie|doe>                  cycle-approximation model
//!   --predictor <perfect|static|bimodal>   branch prediction (default perfect)
//!   --trace                                write the trace to stderr
//!   --trace-out <file>                     write the trace to a file
//!   --observe <file>                       write a Perfetto/Chrome trace JSON
//!   --observe-capacity <n>                 event ring capacity (default 1000000)
//!   --metrics <file>                       write the metrics registry JSON ("-" = stderr)
//!   --flame <file>                         write collapsed stacks (needs --profile)
//!   --rtl                                  run the cycle-accurate reference
//!   --max-instr <n>                        instruction budget (default 1e9)
//!   --no-cache | --no-prediction           disable §V-A mechanisms
//!   --baseline-cache                       per-entry cache path (no superblocks)
//!   --profile                              per-function attribution (§V goal 2)
//!   --stats                                print detailed statistics
//! ```
//!
//! Traces never go to stdout: simulated-program output owns stdout, so
//! `--trace` interleaves nothing (stderr) and `--trace-out` writes a file.

use std::io::Write as _;
use std::process::ExitCode;

use kahrisma::core::{PredictorKind, WriteTraceSink};
use kahrisma::prelude::*;

struct Options {
    exe_path: String,
    initial_isa: Option<IsaKind>,
    model: Option<CycleModelKind>,
    predictor: kahrisma::core::BranchPredictorConfig,
    trace_stderr: bool,
    trace_out: Option<String>,
    observe: Option<String>,
    observe_capacity: usize,
    metrics: Option<String>,
    flame: Option<String>,
    rtl: bool,
    max_instr: u64,
    decode_cache: bool,
    prediction: bool,
    superblocks: bool,
    stats: bool,
    profile: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ksim [--isa NAME] [--model ilp|aie|doe] [--predictor perfect|static|bimodal]\n\
         \x20           [--trace] [--trace-out FILE] [--observe FILE] [--observe-capacity N]\n\
         \x20           [--metrics FILE|-] [--flame FILE] [--rtl] [--max-instr N] [--no-cache]\n\
         \x20           [--no-prediction] [--baseline-cache] [--profile] [--stats]\n\
         \x20           <executable.elf>"
    );
    std::process::exit(2);
}

fn parse_isa(name: &str) -> IsaKind {
    IsaKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            eprintln!("ksim: unknown ISA `{name}`");
            usage()
        })
}

fn parse_args() -> Options {
    let mut options = Options {
        exe_path: String::new(),
        initial_isa: None,
        model: None,
        predictor: kahrisma::core::BranchPredictorConfig::perfect(),
        trace_stderr: false,
        trace_out: None,
        observe: None,
        observe_capacity: 1_000_000,
        metrics: None,
        flame: None,
        rtl: false,
        max_instr: 1_000_000_000,
        decode_cache: true,
        prediction: true,
        superblocks: true,
        stats: false,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("ksim: {what} expects a value");
                usage()
            })
        };
        match arg.as_str() {
            "--isa" => options.initial_isa = Some(parse_isa(&value("--isa"))),
            "--model" => {
                options.model = Some(match value("--model").as_str() {
                    "ilp" => CycleModelKind::Ilp,
                    "aie" => CycleModelKind::Aie,
                    "doe" => CycleModelKind::Doe,
                    other => {
                        eprintln!("ksim: unknown model `{other}`");
                        usage()
                    }
                });
            }
            "--predictor" => {
                options.predictor = match value("--predictor").as_str() {
                    "perfect" => kahrisma::core::BranchPredictorConfig::perfect(),
                    "bimodal" => kahrisma::core::BranchPredictorConfig::bimodal(),
                    "static" => kahrisma::core::BranchPredictorConfig {
                        kind: PredictorKind::StaticBackwardTaken,
                        penalty: 3,
                    },
                    other => {
                        eprintln!("ksim: unknown predictor `{other}`");
                        usage()
                    }
                };
            }
            "--trace" => options.trace_stderr = true,
            "--trace-out" => options.trace_out = Some(value("--trace-out")),
            "--observe" => options.observe = Some(value("--observe")),
            "--observe-capacity" => {
                options.observe_capacity =
                    value("--observe-capacity").parse().unwrap_or_else(|_| usage());
            }
            "--metrics" => options.metrics = Some(value("--metrics")),
            "--flame" => options.flame = Some(value("--flame")),
            "--rtl" => options.rtl = true,
            "--max-instr" => {
                options.max_instr = value("--max-instr").parse().unwrap_or_else(|_| usage());
            }
            "--no-cache" => options.decode_cache = false,
            "--baseline-cache" => options.superblocks = false,
            "--no-prediction" => options.prediction = false,
            "--stats" => options.stats = true,
            "--profile" => options.profile = true,
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && options.exe_path.is_empty() => {
                options.exe_path = path.to_string();
            }
            other => {
                eprintln!("ksim: unexpected argument `{other}`");
                usage();
            }
        }
    }
    if options.exe_path.is_empty() {
        usage();
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();
    let bytes = match std::fs::read(&options.exe_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ksim: cannot read {}: {e}", options.exe_path);
            return ExitCode::from(2);
        }
    };
    let exe = match Executable::from_bytes(&bytes) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("ksim: {}: {e}", options.exe_path);
            return ExitCode::from(2);
        }
    };

    if options.rtl {
        match kahrisma::rtl::simulate(&exe, &RtlConfig::default(), options.max_instr) {
            Ok(result) => {
                eprintln!(
                    "ksim (rtl): {} cycles, {} instructions, {} operations",
                    result.cycles, result.instructions, result.operations
                );
                return ExitCode::from(result.exit_code.unwrap_or(124) as u8);
            }
            Err(e) => {
                eprintln!("ksim (rtl): {e}");
                return ExitCode::from(3);
            }
        }
    }

    let config = SimConfig {
        initial_isa: options.initial_isa.map(IsaKind::id),
        cycle_model: options.model,
        decode_cache: options.decode_cache,
        prediction: options.prediction,
        superblocks: options.superblocks,
        branch_prediction: options.predictor,
        profile: options.profile,
        ..SimConfig::default()
    };

    let mut sim = match Simulator::new(&exe, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ksim: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &options.trace_out {
        // Creates missing parent directories; errors already name the
        // offending path.
        match WriteTraceSink::create(path) {
            Ok(sink) => sim.set_trace_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("ksim: {e}");
                return ExitCode::from(2);
            }
        }
    } else if options.trace_stderr {
        // Simulated-program output owns stdout, so the trace goes to stderr.
        sim.set_trace_sink(Box::new(WriteTraceSink::new(std::io::BufWriter::new(
            std::io::stderr(),
        ))));
    }

    let collector = if options.observe.is_some() || options.metrics.is_some() {
        let shared = kahrisma::observe::Shared::new(kahrisma::observe::Collector::new(
            options.observe_capacity,
        ));
        sim.set_observer(Box::new(shared.handle()));
        Some(shared)
    } else {
        None
    };

    let start = std::time::Instant::now();
    let outcome = match sim.run(options.max_instr) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ksim: simulation error: {e}");
            eprintln!("ksim: instruction pointer history (newest last):");
            for addr in sim.ip_history() {
                eprintln!("  {addr:#010x}  {}", sim.describe_addr(addr));
            }
            return ExitCode::from(3);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();

    // Program stdout goes to the host stdout.
    let mut out = std::io::stdout();
    let _ = out.write_all(sim.state().stdout.as_slice());
    let _ = out.flush();

    let stats = sim.stats();
    if options.stats {
        eprintln!("instructions:     {}", stats.instructions);
        eprintln!("operations:       {} (+{} nops)", stats.operations, stats.nops);
        eprintln!("detect&decodes:   {} ({:.3}% avoided)", stats.detect_decodes, stats.decode_avoided_ratio() * 100.0);
        eprintln!("prediction hits:  {} ({:.1}% of lookups avoided)", stats.prediction_hits, stats.lookup_avoided_ratio() * 100.0);
        eprintln!("memory ops:       {} reads, {} writes", stats.mem_reads, stats.mem_writes);
        eprintln!("isa switches:     {}", stats.isa_switches);
        eprintln!("speed:            {:.2} MIPS", stats.throughput(elapsed).mips);
        if let Some(cycles) = sim.cycle_stats() {
            eprintln!("approx cycles:    {} ({:.3} ops/cycle)", cycles.cycles, cycles.ops_per_cycle());
            for level in &cycles.memory {
                if let Some(c) = level.cache {
                    eprintln!(
                        "  {}: {} hits, {} misses ({:.1}%), {} writebacks",
                        level.name,
                        c.hits,
                        c.misses,
                        c.miss_ratio() * 100.0,
                        c.writebacks
                    );
                }
            }
        }
        if let Some((preds, misses)) = sim.branch_stats() {
            eprintln!("branch predictor: {misses}/{preds} mispredicted");
        }
    }
    if let Some(profile) = sim.function_profile() {
        eprintln!("{:<20}{:>12}{:>12}{:>12}", "function", "instrs", "ops", "cycles");
        for f in profile.iter().take(20) {
            eprintln!("{:<20}{:>12}{:>12}{:>12}", f.name, f.instructions, f.operations, f.cycles);
        }
        if let Some(opcodes) = sim.opcode_histogram() {
            eprintln!("{:<20}{:>12}", "opcode", "count");
            for (name, count) in opcodes.iter().take(10) {
                eprintln!("{name:<20}{count:>12}");
            }
        }
        if let Some(path) = &options.flame {
            let weight = kahrisma::observe::flame::default_weight(&profile);
            let stacks = kahrisma::observe::flame::collapsed_stacks(&profile, weight);
            if let Err(e) = std::fs::write(path, stacks) {
                eprintln!("ksim: cannot write flame file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    } else if options.flame.is_some() {
        eprintln!("ksim: --flame requires --profile");
        return ExitCode::from(2);
    }

    if let Some(shared) = &collector {
        let c = shared.lock();
        if let Some(path) = &options.observe {
            if c.ring.dropped() > 0 {
                eprintln!(
                    "ksim: event ring dropped {} of {} events; raise --observe-capacity \
                     (currently {}) for a complete timeline",
                    c.ring.dropped(),
                    c.ring.total(),
                    c.ring.capacity()
                );
            }
            let json = kahrisma::observe::perfetto::trace_json(&c.ring.to_vec());
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("ksim: cannot write observe file {path}: {e}");
                return ExitCode::from(2);
            }
        }
        if let Some(path) = &options.metrics {
            let json = c.metrics.registry().to_json();
            if path == "-" {
                eprintln!("{json}");
            } else if let Err(e) = std::fs::write(path, json) {
                eprintln!("ksim: cannot write metrics file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match outcome {
        RunOutcome::Halted { exit_code } => ExitCode::from(exit_code as u8),
        RunOutcome::BudgetExhausted => {
            eprintln!("ksim: instruction budget exhausted");
            ExitCode::from(124)
        }
    }
}
