//! `kahrisma` — facade crate for the KAHRISMA cycle-approximate, mixed-ISA
//! simulator toolchain (reproduction of Stripf, Koenig, Becker, DATE 2012).
//!
//! This crate re-exports the complete public API of the workspace so that
//! downstream users (and the repository's examples and integration tests)
//! can depend on one crate:
//!
//! * [`adl`] — architecture description + TargetGen operation tables,
//! * [`isa`] — the concrete KAHRISMA ISA family (RISC + VLIW 2/4/6/8),
//! * [`elf`] — ELF32 object/executable codec with debug sections,
//! * [`asm`] — mixed-ISA assembler and linker,
//! * [`core`] — the cycle-approximate simulator (decode cache, ILP/AIE/DOE
//!   cycle models, memory hierarchy, trace generation, libc emulation),
//! * [`rtl`] — the cycle-accurate DOE reference pipeline,
//! * [`kcc`] — the retargetable KC compiler with VLIW list scheduling,
//! * [`workloads`] — the paper's evaluation applications,
//! * [`observe`] — structured event timelines, metrics, Perfetto export,
//! * [`fabric`] — N-core fabric simulation over a barrier-synchronized
//!   shared memory window,
//! * [`plan`] — the unified execution-planner API: one [`plan::ExecPlan`]
//!   of [`plan::CellRun`]s scheduled by interchangeable backends (local
//!   worker pool, `ksimd` daemon, simulated fabric) plus design-space
//!   grids and Pareto-front reports.
//!
//! # Supported API surface
//!
//! The [`prelude`] is the *supported* public API: everything it re-exports
//! carries compatibility expectations (see the README's "Public API &
//! compatibility" section). The full module re-exports above remain
//! available for advanced use but may change more freely between versions.
//!
//! # Quick start
//!
//! ```
//! use kahrisma::prelude::*;
//!
//! let exe = kahrisma::kcc::compile_to_executable(
//!     "int main() { return 6 * 7; }",
//!     &CompileOptions::for_isa(IsaKind::Vliw4),
//! )?;
//! let mut sim = Simulator::new(&exe, SimConfig::default())?;
//! assert_eq!(sim.run(1_000_000)?, RunOutcome::Halted { exit_code: 42 });
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kahrisma_adl as adl;
pub use kahrisma_asm as asm;
pub use kahrisma_core as core;
pub use kahrisma_elf as elf;
pub use kahrisma_fabric as fabric;
pub use kahrisma_isa as isa;
pub use kahrisma_kcc as kcc;
pub use kahrisma_observe as observe;
pub use kahrisma_plan as plan;
pub use kahrisma_rtl as rtl;
pub use kahrisma_workloads as workloads;

/// The supported public API surface, for glob import.
///
/// Everything here is documented, stable in shape, and covered by the
/// compatibility policy in the README: simulation
/// ([`Simulator`](prelude::Simulator)/[`SimConfig`](prelude::SimConfig)/
/// [`RunOutcome`](prelude::RunOutcome)), checkpointing
/// ([`Snapshot`](prelude::Snapshot)), statistics
/// ([`SimStats`](prelude::SimStats), [`StatsReport`](prelude::StatsReport),
/// [`STATS_SCHEMA_VERSION`](prelude::STATS_SCHEMA_VERSION)), cycle models
/// ([`CycleModelKind`](prelude::CycleModelKind),
/// [`MemoryHierarchy`](prelude::MemoryHierarchy)), observation
/// ([`Observer`](prelude::Observer), [`SimEvent`](prelude::SimEvent)),
/// multi-core fabrics ([`Fabric`](prelude::Fabric),
/// [`CoreSpec`](prelude::CoreSpec), [`FabricConfig`](prelude::FabricConfig)),
/// execution planning ([`ExecPlan`](prelude::ExecPlan),
/// [`CellRun`](prelude::CellRun), [`Planner`](prelude::Planner) and its
/// backends, [`MemGeometry`](prelude::MemGeometry),
/// [`DseReport`](prelude::DseReport)),
/// and the toolchain entry points
/// ([`CompileOptions`](prelude::CompileOptions),
/// [`Workload`](prelude::Workload), [`Executable`](prelude::Executable)).
pub mod prelude {
    /// Cycle-approximation model selector (§VI): `Ilp`, `Aie`, or `Doe`.
    pub use kahrisma_core::CycleModelKind;
    /// Per-level memory delay model consumed by the AIE/DOE cycle models
    /// (§VI-D); `MemoryHierarchy::default()` is the paper's three-level
    /// configuration.
    pub use kahrisma_core::MemoryHierarchy;
    /// Why a run returned: `Halted { exit_code }` or `BudgetExhausted`.
    pub use kahrisma_core::RunOutcome;
    /// Simulator feature toggles: decode cache, prediction, superblocks,
    /// cycle model, initial ISA, branch prediction, profiling.
    pub use kahrisma_core::SimConfig;
    /// Functional counters of a run (instructions, operations, decode and
    /// memory activity); summable across cores via `SimStats::accumulate`.
    pub use kahrisma_core::SimStats;
    /// Execution-tier selector: `Interp` (decode-cache interpreter only)
    /// or `Ir` (promote hot superblocks to the IR-threaded compiled tier).
    pub use kahrisma_core::TierMode;
    /// The interpreter itself: `new`, `run`, `run_for`, `snapshot`,
    /// `restore`, `reset`, observers, trace sinks.
    pub use kahrisma_core::Simulator;
    /// A resumable checkpoint taken by `Simulator::snapshot` and reapplied
    /// by `Simulator::restore`.
    pub use kahrisma_core::Snapshot;
    /// Structured-event observer trait; attach with
    /// `Simulator::set_observer`.
    pub use kahrisma_core::Observer;
    /// One structured simulator event (instruction retired, op issued, ISA
    /// switch, snapshot/restore markers, …).
    pub use kahrisma_core::SimEvent;
    /// The unified stats JSON document builder: `schema_version` first,
    /// then insertion-ordered fields; shared by `ksim --json`, `kfab`,
    /// ksimd, and kbatch reports.
    pub use kahrisma_core::StatsReport;
    /// Version of the unified stats JSON shape emitted by [`StatsReport`].
    pub use kahrisma_core::STATS_SCHEMA_VERSION;
    /// ELF32 executable image; `Executable::from_bytes` loads one.
    pub use kahrisma_elf::Executable;
    /// One core of a fabric: a program plus its simulator configuration;
    /// `CoreSpec::parse("dct:risc")` builds one from a workload spec.
    pub use kahrisma_fabric::CoreSpec;
    /// The N-core fabric simulator: quantum-scheduled cores over a
    /// barrier-synchronized shared window.
    pub use kahrisma_fabric::Fabric;
    /// Fabric-wide knobs: quantum, host threads, shared window, restarts.
    pub use kahrisma_fabric::FabricConfig;
    /// Why `Fabric::run_for` returned: `AllHalted` or `BudgetExhausted`.
    pub use kahrisma_fabric::FabricOutcome;
    /// The concrete KAHRISMA ISA family: RISC plus VLIW 2/4/6/8.
    pub use kahrisma_isa::IsaKind;
    /// Numeric ISA identifiers used in `.isa` directives and trace records.
    pub use kahrisma_isa::isa_id;
    /// KC compiler options; `CompileOptions::for_isa` targets one ISA.
    pub use kahrisma_kcc::CompileOptions;
    /// Cache/memory geometry knobs (L1 lines, line bytes, L2 ports, main
    /// memory delay) — the swept axes of `kbatch dse`; `Default` is the
    /// paper's machine.
    pub use kahrisma_core::MemGeometry;
    /// A named set of simulation cells to execute under a budget — the
    /// planner's unit of work, accepted by every backend.
    pub use kahrisma_plan::ExecPlan;
    /// One fully-specified simulation cell: workload, ISA, engine, cache
    /// variant, memory geometry, execution tier, budget, repeats.
    pub use kahrisma_plan::CellRun;
    /// The scheduling abstraction: a backend that executes an `ExecPlan`.
    pub use kahrisma_plan::Planner;
    /// Per-run planner parameters: skip set, stop-after, progress, and the
    /// result hook (manifest persistence).
    pub use kahrisma_plan::PlanSession;
    /// The in-process work-stealing worker pool (`kbatch`'s default).
    pub use kahrisma_plan::LocalPlanner;
    /// Wire dispatch to a `ksimd` daemon or `kgate` fleet.
    pub use kahrisma_plan::DaemonPlanner;
    /// Co-scheduled execution on the simulated multi-core fabric.
    pub use kahrisma_plan::FabricPlanner;
    /// A design-space-exploration report with its Pareto front marked
    /// (throughput vs CPI vs L1 miss ratio).
    pub use kahrisma_plan::DseReport;
    /// Configuration of the cycle-accurate DOE reference pipeline.
    pub use kahrisma_rtl::RtlConfig;
    /// The paper's evaluation applications (DCT, AES, FFT, quicksort,
    /// cjpeg, djpeg), each self-checking.
    pub use kahrisma_workloads::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let arch = crate::isa::arch();
        assert_eq!(arch.isas().len(), 5);
        let _ = crate::core::SimConfig::default();
        let _ = crate::rtl::RtlConfig::default();
    }

    #[test]
    fn prelude_covers_the_planner_surface() {
        use crate::prelude::*;
        let plan = crate::plan::grids::smoke();
        assert_eq!(plan.cells.len(), 6);
        let _: &CellRun = &plan.cells[0];
        let _: ExecPlan = plan.clone();
        assert_eq!(MemGeometry::default().tag(), "g64x32p1d18");
        fn is_planner<P: Planner>() {}
        is_planner::<LocalPlanner>();
        is_planner::<DaemonPlanner>();
        is_planner::<FabricPlanner>();
        let report = DseReport::new(&plan.name, &plan.fingerprint(), Vec::new());
        assert!(report.frontier_keys().is_empty());
        let _ = PlanSession::default();
    }
}
