//! `kahrisma` — facade crate for the KAHRISMA cycle-approximate, mixed-ISA
//! simulator toolchain (reproduction of Stripf, Koenig, Becker, DATE 2012).
//!
//! This crate re-exports the complete public API of the workspace so that
//! downstream users (and the repository's examples and integration tests)
//! can depend on one crate:
//!
//! * [`adl`] — architecture description + TargetGen operation tables,
//! * [`isa`] — the concrete KAHRISMA ISA family (RISC + VLIW 2/4/6/8),
//! * [`elf`] — ELF32 object/executable codec with debug sections,
//! * [`asm`] — mixed-ISA assembler and linker,
//! * [`core`] — the cycle-approximate simulator (decode cache, ILP/AIE/DOE
//!   cycle models, memory hierarchy, trace generation, libc emulation),
//! * [`rtl`] — the cycle-accurate DOE reference pipeline,
//! * [`kcc`] — the retargetable KC compiler with VLIW list scheduling,
//! * [`workloads`] — the paper's evaluation applications,
//! * [`observe`] — structured event timelines, metrics, Perfetto export.
//!
//! # Quick start
//!
//! ```
//! use kahrisma::prelude::*;
//!
//! let exe = kahrisma::kcc::compile_to_executable(
//!     "int main() { return 6 * 7; }",
//!     &CompileOptions::for_isa(IsaKind::Vliw4),
//! )?;
//! let mut sim = Simulator::new(&exe, SimConfig::default())?;
//! assert_eq!(sim.run(1_000_000)?, RunOutcome::Halted { exit_code: 42 });
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kahrisma_adl as adl;
pub use kahrisma_asm as asm;
pub use kahrisma_core as core;
pub use kahrisma_elf as elf;
pub use kahrisma_isa as isa;
pub use kahrisma_kcc as kcc;
pub use kahrisma_observe as observe;
pub use kahrisma_rtl as rtl;
pub use kahrisma_workloads as workloads;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use kahrisma_core::{
        CycleModelKind, MemoryHierarchy, RunOutcome, SimConfig, SimStats, Simulator,
    };
    pub use kahrisma_elf::Executable;
    pub use kahrisma_isa::{IsaKind, isa_id};
    pub use kahrisma_kcc::CompileOptions;
    pub use kahrisma_rtl::RtlConfig;
    pub use kahrisma_workloads::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let arch = crate::isa::arch();
        assert_eq!(arch.isas().len(), 5);
        let _ = crate::core::SimConfig::default();
        let _ = crate::rtl::RtlConfig::default();
    }
}
