//! The two-pass mixed-ISA assembler.

use std::collections::HashMap;

use kahrisma_elf::{FuncEntry, LineEntry, Object, Reloc, RelocKind, SectionId, SymKind, Symbol};
use kahrisma_isa::adl::{Encoding, OperationTable, TableSet};
use kahrisma_isa::{IsaKind, abi, tables};

use crate::error::AsmError;
use crate::parse::{Directive, Operand, OpStmt, Stmt, WordExpr, parse};

/// Assembles one source file into a relocatable object.
///
/// `file` is used for diagnostics and recorded in the debug line map
/// (paper §V-C). The source may switch ISAs with `.isa` (paper §V-D) and
/// bundle parallel operations with `{ a | b | … }`.
///
/// # Errors
///
/// Returns an [`AsmError::Syntax`] pinpointing the offending source line for
/// any lexical, syntactic or encoding problem.
pub fn assemble(file: &str, source: &str) -> Result<Object, AsmError> {
    let lines = parse(file, source)?;
    let tables = tables();
    let mut asm = Assembler::new(file, &tables);
    asm.run(&lines)?;
    asm.finish()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
    Rodata,
    Bss,
}

impl Section {
    fn id(self) -> SectionId {
        match self {
            Section::Text => SectionId::Text,
            Section::Data => SectionId::Data,
            Section::Rodata => SectionId::Rodata,
            Section::Bss => SectionId::Bss,
        }
    }
}

struct Assembler<'a> {
    file: &'a str,
    tables: &'a TableSet,
    section: Section,
    isa: IsaKind,
    text: Vec<u8>,
    data: Vec<u8>,
    rodata: Vec<u8>,
    bss_size: u32,
    labels: HashMap<String, (Section, u32)>,
    globals: Vec<String>,
    relocs: Vec<PendingReloc>,
    lines_map: Vec<LineEntry>,
    isa_map: Vec<(u32, u8)>,
    funcs: Vec<FuncEntry>,
    open_func: Option<usize>,
    pass: u8,
}

/// Relocation with a symbol *name*; resolved to a symbol index in `finish`.
struct PendingReloc {
    section: Section,
    offset: u32,
    symbol: String,
    kind: RelocKind,
    addend: i32,
    line: u32,
}

impl<'a> Assembler<'a> {
    fn new(file: &'a str, tables: &'a TableSet) -> Self {
        Assembler {
            file,
            tables,
            section: Section::Text,
            isa: IsaKind::Risc,
            text: Vec::new(),
            data: Vec::new(),
            rodata: Vec::new(),
            bss_size: 0,
            labels: HashMap::new(),
            globals: Vec::new(),
            relocs: Vec::new(),
            lines_map: Vec::new(),
            isa_map: Vec::new(),
            funcs: Vec::new(),
            open_func: None,
            pass: 1,
        }
    }

    fn err(&self, line: u32, message: impl Into<String>) -> AsmError {
        AsmError::syntax(self.file, line, message)
    }

    fn table(&self) -> &OperationTable {
        self.tables.table(self.isa.id()).expect("family table exists")
    }

    fn offset(&self) -> u32 {
        match self.section {
            Section::Text => self.text.len() as u32,
            Section::Data => self.data.len() as u32,
            Section::Rodata => self.rodata.len() as u32,
            Section::Bss => self.bss_size,
        }
    }

    fn emit_bytes(&mut self, line: u32, bytes: &[u8]) -> Result<(), AsmError> {
        match self.section {
            Section::Text => self.text.extend_from_slice(bytes),
            Section::Data => self.data.extend_from_slice(bytes),
            Section::Rodata => self.rodata.extend_from_slice(bytes),
            Section::Bss => {
                if bytes.iter().any(|&b| b != 0) {
                    return Err(self.err(line, "initialized data is not allowed in .bss"));
                }
                self.bss_size += bytes.len() as u32;
            }
        }
        Ok(())
    }

    fn run(&mut self, lines: &[crate::parse::Line]) -> Result<(), AsmError> {
        // Pass 1: label addresses (sizes are deterministic, so a single
        // sizing pass suffices).
        self.pass = 1;
        for l in lines {
            for stmt in &l.stmts {
                self.stmt(l.line, stmt)?;
            }
        }
        if let Some(open) = self.open_func {
            let name = self.funcs[open].name.clone();
            return Err(self.err(0, format!("function `{name}` is missing .endfunc")));
        }
        // Reset everything but labels/globals for pass 2.
        let labels = std::mem::take(&mut self.labels);
        let globals = std::mem::take(&mut self.globals);
        *self = Assembler::new(self.file, self.tables);
        self.labels = labels;
        self.globals = globals;
        self.pass = 2;
        for l in lines {
            for stmt in &l.stmts {
                self.stmt(l.line, stmt)?;
            }
        }
        Ok(())
    }

    fn stmt(&mut self, line: u32, stmt: &Stmt) -> Result<(), AsmError> {
        match stmt {
            Stmt::Label(name) => {
                if self.pass == 1
                    && self
                        .labels
                        .insert(name.clone(), (self.section, self.offset()))
                        .is_some()
                    {
                        return Err(self.err(line, format!("label `{name}` redefined")));
                    }
                Ok(())
            }
            Stmt::Directive(d) => self.directive(line, d),
            Stmt::Bundle(ops) => self.bundle(line, ops),
        }
    }

    fn directive(&mut self, line: u32, d: &Directive) -> Result<(), AsmError> {
        match d {
            Directive::Isa(name) => {
                let isa = self
                    .tables
                    .tables()
                    .iter()
                    .find(|t| t.name() == name)
                    .map(|t| t.isa())
                    .ok_or_else(|| self.err(line, format!("unknown ISA `{name}`")))?;
                self.isa = IsaKind::from_id(isa).expect("family kind");
                if self.section == Section::Text {
                    self.record_isa();
                }
            }
            Directive::Text => {
                self.section = Section::Text;
            }
            Directive::Data => self.section = Section::Data,
            Directive::Rodata => self.section = Section::Rodata,
            Directive::Bss => self.section = Section::Bss,
            Directive::Global(name) => {
                if self.pass == 1 {
                    self.globals.push(name.clone());
                }
            }
            Directive::Word(exprs) => {
                for e in exprs {
                    match e {
                        WordExpr::Int(v) => {
                            let bytes = (*v as i32 as u32).to_le_bytes();
                            self.emit_bytes(line, &bytes)?;
                        }
                        WordExpr::Sym(name, off) => {
                            if self.section == Section::Bss {
                                return Err(self.err(line, "relocated data in .bss"));
                            }
                            self.relocs.push(PendingReloc {
                                section: self.section,
                                offset: self.offset(),
                                symbol: name.clone(),
                                kind: RelocKind::Abs32,
                                addend: *off as i32,
                                line,
                            });
                            self.emit_bytes(line, &[0; 4])?;
                        }
                    }
                }
            }
            Directive::Half(vals) => {
                for v in vals {
                    self.emit_bytes(line, &(*v as i16 as u16).to_le_bytes())?;
                }
            }
            Directive::Byte(vals) => {
                for v in vals {
                    self.emit_bytes(line, &[(*v as i8) as u8])?;
                }
            }
            Directive::Space(n) => {
                if self.section == Section::Bss {
                    self.bss_size += n;
                } else {
                    let zeros = vec![0u8; *n as usize];
                    self.emit_bytes(line, &zeros)?;
                }
            }
            Directive::Asciz(s) => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                self.emit_bytes(line, &bytes)?;
            }
            Directive::Align(n) => {
                while !self.offset().is_multiple_of(*n) {
                    self.emit_bytes(line, &[0])?;
                }
            }
            Directive::Func(name) => {
                if self.section != Section::Text {
                    return Err(self.err(line, ".func outside .text"));
                }
                if self.open_func.is_some() {
                    return Err(self.err(line, "nested .func"));
                }
                self.record_isa();
                self.funcs.push(FuncEntry {
                    name: name.clone(),
                    start: self.text.len() as u32,
                    end: self.text.len() as u32,
                    isa: self.isa.id().value(),
                });
                self.open_func = Some(self.funcs.len() - 1);
            }
            Directive::EndFunc => {
                let idx = self
                    .open_func
                    .take()
                    .ok_or_else(|| self.err(line, ".endfunc without .func"))?;
                self.funcs[idx].end = self.text.len() as u32;
            }
        }
        Ok(())
    }

    fn record_isa(&mut self) {
        let off = self.text.len() as u32;
        let id = self.isa.id().value();
        if self.isa_map.last().map(|&(_, i)| i) != Some(id) {
            // Replace an entry at the same offset (isa switched before any
            // code was emitted under the previous one).
            if self.isa_map.last().map(|&(o, _)| o) == Some(off) {
                self.isa_map.pop();
            }
            if self.isa_map.last().map(|&(_, i)| i) != Some(id) {
                self.isa_map.push((off, id));
            }
        }
    }

    fn bundle(&mut self, line: u32, ops: &[OpStmt]) -> Result<(), AsmError> {
        if self.section != Section::Text {
            return Err(self.err(line, "instructions are only allowed in .text"));
        }
        self.record_isa_if_first();
        let width = usize::from(self.isa.width());
        // Expand pseudo-operations.
        let mut expanded: Vec<Vec<OpStmt>> = Vec::new(); // sequential groups
        for op in ops {
            expanded.push(self.expand_pseudo(line, op)?);
        }
        let multi = expanded.iter().any(|g| g.len() > 1);
        if multi && ops.len() > 1 {
            return Err(self.err(
                line,
                "multi-operation pseudo-instructions are not allowed inside bundles",
            ));
        }
        if !multi && expanded.iter().map(Vec::len).sum::<usize>() > width {
            return Err(self.err(
                line,
                format!(
                    "bundle has {} operations but ISA `{}` issues {width}",
                    ops.len(),
                    self.isa.name()
                ),
            ));
        }
        if multi {
            // A single pseudo that expanded to several sequential
            // instructions, each in its own bundle.
            for group in &expanded {
                for op in group {
                    self.encode_bundle(line, std::slice::from_ref(op))?;
                }
            }
        } else {
            let flat: Vec<OpStmt> = expanded.into_iter().flatten().collect();
            self.encode_bundle(line, &flat)?;
        }
        Ok(())
    }

    fn record_isa_if_first(&mut self) {
        if self.isa_map.is_empty() {
            self.record_isa();
        }
    }

    /// Expands a pseudo-operation into one or more real operations.
    fn expand_pseudo(&self, line: u32, op: &OpStmt) -> Result<Vec<OpStmt>, AsmError> {
        let mk = |mnemonic: &str, operands: Vec<Operand>| OpStmt {
            mnemonic: mnemonic.to_string(),
            operands,
        };
        Ok(match op.mnemonic.as_str() {
            "li" => {
                let (rd, imm) = match op.operands.as_slice() {
                    [Operand::Reg(rd), Operand::Imm(v)] => (*rd, *v),
                    _ => return Err(self.err(line, "usage: li rd, imm")),
                };
                let v = i64::from(imm as i32);
                if v != imm {
                    return Err(self.err(line, format!("li immediate {imm} exceeds 32 bits")));
                }
                if (-8192..8192).contains(&v) {
                    vec![mk("addi", vec![Operand::Reg(rd), Operand::Reg(abi::ZERO), Operand::Imm(v)])]
                } else {
                    let u = v as u32;
                    let hi = i64::from(u >> 13);
                    let lo = i64::from(u & 0x1FFF);
                    vec![
                        mk("lui", vec![Operand::Reg(rd), Operand::Imm(hi)]),
                        mk("ori", vec![Operand::Reg(rd), Operand::Reg(rd), Operand::Imm(lo)]),
                    ]
                }
            }
            "la" => {
                let (rd, name, off) = match op.operands.as_slice() {
                    [Operand::Reg(rd), Operand::Sym(name, off)] => (*rd, name.clone(), *off),
                    _ => return Err(self.err(line, "usage: la rd, symbol")),
                };
                vec![
                    mk("lui", vec![Operand::Reg(rd), Operand::Hi(name.clone(), off)]),
                    mk("ori", vec![Operand::Reg(rd), Operand::Reg(rd), Operand::Lo(name, off)]),
                ]
            }
            "mv" => match op.operands.as_slice() {
                [Operand::Reg(rd), Operand::Reg(rs)] => {
                    vec![mk("addi", vec![Operand::Reg(*rd), Operand::Reg(*rs), Operand::Imm(0)])]
                }
                _ => return Err(self.err(line, "usage: mv rd, rs")),
            },
            "not" => match op.operands.as_slice() {
                [Operand::Reg(rd), Operand::Reg(rs)] => vec![mk(
                    "nor",
                    vec![Operand::Reg(*rd), Operand::Reg(*rs), Operand::Reg(abi::ZERO)],
                )],
                _ => return Err(self.err(line, "usage: not rd, rs")),
            },
            "neg" => match op.operands.as_slice() {
                [Operand::Reg(rd), Operand::Reg(rs)] => vec![mk(
                    "sub",
                    vec![Operand::Reg(*rd), Operand::Reg(abi::ZERO), Operand::Reg(*rs)],
                )],
                _ => return Err(self.err(line, "usage: neg rd, rs")),
            },
            "b" => match op.operands.as_slice() {
                [target @ (Operand::Sym(..) | Operand::Imm(_))] => vec![mk(
                    "beq",
                    vec![Operand::Reg(abi::ZERO), Operand::Reg(abi::ZERO), target.clone()],
                )],
                _ => return Err(self.err(line, "usage: b target")),
            },
            "ret" => vec![mk("jr", vec![Operand::Reg(abi::RA)])],
            "call" => match op.operands.as_slice() {
                [target @ (Operand::Sym(..) | Operand::Imm(_))] => {
                    vec![mk("jal", vec![target.clone()])]
                }
                _ => return Err(self.err(line, "usage: call target")),
            },
            _ => vec![op.clone()],
        })
    }

    /// Encodes one instruction (bundle), padding missing slots with `nop`.
    fn encode_bundle(&mut self, line: u32, ops: &[OpStmt]) -> Result<(), AsmError> {
        let width = usize::from(self.isa.width());
        debug_assert!(ops.len() <= width);
        let instr_off = self.text.len() as u32;
        if self.pass == 2 {
            self.lines_map.push(LineEntry {
                addr: instr_off,
                file: 0,
                line,
            });
        }
        let mut words = Vec::with_capacity(width);
        for (slot, op) in ops.iter().enumerate() {
            let word_off = instr_off + (slot as u32) * 4;
            words.push(self.encode_op(line, op, word_off)?);
        }
        words.resize(width, kahrisma_isa::ops::NOP_WORD);
        for w in words {
            let bytes = w.to_le_bytes();
            self.text.extend_from_slice(&bytes);
        }
        Ok(())
    }

    /// Encodes a single operation word at text offset `word_off`.
    fn encode_op(&mut self, line: u32, op: &OpStmt, word_off: u32) -> Result<u32, AsmError> {
        let table = self.table();
        let (_, desc) = table
            .op_by_name(&op.mnemonic)
            .ok_or_else(|| self.err(line, format!("unknown mnemonic `{}`", op.mnemonic)))?;
        let enc = desc.encoding();
        let behavior = desc.behavior();
        let desc = desc.clone();

        let usage = |expected: &str| -> AsmError {
            self.err(line, format!("usage: {} {expected}", op.mnemonic))
        };

        let mut rd = 0u8;
        let mut rs1 = 0u8;
        let mut rs2 = 0u8;
        let mut imm: i64 = 0;
        let mut imm_reloc: Option<(String, i64, RelocKind)> = None;
        let mut branch_target: Option<(String, i64)> = None;

        use kahrisma_isa::adl::Behavior as B;
        match (enc, behavior) {
            (Encoding::R, _) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)] => {
                    rd = *a;
                    rs1 = *b;
                    rs2 = *c;
                }
                _ => return Err(usage("rd, rs1, rs2")),
            },
            (Encoding::I, B::Load { .. }) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Mem { offset, base }] => {
                    rd = *a;
                    rs1 = *base;
                    imm = *offset;
                }
                _ => return Err(usage("rd, imm(rs1)")),
            },
            (Encoding::B, B::Store { .. }) => match op.operands.as_slice() {
                [Operand::Reg(value), Operand::Mem { offset, base }] => {
                    rs1 = *base;
                    rs2 = *value;
                    imm = *offset;
                }
                _ => return Err(usage("rs2, imm(rs1)")),
            },
            (Encoding::I | Encoding::Iu, _) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Reg(b), Operand::Imm(v)] => {
                    rd = *a;
                    rs1 = *b;
                    imm = *v;
                }
                [Operand::Reg(a), Operand::Reg(b), Operand::Lo(name, off)] => {
                    rd = *a;
                    rs1 = *b;
                    imm_reloc = Some((name.clone(), *off, RelocKind::Lo13));
                }
                _ => return Err(usage("rd, rs1, imm")),
            },
            (Encoding::B, B::Branch(_)) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Reg(b), Operand::Sym(name, off)] => {
                    rs1 = *a;
                    rs2 = *b;
                    branch_target = Some((name.clone(), *off));
                }
                [Operand::Reg(a), Operand::Reg(b), Operand::Imm(v)] => {
                    rs1 = *a;
                    rs2 = *b;
                    imm = *v;
                }
                _ => return Err(usage("rs1, rs2, target")),
            },
            (Encoding::U, _) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Imm(v)] => {
                    rd = *a;
                    imm = *v;
                }
                [Operand::Reg(a), Operand::Hi(name, off)] => {
                    rd = *a;
                    imm_reloc = Some((name.clone(), *off, RelocKind::Hi19));
                }
                _ => return Err(usage("rd, imm")),
            },
            (Encoding::J, B::Jump | B::JumpAndLink) => match op.operands.as_slice() {
                [Operand::Sym(name, off)] => {
                    imm_reloc = Some((name.clone(), *off, RelocKind::Jump24));
                }
                [Operand::Imm(v)] => imm = *v,
                _ => return Err(usage("target")),
            },
            (Encoding::J, B::SwitchTarget) => match op.operands.as_slice() {
                [Operand::Imm(v)] => imm = *v,
                [Operand::Sym(name, 0)] => {
                    let id = IsaKind::ALL
                        .iter()
                        .find(|k| k.name() == name)
                        .map(|k| k.id())
                        .ok_or_else(|| self.err(line, format!("unknown ISA `{name}`")))?;
                    imm = i64::from(id.value());
                }
                _ => return Err(usage("isa")),
            },
            (Encoding::J, _) => match op.operands.as_slice() {
                [Operand::Imm(v)] => imm = *v,
                _ => return Err(usage("imm")),
            },
            (Encoding::R1, _) => match op.operands.as_slice() {
                [Operand::Reg(a)] => rs1 = *a,
                _ => return Err(usage("rs1")),
            },
            (Encoding::Rr, _) => match op.operands.as_slice() {
                [Operand::Reg(a), Operand::Reg(b)] => {
                    rd = *a;
                    rs1 = *b;
                }
                _ => return Err(usage("rd, rs1")),
            },
            (Encoding::None, _) => {
                if !op.operands.is_empty() {
                    return Err(usage("(no operands)"));
                }
            }
            _ => {
                return Err(self.err(
                    line,
                    format!("unsupported encoding for `{}`", op.mnemonic),
                ));
            }
        }

        // Resolve branch targets against local labels where possible.
        if let Some((name, off)) = branch_target {
            match self.labels.get(&name) {
                Some((Section::Text, label_off)) => {
                    let delta = i64::from(*label_off) + off - i64::from(word_off);
                    if delta % 4 != 0 {
                        return Err(self.err(line, "branch target is not word-aligned"));
                    }
                    imm = delta / 4;
                }
                Some(_) => {
                    return Err(self.err(line, format!("branch target `{name}` is not in .text")));
                }
                None => {
                    imm_reloc = Some((name, off, RelocKind::Branch14));
                }
            }
        }

        if let Some((name, off, kind)) = imm_reloc {
            if self.pass == 2 {
                self.relocs.push(PendingReloc {
                    section: Section::Text,
                    offset: word_off,
                    symbol: name,
                    kind,
                    addend: off as i32,
                    line,
                });
            }
            imm = 0;
        } else if let Some(field) = enc.imm_field() {
            if !field.fits(imm) {
                return Err(self.err(
                    line,
                    format!("immediate {imm} does not fit in {} bits", field.width()),
                ));
            }
        }

        Ok(desc.encode(rd, rs1, rs2, imm as u32))
    }

    fn finish(mut self) -> Result<Object, AsmError> {
        let mut obj = Object::new();
        obj.text = self.text;
        obj.data = self.data;
        obj.rodata = self.rodata;
        obj.bss_size = self.bss_size;

        // Symbols: all labels, global where requested; undefined for
        // referenced-but-unknown names.
        let func_names: Vec<&str> = self.funcs.iter().map(|f| f.name.as_str()).collect();
        let mut names: Vec<&String> = self.labels.keys().collect();
        names.sort(); // deterministic output
        for name in names {
            let (section, value) = self.labels[name];
            let kind = if func_names.contains(&name.as_str()) {
                SymKind::Func
            } else if matches!(section, Section::Data | Section::Rodata | Section::Bss) {
                SymKind::Object
            } else {
                SymKind::NoType
            };
            let global = self.globals.contains(name);
            obj.symbols.push(Symbol {
                name: name.clone(),
                section: section.id(),
                value,
                size: 0,
                global,
                kind,
            });
        }
        for g in &self.globals {
            if !self.labels.contains_key(g) {
                return Err(AsmError::syntax(
                    self.file,
                    0,
                    format!(".global `{g}` has no definition"),
                ));
            }
        }
        for r in &self.relocs {
            if !self.labels.contains_key(&r.symbol)
                && obj.symbol_index(&r.symbol).is_none()
            {
                obj.symbols.push(Symbol::undef(&r.symbol));
            }
        }
        for r in self.relocs.drain(..) {
            let symbol = obj
                .symbol_index(&r.symbol)
                .ok_or_else(|| AsmError::syntax(self.file, r.line, "unresolved symbol"))?;
            obj.relocs.push(Reloc {
                section: r.section.id(),
                offset: r.offset,
                symbol,
                kind: r.kind,
                addend: r.addend,
            });
        }

        obj.debug.files = vec![self.file.to_string()];
        obj.debug.lines = self.lines_map;
        obj.debug.funcs = self.funcs;
        obj.debug.isa_map = self.isa_map;
        obj.debug.normalize();
        Ok(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_isa::isa_id;

    fn asm(src: &str) -> Object {
        assemble("t.s", src).unwrap_or_else(|e| panic!("assemble failed: {e}"))
    }

    fn text_words(obj: &Object) -> Vec<u32> {
        obj.text
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn encodes_basic_risc() {
        let obj = asm(".text\nadd r1, r2, r3\n");
        let words = text_words(&obj);
        assert_eq!(words.len(), 1);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let d = risc.decode(words[0]).unwrap();
        assert_eq!(risc.op(d.op_index).name(), "add");
        assert_eq!(d.fields.rd, 1);
        assert_eq!(d.fields.rs1, 2);
        assert_eq!(d.fields.rs2, 3);
    }

    #[test]
    fn vliw_bundles_are_padded() {
        let obj = asm(".isa vliw4\n.text\n{ add r1, r2, r3 | sub r4, r5, r6 }\n");
        let words = text_words(&obj);
        assert_eq!(words.len(), 4);
        assert_eq!(words[2], kahrisma_isa::ops::NOP_WORD);
        assert_eq!(words[3], kahrisma_isa::ops::NOP_WORD);
    }

    #[test]
    fn overfull_bundle_rejected() {
        let err = assemble("t.s", ".isa vliw2\n.text\n{ nop | nop | nop }\n").unwrap_err();
        assert!(err.to_string().contains("issues 2"), "{err}");
    }

    #[test]
    fn local_branch_resolves_backward_and_forward() {
        let obj = asm(".text\nloop: addi r1, r1, -1\nbne r1, zero, loop\nbeq r1, zero, done\nnop\ndone: nop\n");
        let words = text_words(&obj);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        // bne at word 1 → target word 0 → imm = -1
        let d = risc.decode(words[1]).unwrap();
        assert_eq!(d.fields.simm(), -1);
        // beq at word 2 → target word 4 → imm = +2
        let d = risc.decode(words[2]).unwrap();
        assert_eq!(d.fields.simm(), 2);
    }

    #[test]
    fn branch_in_vliw_slot_is_relative_to_slot_word() {
        let obj = asm(".isa vliw2\n.text\ntop: { nop | nop }\n{ nop | bne r1, zero, top }\n");
        let words = text_words(&obj);
        let t = tables();
        let table = t.table(isa_id::VLIW2).unwrap();
        // bne is at word index 3 (byte 12); target byte 0 → imm = -3.
        let d = table.decode(words[3]).unwrap();
        assert_eq!(d.fields.simm(), -3);
    }

    #[test]
    fn external_references_become_relocs() {
        let obj = asm(".text\njal external_fn\nlui t0, %hi(buf)\nori t0, t0, %lo(buf)\n");
        assert_eq!(obj.relocs.len(), 3);
        let kinds: Vec<RelocKind> = obj.relocs.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RelocKind::Jump24));
        assert!(kinds.contains(&RelocKind::Hi19));
        assert!(kinds.contains(&RelocKind::Lo13));
        assert!(obj.symbols.iter().any(|s| s.name == "external_fn" && s.section == SectionId::Undef));
    }

    #[test]
    fn local_jump_also_uses_reloc_for_absolute_address() {
        // j targets are absolute, so even local targets need link-time fix-up.
        let obj = asm(".text\nstart: j start\n");
        assert_eq!(obj.relocs.len(), 1);
        assert_eq!(obj.relocs[0].kind, RelocKind::Jump24);
        assert_eq!(obj.symbols[obj.relocs[0].symbol as usize].name, "start");
    }

    #[test]
    fn li_small_and_large() {
        let small = asm(".text\nli a0, -7\n");
        assert_eq!(text_words(&small).len(), 1);
        let large = asm(".text\nli a0, 0x12345\n");
        let words = text_words(&large);
        assert_eq!(words.len(), 2);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let lui = risc.decode(words[0]).unwrap();
        let ori = risc.decode(words[1]).unwrap();
        assert_eq!(risc.op(lui.op_index).name(), "lui");
        assert_eq!(risc.op(ori.op_index).name(), "ori");
        assert_eq!((lui.fields.imm << 13) | ori.fields.imm, 0x12345);
    }

    #[test]
    fn data_directives_fill_sections() {
        let obj = asm(
            ".data\nvals: .word 1, -1\n.half 0x1234\n.byte 7\n.align 4\n.asciz \"hi\"\n.bss\nbuf: .space 16\n.rodata\nro: .word 3\n",
        );
        assert_eq!(&obj.data[0..4], &1u32.to_le_bytes());
        assert_eq!(&obj.data[4..8], &(-1i32 as u32).to_le_bytes());
        assert_eq!(&obj.data[8..10], &0x1234u16.to_le_bytes());
        assert_eq!(obj.data[10], 7);
        assert_eq!(&obj.data[12..15], b"hi\0");
        assert_eq!(obj.bss_size, 16);
        assert_eq!(&obj.rodata[0..4], &3u32.to_le_bytes());
        let buf = obj.symbols.iter().find(|s| s.name == "buf").unwrap();
        assert_eq!(buf.section, SectionId::Bss);
        assert_eq!(buf.kind, SymKind::Object);
    }

    #[test]
    fn func_records_and_isa_map() {
        let obj = asm(
            ".isa vliw2\n.text\n.global f\n.func f\nf: { nop | nop }\n.endfunc\n.isa risc\n.global g\n.func g\ng: nop\n.endfunc\n",
        );
        assert_eq!(obj.debug.funcs.len(), 2);
        let f = &obj.debug.funcs[0];
        assert_eq!((f.name.as_str(), f.start, f.end, f.isa), ("f", 0, 8, 1));
        let g = &obj.debug.funcs[1];
        assert_eq!((g.name.as_str(), g.start, g.end, g.isa), ("g", 8, 12, 0));
        assert_eq!(obj.debug.isa_map, vec![(0, 1), (8, 0)]);
        let sym = obj.symbols.iter().find(|s| s.name == "f").unwrap();
        assert_eq!(sym.kind, SymKind::Func);
        assert!(sym.global);
    }

    #[test]
    fn line_map_tracks_bundles() {
        let obj = asm(".text\nnop\n\nnop\n");
        assert_eq!(obj.debug.lines.len(), 2);
        assert_eq!(obj.debug.lines[0].line, 2);
        assert_eq!(obj.debug.lines[1].line, 4);
        assert_eq!(obj.debug.files, vec!["t.s".to_string()]);
    }

    #[test]
    fn switchtarget_accepts_isa_names() {
        let obj = asm(".text\nswitchtarget vliw4\nswitchtarget 0\n");
        let words = text_words(&obj);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        assert_eq!(risc.decode(words[0]).unwrap().fields.imm, 2);
        assert_eq!(risc.decode(words[1]).unwrap().fields.imm, 0);
    }

    #[test]
    fn errors_for_misuse() {
        assert!(assemble("t.s", ".text\nadd r1, r2\n").is_err()); // missing operand
        assert!(assemble("t.s", ".text\naddi r1, r2, 100000\n").is_err()); // imm overflow
        assert!(assemble("t.s", ".data\nnop\n").is_err()); // instr outside .text
        assert!(assemble("t.s", ".text\nx: nop\nx: nop\n").is_err()); // redefined label
        assert!(assemble("t.s", ".global nothing\n").is_err()); // undefined global
        assert!(assemble("t.s", ".text\n.func f\nf: nop\n").is_err()); // missing endfunc
        assert!(assemble("t.s", ".isa vliw9\n").is_err()); // unknown isa
        assert!(assemble("t.s", ".text\n{ li a0, 0x12345 | nop }\n").is_err()); // pseudo in bundle
    }

    #[test]
    fn pseudo_expansion_in_vliw_makes_sequential_bundles() {
        let obj = asm(".isa vliw2\n.text\nli a0, 0x12345\n");
        // Two sequential instructions, each 2 words.
        assert_eq!(text_words(&obj).len(), 4);
    }

    #[test]
    fn roundtrips_through_elf() {
        let obj = asm(".text\n.global main\n.func main\nmain: li rv, 1\njr ra\n.endfunc\n");
        let back = Object::from_bytes(&obj.to_bytes()).unwrap();
        assert_eq!(back.text, obj.text);
        assert_eq!(back.debug.funcs, obj.debug.funcs);
    }

    #[test]
    fn store_and_load_operand_shapes() {
        let obj = asm(".text\nsw a0, 4(sp)\nlw a1, -4(sp)\n");
        let words = text_words(&obj);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let sw = risc.decode(words[0]).unwrap();
        assert_eq!(risc.op(sw.op_index).name(), "sw");
        assert_eq!(sw.fields.rs1, abi::SP); // base
        assert_eq!(sw.fields.rs2, abi::A0); // value
        assert_eq!(sw.fields.simm(), 4);
        let lw = risc.decode(words[1]).unwrap();
        assert_eq!(lw.fields.rd, abi::A0 + 1);
        assert_eq!(lw.fields.simm(), -4);
    }
}
