//! Mixed-ISA assembler and linker for the KAHRISMA architecture.
//!
//! Implements the "binary utilities" of the paper's ADL-based software
//! framework (§IV): an assembler that translates (possibly mixed-ISA)
//! assembly files into relocatable ELF objects, and a linker that combines
//! objects into an executable ELF binary for the simulator.
//!
//! Paper-relevant behaviours:
//!
//! * **mixed-ISA assembly** — "During assembling the ISA can be switched
//!   using a special assembly pseudo directive": the `.isa <name>` directive
//!   selects the encoding of subsequent instructions and is recorded in the
//!   executable's ISA map;
//! * **VLIW bundles** — `{ op | op | … }` groups up to *issue-width*
//!   operations into one instruction; missing slots are `nop`-padded;
//! * **debug metadata** — every instruction records its assembly source
//!   line into the custom `.kahrisma.lines` section, and `.func`/`.endfunc`
//!   populate the function table (§V-C);
//! * **C-library stubs** — [`libc_stubs_asm`] generates "an automatically
//!   generated assembly file containing a small function body for each
//!   library function that only executes the simulation operation and
//!   returns afterwards" (§V-E);
//! * **startup code** — the linker synthesizes `_start` (stack setup, ISA
//!   switch to `main`'s ISA, call, halt) so any compiled program is
//!   runnable.
//!
//! # Example
//!
//! ```
//! use kahrisma_asm::{assemble, link, LinkOptions};
//!
//! let obj = assemble(
//!     "prog.s",
//!     r#"
//!         .isa risc
//!         .text
//!         .global main
//!         .func main
//!     main:
//!         li   rv, 42
//!         jr   ra
//!         .endfunc
//!     "#,
//! )?;
//! let exe = link(&[obj], &LinkOptions::default())?;
//! assert_ne!(exe.entry, 0);
//! # Ok::<(), kahrisma_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod error;
mod libc;
mod linker;
mod parse;

pub use assembler::assemble;
pub use error::AsmError;
pub use libc::{ATOMIC_STUBS, libc_stubs_asm};
pub use linker::{LinkOptions, link};

use kahrisma_elf::Executable;

/// Assembles several `(file_name, source)` units and links them together
/// with the C-library stubs, producing a runnable executable.
///
/// This is the convenience entry point used by the compiler driver and the
/// examples; it is equivalent to calling [`assemble`] per unit, appending
/// [`libc_stubs_asm`], and invoking [`link`] with default options.
///
/// # Errors
///
/// Returns the first assembly or link error encountered.
///
/// # Example
///
/// ```
/// let exe = kahrisma_asm::build(&[(
///     "main.s",
///     ".isa risc\n.text\n.global main\n.func main\nmain: li rv, 7\n jr ra\n.endfunc\n",
/// )])?;
/// assert!(!exe.segments.is_empty());
/// # Ok::<(), kahrisma_asm::AsmError>(())
/// ```
pub fn build(units: &[(&str, &str)]) -> Result<Executable, AsmError> {
    let mut objects = Vec::with_capacity(units.len() + 1);
    for (name, src) in units {
        objects.push(assemble(name, src)?);
    }
    let stubs = libc_stubs_asm();
    objects.push(assemble("libc_stubs.s", &stubs)?);
    link(&objects, &LinkOptions::default())
}
