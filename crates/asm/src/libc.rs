//! Generated C-standard-library stub assembly.

use std::fmt::Write as _;

use kahrisma_isa::simop::SimOpCode;

/// Generates the stub assembly file for the C-standard-library emulation.
///
/// Paper §V-E: "Each library function is made visible to the linker by
/// providing an automatically generated assembly file containing a small
/// function body for each library function that only executes the simulation
/// operation and returns afterwards."
///
/// The stubs are encoded in the RISC ISA; mixed-ISA callers switch ISA
/// around the call exactly as for any cross-ISA call.
///
/// # Example
///
/// ```
/// let src = kahrisma_asm::libc_stubs_asm();
/// assert!(src.contains("malloc:"));
/// let obj = kahrisma_asm::assemble("libc_stubs.s", &src)?;
/// assert!(obj.symbols.iter().any(|s| s.name == "putchar" && s.global));
/// # Ok::<(), kahrisma_asm::AsmError>(())
/// ```
#[must_use]
pub fn libc_stubs_asm() -> String {
    let mut s = String::from("; auto-generated C standard library stubs (paper SV-E)\n.isa risc\n.text\n");
    for code in SimOpCode::ALL {
        let sym = code.symbol();
        let imm = code.code();
        writeln!(s, ".global {sym}").expect("write to string");
        writeln!(s, ".func {sym}").expect("write to string");
        writeln!(s, "{sym}: simop {imm}").expect("write to string");
        writeln!(s, "    jr ra").expect("write to string");
        writeln!(s, ".endfunc").expect("write to string");
    }
    // ISA-level atomics, exposed with the same stub discipline so compiled
    // code can call them like any library function (two words each, appended
    // after the simop stubs — the stub tests rely on that layout).
    for (sym, mnemonic) in [("atomic_swap", "amoswap"), ("atomic_add", "amoadd")] {
        writeln!(s, ".global {sym}").expect("write to string");
        writeln!(s, ".func {sym}").expect("write to string");
        writeln!(s, "{sym}: {mnemonic} rv, a0, a1").expect("write to string");
        writeln!(s, "    jr ra").expect("write to string");
        writeln!(s, ".endfunc").expect("write to string");
    }
    s
}

/// Symbols of the hand-written atomic stubs appended by [`libc_stubs_asm`].
pub const ATOMIC_STUBS: [&str; 2] = ["atomic_swap", "atomic_add"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    #[test]
    fn stubs_assemble_and_export_every_function() {
        let src = libc_stubs_asm();
        let obj = assemble("libc_stubs.s", &src).unwrap();
        for code in SimOpCode::ALL {
            let sym = obj
                .symbols
                .iter()
                .find(|s| s.name == code.symbol())
                .unwrap_or_else(|| panic!("missing {}", code.symbol()));
            assert!(sym.global);
        }
        for sym in ATOMIC_STUBS {
            let s = obj
                .symbols
                .iter()
                .find(|s| s.name == sym)
                .unwrap_or_else(|| panic!("missing {sym}"));
            assert!(s.global);
        }
        // Each stub is two RISC words (simop stubs plus the atomic stubs).
        let stubs = SimOpCode::ALL.len() + ATOMIC_STUBS.len();
        assert_eq!(obj.text.len(), stubs * 8);
        assert_eq!(obj.debug.funcs.len(), stubs);
    }

    #[test]
    fn stub_bodies_encode_the_right_simop_code() {
        let src = libc_stubs_asm();
        let obj = assemble("libc_stubs.s", &src).unwrap();
        let t = kahrisma_isa::tables();
        let risc = t.table(kahrisma_isa::isa_id::RISC).unwrap();
        for (i, code) in SimOpCode::ALL.iter().enumerate() {
            let off = i * 8;
            let w = u32::from_le_bytes(obj.text[off..off + 4].try_into().unwrap());
            let d = risc.decode(w).unwrap();
            assert_eq!(risc.op(d.op_index).name(), "simop");
            assert_eq!(d.fields.imm, code.code());
        }
        // The atomic stubs follow, each starting with its amo* operation.
        for (i, mnemonic) in ["amoswap", "amoadd"].iter().enumerate() {
            let off = (SimOpCode::ALL.len() + i) * 8;
            let w = u32::from_le_bytes(obj.text[off..off + 4].try_into().unwrap());
            let d = risc.decode(w).unwrap();
            assert_eq!(risc.op(d.op_index).name(), *mnemonic);
        }
    }
}
