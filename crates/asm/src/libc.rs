//! Generated C-standard-library stub assembly.

use std::fmt::Write as _;

use kahrisma_isa::simop::SimOpCode;

/// Generates the stub assembly file for the C-standard-library emulation.
///
/// Paper §V-E: "Each library function is made visible to the linker by
/// providing an automatically generated assembly file containing a small
/// function body for each library function that only executes the simulation
/// operation and returns afterwards."
///
/// The stubs are encoded in the RISC ISA; mixed-ISA callers switch ISA
/// around the call exactly as for any cross-ISA call.
///
/// # Example
///
/// ```
/// let src = kahrisma_asm::libc_stubs_asm();
/// assert!(src.contains("malloc:"));
/// let obj = kahrisma_asm::assemble("libc_stubs.s", &src)?;
/// assert!(obj.symbols.iter().any(|s| s.name == "putchar" && s.global));
/// # Ok::<(), kahrisma_asm::AsmError>(())
/// ```
#[must_use]
pub fn libc_stubs_asm() -> String {
    let mut s = String::from("; auto-generated C standard library stubs (paper SV-E)\n.isa risc\n.text\n");
    for code in SimOpCode::ALL {
        let sym = code.symbol();
        let imm = code.code();
        writeln!(s, ".global {sym}").expect("write to string");
        writeln!(s, ".func {sym}").expect("write to string");
        writeln!(s, "{sym}: simop {imm}").expect("write to string");
        writeln!(s, "    jr ra").expect("write to string");
        writeln!(s, ".endfunc").expect("write to string");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    #[test]
    fn stubs_assemble_and_export_every_function() {
        let src = libc_stubs_asm();
        let obj = assemble("libc_stubs.s", &src).unwrap();
        for code in SimOpCode::ALL {
            let sym = obj
                .symbols
                .iter()
                .find(|s| s.name == code.symbol())
                .unwrap_or_else(|| panic!("missing {}", code.symbol()));
            assert!(sym.global);
        }
        // Each stub is two RISC words.
        assert_eq!(obj.text.len(), SimOpCode::ALL.len() * 8);
        assert_eq!(obj.debug.funcs.len(), SimOpCode::ALL.len());
    }

    #[test]
    fn stub_bodies_encode_the_right_simop_code() {
        let src = libc_stubs_asm();
        let obj = assemble("libc_stubs.s", &src).unwrap();
        let t = kahrisma_isa::tables();
        let risc = t.table(kahrisma_isa::isa_id::RISC).unwrap();
        for (i, code) in SimOpCode::ALL.iter().enumerate() {
            let off = i * 8;
            let w = u32::from_le_bytes(obj.text[off..off + 4].try_into().unwrap());
            let d = risc.decode(w).unwrap();
            assert_eq!(risc.op(d.op_index).name(), "simop");
            assert_eq!(d.fields.imm, code.code());
        }
    }
}
