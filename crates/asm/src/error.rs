//! Assembler and linker errors.

use std::fmt;

/// Error produced by the assembler or linker, with source context where
/// available.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A syntax or semantic error at a specific source line.
    Syntax {
        /// Source file name.
        file: String,
        /// 1-based line number.
        line: u32,
        /// Problem description.
        message: String,
    },
    /// A symbol was defined more than once across the linked objects.
    DuplicateSymbol(String),
    /// An undefined symbol was referenced.
    UndefinedSymbol(String),
    /// A relocated value does not fit its field.
    RelocOverflow {
        /// The symbol whose address overflowed the field.
        symbol: String,
        /// Relocation kind name.
        kind: &'static str,
    },
    /// No entry symbol (`_start` or `main`) was found while linking.
    NoEntry,
    /// Propagated ELF codec error.
    Elf(kahrisma_elf::ElfError),
}

impl AsmError {
    pub(crate) fn syntax(file: &str, line: u32, message: impl Into<String>) -> Self {
        AsmError::Syntax { file: file.into(), line, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { file, line, message } => write!(f, "{file}:{line}: {message}"),
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmError::RelocOverflow { symbol, kind } => {
                write!(f, "relocation {kind} against `{symbol}` does not fit its field")
            }
            AsmError::NoEntry => write!(f, "no entry symbol (`_start` or `main`) found"),
            AsmError::Elf(e) => write!(f, "elf error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Elf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kahrisma_elf::ElfError> for AsmError {
    fn from(e: kahrisma_elf::ElfError) -> Self {
        AsmError::Elf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = AsmError::syntax("t.s", 7, "bad operand");
        assert_eq!(e.to_string(), "t.s:7: bad operand");
    }

    #[test]
    fn elf_error_wraps() {
        let e: AsmError = kahrisma_elf::ElfError::BadMagic.into();
        assert!(e.to_string().contains("elf error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
