//! The linker: combines relocatable objects into a runnable executable.

use std::collections::HashMap;

use kahrisma_elf::{Executable, FuncEntry, Object, RelocKind, SectionId, Segment};
use kahrisma_isa::{IsaKind, abi, isa_id, ops, tables};

use crate::error::AsmError;

/// Linker configuration.
#[derive(Debug, Clone)]
pub struct LinkOptions {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Alignment between the text and data segments.
    pub segment_align: u32,
    /// Entry symbol; defaults to `_start`, falling back to a synthesized
    /// startup stub that calls `main`.
    pub entry: Option<String>,
    /// Initial stack-pointer value installed by the synthesized startup code.
    pub stack_top: u32,
}

impl Default for LinkOptions {
    fn default() -> Self {
        LinkOptions {
            text_base: abi::TEXT_BASE,
            segment_align: 4096,
            entry: None,
            stack_top: abi::STACK_TOP,
        }
    }
}

fn align_up(v: u32, a: u32) -> u32 {
    v.div_ceil(a) * a
}

/// Links `objects` into an executable.
///
/// Layout: all `.text` sections are concatenated at
/// [`LinkOptions::text_base`]; `.rodata`, `.data` and `.bss` follow in one
/// writable segment at the next [`LinkOptions::segment_align`] boundary.
/// If no `_start` symbol is defined, a startup stub is synthesized that
/// initializes the stack pointer, switches to `main`'s ISA when necessary
/// (paper §V-D), calls `main`, and halts with `main`'s return value.
///
/// # Errors
///
/// Returns an error for duplicate or undefined global symbols, relocation
/// overflow, or a missing entry point.
pub fn link(objects: &[Object], options: &LinkOptions) -> Result<Executable, AsmError> {
    let user_start = objects
        .iter()
        .flat_map(|o| &o.symbols)
        .any(|s| s.global && s.section != SectionId::Undef && s.name == "_start");

    // Find main's ISA for the synthesized startup stub.
    let main_func: Option<FuncEntry> = objects
        .iter()
        .flat_map(|o| &o.debug.funcs)
        .find(|f| f.name == "main")
        .cloned();

    let mut objects_vec: Vec<&Object> = Vec::with_capacity(objects.len() + 1);
    let stub;
    if !user_start && options.entry.is_none() {
        let main = main_func.as_ref().ok_or(AsmError::NoEntry)?;
        let main_isa = IsaKind::from_id(main.isa.into())
            .ok_or_else(|| AsmError::UndefinedSymbol("main (unknown isa)".into()))?;
        stub = start_stub(main_isa, options.stack_top);
        objects_vec.push(&stub);
    }
    objects_vec.extend(objects.iter());
    let objects = objects_vec;

    // Layout.
    struct Bases {
        text: u32,
        data: u32,
        rodata: u32,
        bss: u32,
    }
    let mut text_cursor = options.text_base;
    let mut bases = Vec::with_capacity(objects.len());
    for o in &objects {
        bases.push(Bases { text: text_cursor, data: 0, rodata: 0, bss: 0 });
        text_cursor += align_up(o.text.len() as u32, 4);
    }
    let data_base = align_up(text_cursor, options.segment_align);
    let mut cursor = data_base;
    for (o, b) in objects.iter().zip(&mut bases) {
        b.rodata = cursor;
        cursor += align_up(o.rodata.len() as u32, 4);
    }
    for (o, b) in objects.iter().zip(&mut bases) {
        b.data = cursor;
        cursor += align_up(o.data.len() as u32, 4);
    }
    let bss_start = cursor;
    for (o, b) in objects.iter().zip(&mut bases) {
        b.bss = cursor;
        cursor += align_up(o.bss_size, 4);
    }
    let data_end = cursor;

    // Global symbol resolution.
    let mut globals: HashMap<&str, u32> = HashMap::new();
    for (o, b) in objects.iter().zip(&bases) {
        for s in &o.symbols {
            if !s.global || s.section == SectionId::Undef {
                continue;
            }
            let addr = symbol_addr(s.section, s.value, b.text, b.data, b.rodata, b.bss);
            if globals.insert(&s.name, addr).is_some() {
                return Err(AsmError::DuplicateSymbol(s.name.clone()));
            }
        }
    }

    // Build segment contents.
    let mut text = vec![0u8; (text_cursor - options.text_base) as usize];
    let mut data = vec![0u8; (bss_start - data_base) as usize];
    for (o, b) in objects.iter().zip(&bases) {
        let t = (b.text - options.text_base) as usize;
        text[t..t + o.text.len()].copy_from_slice(&o.text);
        let r = (b.rodata - data_base) as usize;
        data[r..r + o.rodata.len()].copy_from_slice(&o.rodata);
        let d = (b.data - data_base) as usize;
        data[d..d + o.data.len()].copy_from_slice(&o.data);
    }

    // Apply relocations.
    for (o, b) in objects.iter().zip(&bases) {
        for r in &o.relocs {
            let sym = o.symbols.get(r.symbol as usize).ok_or(AsmError::Elf(
                kahrisma_elf::ElfError::BadIndex { what: "symbol", index: r.symbol },
            ))?;
            let s_addr = if sym.section == SectionId::Undef {
                *globals
                    .get(sym.name.as_str())
                    .ok_or_else(|| AsmError::UndefinedSymbol(sym.name.clone()))?
            } else {
                symbol_addr(sym.section, sym.value, b.text, b.data, b.rodata, b.bss)
            };
            let target = s_addr.wrapping_add(r.addend as u32);
            let (place_abs, buf, buf_base) = match r.section {
                SectionId::Text => (b.text + r.offset, &mut text, options.text_base),
                SectionId::Data => (b.data + r.offset, &mut data, data_base),
                SectionId::Rodata => (b.rodata + r.offset, &mut data, data_base),
                _ => {
                    return Err(AsmError::Elf(kahrisma_elf::ElfError::Malformed(
                        "relocation against non-progbits section",
                    )));
                }
            };
            let off = (place_abs - buf_base) as usize;
            let word = u32::from_le_bytes(
                buf.get(off..off + 4)
                    .ok_or(AsmError::Elf(kahrisma_elf::ElfError::Malformed(
                        "relocation offset out of range",
                    )))?
                    .try_into()
                    .expect("4-byte slice"),
            );
            let patched = apply_reloc(r.kind, word, target, place_abs, &sym.name)?;
            buf[off..off + 4].copy_from_slice(&patched.to_le_bytes());
        }
    }

    // Entry point.
    let entry_name = options.entry.as_deref().unwrap_or("_start");
    let entry = *globals.get(entry_name).ok_or(AsmError::NoEntry)?;

    // Merge debug info.
    let mut debug = kahrisma_elf::DebugInfo::new();
    for (o, b) in objects.iter().zip(&bases) {
        let mut d = o.debug.clone();
        d.rebase(b.text);
        debug.merge(&d);
    }
    let entry_isa = debug.isa_for_addr(entry).unwrap_or(isa_id::RISC.value());

    let mut exe = Executable::new();
    exe.entry = entry;
    exe.entry_isa = entry_isa;
    exe.segments.push(Segment::new(options.text_base, text, true));
    exe.segments.push(Segment {
        addr: data_base,
        data,
        mem_size: data_end - data_base,
        executable: false,
    });
    exe.debug = debug;
    Ok(exe)
}

fn symbol_addr(
    section: SectionId,
    value: u32,
    text: u32,
    data: u32,
    rodata: u32,
    bss: u32,
) -> u32 {
    match section {
        SectionId::Text => text + value,
        SectionId::Data => data + value,
        SectionId::Rodata => rodata + value,
        SectionId::Bss => bss + value,
        SectionId::Abs => value,
        SectionId::Undef => unreachable!("resolved before"),
    }
}

fn apply_reloc(
    kind: RelocKind,
    word: u32,
    target: u32,
    place: u32,
    symbol: &str,
) -> Result<u32, AsmError> {
    let overflow = |kind: &'static str| AsmError::RelocOverflow { symbol: symbol.into(), kind };
    Ok(match kind {
        RelocKind::Abs32 => target,
        RelocKind::Hi19 => (word & !0x7FFFF) | (target >> 13),
        RelocKind::Lo13 => (word & !0x3FFF) | (target & 0x1FFF),
        RelocKind::Jump24 => {
            if !target.is_multiple_of(4) {
                return Err(overflow("Jump24 (unaligned)"));
            }
            let imm = target / 4;
            if imm >= (1 << 24) {
                return Err(overflow("Jump24"));
            }
            (word & !0xFF_FFFF) | imm
        }
        RelocKind::Branch14 => {
            let delta = i64::from(target) - i64::from(place);
            if delta % 4 != 0 {
                return Err(overflow("Branch14 (unaligned)"));
            }
            let imm = delta / 4;
            if !(-8192..8192).contains(&imm) {
                return Err(overflow("Branch14"));
            }
            (word & !0x3FFF) | ((imm as u32) & 0x3FFF)
        }
        _ => return Err(overflow("unknown")),
    })
}

/// Synthesizes the startup object: `_start` sets up the stack, switches to
/// `main`'s ISA when it differs from RISC, calls `main`, and halts with the
/// return value. The trailing `switchtarget`-back/halt sequence is encoded
/// in `main`'s ISA because control returns there in that ISA.
fn start_stub(main_isa: IsaKind, stack_top: u32) -> Object {
    let t = tables();
    let risc = t.table(isa_id::RISC).unwrap();
    let op = |name: &str| risc.op_by_name(name).unwrap().1;

    let mut words: Vec<u32> = Vec::new();
    let mut isa_map = vec![(0u32, isa_id::RISC.value())];
    words.push(op("lui").encode(abi::SP, 0, 0, stack_top >> 13));
    words.push(op("ori").encode(abi::SP, abi::SP, 0, stack_top & 0x1FFF));
    if main_isa != IsaKind::Risc {
        words.push(op("switchtarget").encode(0, 0, 0, u32::from(main_isa.id().value())));
    }
    // From here on the processor runs in main's ISA: both the call and the
    // final halt must be full (NOP-padded) bundles of that ISA.
    let jal_off = words.len() as u32 * 4;
    if main_isa != IsaKind::Risc {
        isa_map.push((jal_off, main_isa.id().value()));
    }
    let main_table = t.table(main_isa.id()).unwrap();
    words.push(main_table.op_by_name("jal").unwrap().1.encode(0, 0, 0, 0)); // relocated to main
    words.extend(std::iter::repeat_n(ops::NOP_WORD, usize::from(main_isa.width()) - 1));
    // Halt bundle (control returns here in main's ISA).
    words.push(main_table.op_by_name("halt").unwrap().1.encode(0, 0, 0, 0));
    words.extend(std::iter::repeat_n(ops::NOP_WORD, usize::from(main_isa.width()) - 1));

    let mut obj = Object::new();
    obj.text = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    obj.symbols.push(kahrisma_elf::Symbol::global(
        "_start",
        SectionId::Text,
        0,
        kahrisma_elf::SymKind::Func,
    ));
    obj.symbols.push(kahrisma_elf::Symbol::undef("main"));
    obj.relocs.push(kahrisma_elf::Reloc {
        section: SectionId::Text,
        offset: jal_off,
        symbol: 1,
        kind: RelocKind::Jump24,
        addend: 0,
    });
    obj.debug.files = vec!["<start-stub>".into()];
    obj.debug.funcs = vec![FuncEntry {
        name: "_start".into(),
        start: 0,
        end: obj.text.len() as u32,
        isa: isa_id::RISC.value(),
    }];
    obj.debug.isa_map = isa_map;
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    fn word_at(exe: &Executable, addr: u32) -> u32 {
        let seg = exe
            .segments
            .iter()
            .find(|s| s.addr <= addr && addr < s.addr + s.data.len() as u32)
            .unwrap_or_else(|| panic!("no segment covers {addr:#x}"));
        let off = (addr - seg.addr) as usize;
        u32::from_le_bytes(seg.data[off..off + 4].try_into().unwrap())
    }

    #[test]
    fn links_minimal_main() {
        let obj = assemble(
            "m.s",
            ".text\n.global main\n.func main\nmain: li rv, 9\njr ra\n.endfunc\n",
        )
        .unwrap();
        let exe = link(&[obj], &LinkOptions::default()).unwrap();
        assert_eq!(exe.entry, abi::TEXT_BASE);
        assert_eq!(exe.entry_isa, isa_id::RISC.value());
        // _start stub: lui sp / ori sp / jal main / halt.
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let jal = word_at(&exe, abi::TEXT_BASE + 8);
        let d = risc.decode(jal).unwrap();
        assert_eq!(risc.op(d.op_index).name(), "jal");
        let main_addr = d.fields.imm * 4;
        assert_eq!(exe.debug.func_for_addr(main_addr).unwrap().name, "main");
    }

    #[test]
    fn start_stub_switches_isa_for_vliw_main() {
        let obj = assemble(
            "m.s",
            ".isa vliw4\n.text\n.global main\n.func main\nmain: { li rv, 1 | nop | nop | nop }\n{ jr ra | nop | nop | nop }\n.endfunc\n",
        )
        .unwrap();
        let exe = link(&[obj], &LinkOptions::default()).unwrap();
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let sw = word_at(&exe, abi::TEXT_BASE + 8);
        let d = risc.decode(sw).unwrap();
        assert_eq!(risc.op(d.op_index).name(), "switchtarget");
        assert_eq!(d.fields.imm, u32::from(isa_id::VLIW4.value()));
        // The halt after jal is encoded in vliw4 (bundle of 4 words) and the
        // ISA map says so.
        let halt_addr = abi::TEXT_BASE + 16;
        assert_eq!(exe.debug.isa_for_addr(halt_addr), Some(isa_id::VLIW4.value()));
    }

    #[test]
    fn cross_object_calls_and_data() {
        let a = assemble(
            "a.s",
            ".text\n.global main\n.func main\nmain: la a0, shared\nlw rv, 0(a0)\njal bump\njr ra\n.endfunc\n",
        )
        .unwrap();
        let b = assemble(
            "b.s",
            ".text\n.global bump\n.func bump\nbump: addi rv, rv, 1\njr ra\n.endfunc\n.data\n.global shared\nshared: .word 41\n",
        )
        .unwrap();
        let exe = link(&[a, b], &LinkOptions::default()).unwrap();
        // The data word must live in the writable segment with value 41.
        let data_seg = exe.segments.iter().find(|s| !s.executable).unwrap();
        assert_eq!(&data_seg.data[0..4], &41u32.to_le_bytes());
        // la expanded to lui+ori with Hi19/Lo13 pointing at the data segment.
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let main = exe.debug.funcs.iter().find(|f| f.name == "main").unwrap();
        let lui = risc.decode(word_at(&exe, main.start)).unwrap();
        let ori = risc.decode(word_at(&exe, main.start + 4)).unwrap();
        let addr = (lui.fields.imm << 13) | ori.fields.imm;
        assert_eq!(addr, data_seg.addr);
    }

    #[test]
    fn duplicate_global_rejected() {
        let a = assemble(
            "a.s",
            ".text\n.global main\n.func main\nmain: nop\n.endfunc\n.global f\n.func f\nf: nop\n.endfunc\n",
        )
        .unwrap();
        let b = assemble("b.s", ".text\n.global f\n.func f\nf: nop\n.endfunc\n").unwrap();
        assert!(matches!(
            link(&[a, b], &LinkOptions::default()),
            Err(AsmError::DuplicateSymbol(s)) if s == "f"
        ));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let a = assemble("a.s", ".text\n.global main\n.func main\nmain: jal nowhere\n.endfunc\n")
            .unwrap();
        assert!(matches!(
            link(&[a], &LinkOptions::default()),
            Err(AsmError::UndefinedSymbol(s)) if s == "nowhere"
        ));
    }

    #[test]
    fn no_main_is_an_error() {
        let a = assemble("a.s", ".text\n.global f\n.func f\nf: nop\n.endfunc\n").unwrap();
        assert!(matches!(link(&[a], &LinkOptions::default()), Err(AsmError::NoEntry)));
    }

    #[test]
    fn user_start_wins_over_stub() {
        let a = assemble(
            "a.s",
            ".text\n.global _start\n.func _start\n_start: halt\n.endfunc\n",
        )
        .unwrap();
        let exe = link(&[a], &LinkOptions::default()).unwrap();
        assert_eq!(exe.entry, abi::TEXT_BASE);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let d = risc.decode(word_at(&exe, exe.entry)).unwrap();
        assert_eq!(risc.op(d.op_index).name(), "halt");
    }

    #[test]
    fn executable_roundtrips_through_elf() {
        let obj = assemble(
            "m.s",
            ".text\n.global main\n.func main\nmain: li rv, 3\njr ra\n.endfunc\n.data\nd: .word 5\n",
        )
        .unwrap();
        let exe = link(&[obj], &LinkOptions::default()).unwrap();
        let back = Executable::from_bytes(&exe.to_bytes()).unwrap();
        assert_eq!(back, exe);
    }

    #[test]
    fn branch14_reloc_cross_object() {
        // A branch to an external label (unusual but supported).
        let a = assemble("a.s", ".text\n.global main\n.func main\nmain: beq zero, zero, other\njr ra\n.endfunc\n").unwrap();
        let b = assemble("b.s", ".text\n.global other\nother: jr ra\n").unwrap();
        let exe = link(&[a, b], &LinkOptions::default()).unwrap();
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let main = exe.debug.funcs.iter().find(|f| f.name == "main").unwrap();
        let beq = risc.decode(word_at(&exe, main.start)).unwrap();
        let target = main.start.wrapping_add((beq.fields.simm() * 4) as u32);
        // `other` is the first word of object b's text.
        assert_eq!(exe.debug.func_for_addr(target), None); // not a .func
        let jr = risc.decode(word_at(&exe, target)).unwrap();
        assert_eq!(risc.op(jr.op_index).name(), "jr");
    }
}
