//! Line-oriented assembly parsing.
//!
//! The syntax is deliberately close to classic Unix assemblers:
//!
//! ```text
//! ; comment            (also `#` and `//`)
//!     .isa vliw4       ; select the encoding ISA (mixed-ISA support, §V-D)
//!     .text
//!     .global dct
//!     .func dct        ; begin a function record (debug metadata, §V-C)
//! dct:
//!     { addi sp, sp, -32 | lw t0, 0(a0) | nop | nop }
//!     beq t0, zero, done
//! done:
//!     jr ra
//!     .endfunc
//! ```

use crate::error::AsmError;
use kahrisma_isa::abi;

/// One operand of an operation statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Operand {
    /// Register.
    Reg(u8),
    /// Integer immediate.
    Imm(i64),
    /// Symbol reference with optional constant offset (branch/jump targets,
    /// `.word` data, `la`).
    Sym(String, i64),
    /// `imm(base)` memory operand.
    Mem { offset: i64, base: u8 },
    /// `%hi(sym+k)`.
    Hi(String, i64),
    /// `%lo(sym+k)`.
    Lo(String, i64),
}

/// One operation (mnemonic + operands).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OpStmt {
    pub mnemonic: String,
    pub operands: Vec<Operand>,
}

/// Data expression for `.word`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WordExpr {
    Int(i64),
    Sym(String, i64),
}

/// An assembler directive.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Directive {
    Isa(String),
    Text,
    Data,
    Rodata,
    Bss,
    Global(String),
    Word(Vec<WordExpr>),
    Half(Vec<i64>),
    Byte(Vec<i64>),
    Space(u32),
    Asciz(String),
    Align(u32),
    Func(String),
    EndFunc,
}

/// One parsed source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stmt {
    Label(String),
    Directive(Directive),
    /// An instruction: one or more slot operations (`{ a | b }` syntax, or a
    /// bare operation meaning a single occupied slot).
    Bundle(Vec<OpStmt>),
}

/// A statement together with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Line {
    pub line: u32,
    pub stmts: Vec<Stmt>,
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b';' | b'#' => return &line[..i],
                b'/' if bytes.get(i + 1) == Some(&b'/') => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

/// Splits a line into raw tokens: identifiers/numbers, punctuation, strings.
fn tokenize(file: &str, lineno: u32, line: &str) -> Result<Vec<String>, AsmError> {
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' | '(' | ')' | '{' | '}' | '|' | ':' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, '0')) => s.push('\0'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, '"')) => s.push('"'),
                            other => {
                                return Err(AsmError::syntax(
                                    file,
                                    lineno,
                                    format!("invalid string escape {other:?}"),
                                ));
                            }
                        }
                    } else if c == '"' {
                        closed = true;
                        break;
                    } else {
                        s.push(c);
                    }
                }
                if !closed {
                    return Err(AsmError::syntax(file, lineno, "unterminated string literal"));
                }
                tokens.push(s);
            }
            '\'' => {
                chars.next();
                let ch = match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, 'n')) => '\n',
                        Some((_, 't')) => '\t',
                        Some((_, '0')) => '\0',
                        Some((_, '\\')) => '\\',
                        Some((_, '\'')) => '\'',
                        _ => return Err(AsmError::syntax(file, lineno, "invalid char escape")),
                    },
                    Some((_, c)) => c,
                    None => return Err(AsmError::syntax(file, lineno, "unterminated char literal")),
                };
                match chars.next() {
                    Some((_, '\'')) => {}
                    _ => return Err(AsmError::syntax(file, lineno, "unterminated char literal")),
                }
                tokens.push(format!("'{}", u32::from(ch)));
            }
            _ => {
                // Identifier, number, directive, %hi/%lo, signs.
                let start = i;
                let mut end = i;
                while let Some(&(j, c)) = chars.peek() {
                    if c.is_alphanumeric() || "._%$+-".contains(c) {
                        end = j + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                if end == start {
                    return Err(AsmError::syntax(
                        file,
                        lineno,
                        format!("unexpected character `{c}`"),
                    ));
                }
                tokens.push(line[start..end].to_string());
            }
        }
    }
    Ok(tokens)
}

fn parse_int(tok: &str) -> Option<i64> {
    if let Some(rest) = tok.strip_prefix('\'') {
        return rest.parse().ok();
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok.strip_prefix('+').unwrap_or(tok)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        // Reject identifiers early so symbols are not misparsed.
        if !body.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        body.parse().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Parses `sym` / `sym+4` / `sym-8` (identifier with optional offset).
fn parse_sym_offset(tok: &str) -> Option<(String, i64)> {
    let split = tok[1..].find(['+', '-']).map(|p| p + 1);
    let (name, off) = match split {
        Some(p) => {
            let off = parse_int(&tok[p..])?;
            (&tok[..p], off)
        }
        None => (tok, 0),
    };
    let mut chars = name.chars();
    let first = chars.next()?;
    if !(first.is_ascii_alphabetic() || first == '_' || first == '.') {
        return None;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$') {
        return None;
    }
    Some((name.to_string(), off))
}

struct Cursor<'a> {
    file: &'a str,
    line: u32,
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &str) -> Result<(), AsmError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected `{tok}`, found {other:?}"))),
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError::syntax(self.file, self.line, message)
    }
}

fn parse_operand(c: &mut Cursor<'_>) -> Result<Operand, AsmError> {
    let tok = c.next().ok_or_else(|| c.err("missing operand"))?;
    // %hi(sym) / %lo(sym)
    if tok == "%hi" || tok == "%lo" {
        c.expect("(")?;
        let sym_tok = c.next().ok_or_else(|| c.err("missing symbol in %hi/%lo"))?;
        let (name, off) =
            parse_sym_offset(sym_tok).ok_or_else(|| c.err("invalid symbol in %hi/%lo"))?;
        c.expect(")")?;
        return Ok(if tok == "%hi" { Operand::Hi(name, off) } else { Operand::Lo(name, off) });
    }
    if let Some(r) = abi::parse_reg(tok) {
        return Ok(Operand::Reg(r));
    }
    if let Some(v) = parse_int(tok) {
        // `imm(base)` memory operand.
        if c.eat("(") {
            let reg_tok = c.next().ok_or_else(|| c.err("missing base register"))?;
            let base =
                abi::parse_reg(reg_tok).ok_or_else(|| c.err("invalid base register"))?;
            c.expect(")")?;
            return Ok(Operand::Mem { offset: v, base });
        }
        return Ok(Operand::Imm(v));
    }
    if let Some((name, off)) = parse_sym_offset(tok) {
        return Ok(Operand::Sym(name, off));
    }
    Err(c.err(format!("invalid operand `{tok}`")))
}

fn parse_op(c: &mut Cursor<'_>) -> Result<OpStmt, AsmError> {
    let mnemonic =
        c.next().ok_or_else(|| c.err("missing mnemonic"))?.to_ascii_lowercase();
    let mut operands = Vec::new();
    if c.peek().is_some() && c.peek() != Some("|") && c.peek() != Some("}") {
        operands.push(parse_operand(c)?);
        while c.eat(",") {
            operands.push(parse_operand(c)?);
        }
    }
    Ok(OpStmt { mnemonic, operands })
}

fn parse_int_list(c: &mut Cursor<'_>) -> Result<Vec<i64>, AsmError> {
    let mut out = Vec::new();
    loop {
        let tok = c.next().ok_or_else(|| c.err("missing value"))?;
        out.push(parse_int(tok).ok_or_else(|| c.err(format!("invalid integer `{tok}`")))?);
        if !c.eat(",") {
            break;
        }
    }
    Ok(out)
}

fn parse_directive(c: &mut Cursor<'_>, name: &str) -> Result<Directive, AsmError> {
    Ok(match name {
        ".isa" => {
            let isa = c.next().ok_or_else(|| c.err("missing ISA name"))?;
            Directive::Isa(isa.to_string())
        }
        ".text" => Directive::Text,
        ".data" => Directive::Data,
        ".rodata" => Directive::Rodata,
        ".bss" => Directive::Bss,
        ".global" | ".globl" => {
            let s = c.next().ok_or_else(|| c.err("missing symbol"))?;
            Directive::Global(s.to_string())
        }
        ".word" => {
            let mut out = Vec::new();
            loop {
                let tok = c.next().ok_or_else(|| c.err("missing value"))?;
                if let Some(v) = parse_int(tok) {
                    out.push(WordExpr::Int(v));
                } else if let Some((name, off)) = parse_sym_offset(tok) {
                    out.push(WordExpr::Sym(name, off));
                } else {
                    return Err(c.err(format!("invalid word expression `{tok}`")));
                }
                if !c.eat(",") {
                    break;
                }
            }
            Directive::Word(out)
        }
        ".half" => Directive::Half(parse_int_list(c)?),
        ".byte" => Directive::Byte(parse_int_list(c)?),
        ".space" => {
            let tok = c.next().ok_or_else(|| c.err("missing size"))?;
            let v = parse_int(tok).filter(|&v| v >= 0).ok_or_else(|| c.err("invalid size"))?;
            Directive::Space(v as u32)
        }
        ".asciz" | ".string" => {
            let tok = c.next().ok_or_else(|| c.err("missing string"))?;
            let s = tok
                .strip_prefix('"')
                .ok_or_else(|| c.err("expected string literal"))?;
            Directive::Asciz(s.to_string())
        }
        ".align" => {
            let tok = c.next().ok_or_else(|| c.err("missing alignment"))?;
            let v = parse_int(tok)
                .filter(|&v| v > 0 && (v as u64).is_power_of_two())
                .ok_or_else(|| c.err("alignment must be a positive power of two"))?;
            Directive::Align(v as u32)
        }
        ".func" => {
            let s = c.next().ok_or_else(|| c.err("missing function name"))?;
            Directive::Func(s.to_string())
        }
        ".endfunc" => Directive::EndFunc,
        other => return Err(c.err(format!("unknown directive `{other}`"))),
    })
}

/// Parses one source file into statements.
pub(crate) fn parse(file: &str, source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let stripped = strip_comment(raw);
        let tokens = tokenize(file, lineno, stripped)?;
        if tokens.is_empty() {
            continue;
        }
        let mut c = Cursor { file, line: lineno, tokens: &tokens, pos: 0 };
        let mut stmts = Vec::new();
        // Leading labels: `name :`.
        while c.tokens.len() >= c.pos + 2 && c.tokens[c.pos + 1] == ":" {
            let name = c.next().expect("label token");
            if parse_sym_offset(name).map(|(_, off)| off != 0).unwrap_or(true) {
                return Err(c.err(format!("invalid label `{name}`")));
            }
            c.next();
            stmts.push(Stmt::Label(name.to_string()));
        }
        if let Some(tok) = c.peek() {
            if tok.starts_with('.') {
                let name = c.next().expect("directive token");
                stmts.push(Stmt::Directive(parse_directive(&mut c, name)?));
            } else if tok == "{" {
                c.next();
                let mut ops = vec![parse_op(&mut c)?];
                while c.eat("|") {
                    ops.push(parse_op(&mut c)?);
                }
                c.expect("}")?;
                stmts.push(Stmt::Bundle(ops));
            } else {
                stmts.push(Stmt::Bundle(vec![parse_op(&mut c)?]));
            }
            if c.peek().is_some() {
                return Err(c.err(format!("trailing tokens starting at `{}`", c.peek().unwrap())));
            }
        }
        if !stmts.is_empty() {
            out.push(Line { line: lineno, stmts });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Vec<Stmt> {
        let lines = parse("t.s", src).unwrap();
        assert_eq!(lines.len(), 1, "expected one line in {src:?}");
        lines[0].stmts.clone()
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        assert!(parse("t.s", "; hi\n# yo\n// sup\n\n   \n").unwrap().is_empty());
    }

    #[test]
    fn labels_and_instruction_on_one_line() {
        let stmts = one("loop: add r1, r2, r3");
        assert_eq!(stmts[0], Stmt::Label("loop".into()));
        match &stmts[1] {
            Stmt::Bundle(ops) => {
                assert_eq!(ops[0].mnemonic, "add");
                assert_eq!(
                    ops[0].operands,
                    vec![Operand::Reg(1), Operand::Reg(2), Operand::Reg(3)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let stmts = one("lw a0, -8(sp)");
        match &stmts[0] {
            Stmt::Bundle(ops) => {
                assert_eq!(ops[0].operands[1], Operand::Mem { offset: -8, base: 29 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bundles_split_on_pipe() {
        let stmts = one("{ add r1, r2, r3 | nop | lw a0, 0(sp) }");
        match &stmts[0] {
            Stmt::Bundle(ops) => {
                assert_eq!(ops.len(), 3);
                assert_eq!(ops[1].mnemonic, "nop");
                assert!(ops[1].operands.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hi_lo_operands() {
        let stmts = one("lui t0, %hi(table+8)");
        match &stmts[0] {
            Stmt::Bundle(ops) => {
                assert_eq!(ops[0].operands[1], Operand::Hi("table".into(), 8));
            }
            other => panic!("{other:?}"),
        }
        let stmts = one("ori t0, t0, %lo(table)");
        match &stmts[0] {
            Stmt::Bundle(ops) => {
                assert_eq!(ops[0].operands[2], Operand::Lo("table".into(), 0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symbol_with_negative_offset() {
        let stmts = one("j loop-4");
        match &stmts[0] {
            Stmt::Bundle(ops) => assert_eq!(ops[0].operands[0], Operand::Sym("loop".into(), -4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives_parse() {
        assert_eq!(one(".isa vliw4")[0], Stmt::Directive(Directive::Isa("vliw4".into())));
        assert_eq!(one(".text")[0], Stmt::Directive(Directive::Text));
        assert_eq!(one(".global main")[0], Stmt::Directive(Directive::Global("main".into())));
        assert_eq!(
            one(".word 1, -2, 0x10, tbl+4")[0],
            Stmt::Directive(Directive::Word(vec![
                WordExpr::Int(1),
                WordExpr::Int(-2),
                WordExpr::Int(16),
                WordExpr::Sym("tbl".into(), 4),
            ]))
        );
        assert_eq!(one(".byte 1, 2, 255")[0], Stmt::Directive(Directive::Byte(vec![1, 2, 255])));
        assert_eq!(one(".space 64")[0], Stmt::Directive(Directive::Space(64)));
        assert_eq!(one(".align 8")[0], Stmt::Directive(Directive::Align(8)));
        assert_eq!(one(".func dct")[0], Stmt::Directive(Directive::Func("dct".into())));
        assert_eq!(one(".endfunc")[0], Stmt::Directive(Directive::EndFunc));
    }

    #[test]
    fn asciz_with_escapes() {
        match &one(r#".asciz "hi\n\t\"x\"""#)[0] {
            Stmt::Directive(Directive::Asciz(s)) => assert_eq!(s, "hi\n\t\"x\""),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn char_literals_as_immediates() {
        match &one("li a0, 'A'")[0] {
            Stmt::Bundle(ops) => assert_eq!(ops[0].operands[1], Operand::Imm(65)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_location() {
        let err = parse("f.s", "\n\n.align 3").unwrap_err();
        match err {
            AsmError::Syntax { file, line, .. } => {
                assert_eq!(file, "f.s");
                assert_eq!(line, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("t.s", "add r1 r2").is_err()); // missing commas
        assert!(parse("t.s", ".bogus").is_err());
        assert!(parse("t.s", "{ add r1, r2, r3").is_err()); // unterminated bundle
        assert!(parse("t.s", "lw a0, 4(notareg)").is_err());
        assert!(parse("t.s", r#".asciz "oops"#).is_err());
    }

    #[test]
    fn hex_and_negative_ints() {
        assert_eq!(parse_int("0x10"), Some(16));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("-5"), Some(-5));
        assert_eq!(parse_int("r1"), None);
        assert_eq!(parse_int("5x"), None);
    }
}
