//! Property-based tests of the assembler: text → encoding round trips for
//! randomized operands, `li` materialization of arbitrary constants, and
//! label resolution at random distances.

use proptest::prelude::*;

use kahrisma_asm::assemble;
use kahrisma_isa::{isa_id, tables};

fn decode_words(text: &[u8]) -> Vec<u32> {
    text.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
}

proptest! {
    #[test]
    fn r_type_fields_roundtrip(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        let src = format!(".text\nadd r{rd}, r{rs1}, r{rs2}\n");
        let obj = assemble("t.s", &src).expect("assemble");
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let d = risc.decode(decode_words(&obj.text)[0]).expect("decode");
        prop_assert_eq!(risc.op(d.op_index).name(), "add");
        prop_assert_eq!(d.fields.rd, rd);
        prop_assert_eq!(d.fields.rs1, rs1);
        prop_assert_eq!(d.fields.rs2, rs2);
    }

    #[test]
    fn addi_immediates_roundtrip(rd in 1u8..32, rs1 in 0u8..32, imm in -8192i32..8192) {
        let src = format!(".text\naddi r{rd}, r{rs1}, {imm}\n");
        let obj = assemble("t.s", &src).expect("assemble");
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let d = risc.decode(decode_words(&obj.text)[0]).expect("decode");
        prop_assert_eq!(d.fields.simm(), imm);
    }

    #[test]
    fn li_materializes_any_constant(value in any::<i32>()) {
        let src = format!(".text\nli r5, {value}\n");
        let obj = assemble("t.s", &src).expect("assemble");
        let words = decode_words(&obj.text);
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        // Interpret the expansion architecturally.
        let mut r5 = 0u32;
        for w in words {
            let d = risc.decode(w).expect("decode");
            let op = risc.op(d.op_index);
            match op.name() {
                "addi" => r5 = (d.fields.simm()) as u32, // rs1 is always zero here
                "lui" => r5 = d.fields.imm << 13,
                "ori" => r5 |= d.fields.imm,
                other => prop_assert!(false, "unexpected op {}", other),
            }
        }
        prop_assert_eq!(r5, value as u32);
    }

    #[test]
    fn branch_offsets_resolve_at_any_distance(pad_before in 0usize..50, pad_after in 0usize..50) {
        // label <pads> branch <pads>; branch targets the label backwards.
        let mut src = String::from(".text\ntarget: nop\n");
        for _ in 0..pad_before {
            src.push_str("nop\n");
        }
        src.push_str("bne r1, zero, target\n");
        for _ in 0..pad_after {
            src.push_str("nop\n");
        }
        let obj = assemble("t.s", &src).expect("assemble");
        let words = decode_words(&obj.text);
        let branch_index = 1 + pad_before;
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        let d = risc.decode(words[branch_index]).expect("decode");
        prop_assert_eq!(d.fields.simm(), -((branch_index) as i32));
    }

    #[test]
    fn data_words_roundtrip(values in prop::collection::vec(any::<i32>(), 1..32)) {
        let list = values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let src = format!(".data\ntab: .word {list}\n");
        let obj = assemble("t.s", &src).expect("assemble");
        let words = decode_words(&obj.data);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(words[i] as i32, v);
        }
    }

    #[test]
    fn vliw_bundles_fill_and_pad(ops_in_bundle in 1usize..=4) {
        let body: Vec<String> =
            (0..ops_in_bundle).map(|i| format!("addi r{}, zero, {i}", i + 1)).collect();
        let src = format!(".isa vliw4\n.text\n{{ {} }}\n", body.join(" | "));
        let obj = assemble("t.s", &src).expect("assemble");
        let words = decode_words(&obj.text);
        prop_assert_eq!(words.len(), 4);
        for w in words.iter().skip(ops_in_bundle) {
            prop_assert_eq!(*w, kahrisma_isa::ops::NOP_WORD);
        }
    }

    #[test]
    fn object_bytes_always_reparse(label in "[a-z]{1,8}", n in 1usize..20) {
        let mut src = String::from(".text\n.global main\n.func main\nmain:\n");
        for i in 0..n {
            src.push_str(&format!("addi r{}, zero, {i}\n", (i % 30) + 1));
        }
        src.push_str(&format!("{label}: jr ra\n.endfunc\n"));
        let obj = assemble("t.s", &src).expect("assemble");
        let back = kahrisma_elf::Object::from_bytes(&obj.to_bytes()).expect("reparse");
        prop_assert_eq!(back.text, obj.text);
        prop_assert_eq!(back.debug, obj.debug);
    }
}
