//! Gateway integration tests: in-process `ksimd` workers on ephemeral
//! ports, an in-process gate sharding across them, driven by real TCP
//! clients speaking the plain wire protocol.
//!
//! The anchor test proves zero-loss migration: a session created through
//! the gate, partially run, evacuated to another worker by `gate_drain`,
//! and run to completion produces a stats document bit-identical to the
//! same run sequence on a single uninterrupted daemon.

use std::sync::Arc;
use std::thread::JoinHandle;

use kahrisma_gate::{Fleet, Gate, GateConfig, GateHandle};
use kahrisma_serve::json::Value;
use kahrisma_serve::{Client, ClientError, Daemon, DaemonHandle, ServerConfig};

struct Worker {
    addr: String,
    handle: DaemonHandle,
    thread: JoinHandle<()>,
}

fn start_worker(config: ServerConfig) -> Worker {
    let daemon = Daemon::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind worker");
    let addr = daemon.local_addr().expect("worker addr").to_string();
    let handle = daemon.handle().expect("worker handle");
    let thread = std::thread::spawn(move || daemon.run().expect("worker loop"));
    Worker { addr, handle, thread }
}

struct GateUnderTest {
    addr: String,
    handle: GateHandle,
    thread: JoinHandle<()>,
    workers: Vec<Worker>,
}

impl GateUnderTest {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("gate thread");
        for worker in self.workers {
            worker.handle.shutdown();
            worker.thread.join().expect("worker thread");
        }
    }
}

fn start_gate(worker_count: usize, worker_config: ServerConfig) -> GateUnderTest {
    let workers: Vec<Worker> =
        (0..worker_count).map(|_| start_worker(worker_config.clone())).collect();
    let fleet = Fleet::new(workers.iter().map(|w| (w.addr.clone(), None)).collect());
    let gate = Gate::bind(
        GateConfig {
            addr: "127.0.0.1:0".to_string(),
            health_interval: std::time::Duration::from_millis(100),
            ..GateConfig::default()
        },
        fleet,
    )
    .expect("bind gate");
    let addr = gate.local_addr().expect("gate addr").to_string();
    let handle = gate.handle().expect("gate handle");
    let thread = std::thread::spawn(move || gate.run().expect("gate loop"));
    GateUnderTest { addr, handle, thread, workers }
}

fn field(fields: Vec<(&str, Value)>) -> Vec<(String, Value)> {
    fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// A response object with its `id` field dropped, for comparing documents
/// produced by different client connections.
fn without_id(v: &Value) -> Value {
    match v {
        Value::Obj(fields) => Value::Obj(
            fields.iter().filter(|(k, _)| k != "id").cloned().collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn gate_ping_identifies_itself_and_counts_workers() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    let pong = client.request(field(vec![("cmd", "ping".into())])).unwrap();
    assert_eq!(pong.get("gate").and_then(Value::as_bool), Some(true));
    assert_eq!(pong.get("workers").and_then(Value::as_u64), Some(2));
    assert_eq!(pong.get("healthy_workers").and_then(Value::as_u64), Some(2));
    assert_eq!(pong.get("sessions").and_then(Value::as_u64), Some(0));
    assert!(pong.get("proto_version").and_then(Value::as_u64).is_some());
    assert_eq!(pong.get("draining").and_then(Value::as_bool), Some(false));

    // The typed client's tolerant load parser works against a gate too.
    let load = client.ping_load().unwrap();
    assert!(!load.draining);
    gate.stop();
}

#[test]
fn gate_proxies_create_run_stats_transparently() {
    let gate = start_gate(2, ServerConfig::default());
    let mut via_gate = Client::connect(&gate.addr).unwrap();
    via_gate.create("g1", "dct", "risc", Vec::new()).unwrap();
    let run = via_gate.run("g1", None, false, false).unwrap();
    assert_eq!(run.get("outcome").and_then(Value::as_str), Some("halted"));
    let gated_stats = via_gate.session_verb("stats", "g1").unwrap();

    // The same session driven directly on a lone worker gives the same
    // stats document: the gate added no observable behavior.
    let direct_worker = start_worker(ServerConfig::default());
    let mut direct = Client::connect(&direct_worker.addr).unwrap();
    direct.create("g1", "dct", "risc", Vec::new()).unwrap();
    direct.run("g1", None, false, false).unwrap();
    let direct_stats = direct.session_verb("stats", "g1").unwrap();
    assert_eq!(without_id(&gated_stats), without_id(&direct_stats));

    // Unknown sessions still produce the daemon's own error shape.
    let miss = via_gate.session_verb("stats", "nope");
    assert!(matches!(miss, Err(ClientError::Server { ref code, .. }) if code == "not_found"));

    direct_worker.handle.shutdown();
    direct_worker.thread.join().unwrap();
    gate.stop();
}

#[test]
fn gate_shards_sessions_and_list_merges_the_fleet() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    // Enough sessions that FNV-1a placement uses both workers.
    let names: Vec<String> = (0..8).map(|i| format!("shard-{i}")).collect();
    for name in &names {
        client.create(name, "dct", "risc", Vec::new()).unwrap();
    }
    let listing = client.list().unwrap();
    let rows = listing.get("sessions").and_then(Value::as_arr).unwrap();
    assert_eq!(rows.len(), names.len());
    let mut owners = std::collections::BTreeSet::new();
    for row in rows {
        let name = row.get("name").and_then(Value::as_str).unwrap();
        assert!(names.iter().any(|n| n == name));
        owners.insert(row.get("worker").and_then(Value::as_str).unwrap().to_string());
    }
    assert_eq!(owners.len(), 2, "8 hashed sessions should land on both workers");

    // Duplicate names are refused at the gate before touching a worker.
    let dup = client.create("shard-0", "dct", "risc", Vec::new());
    assert!(matches!(dup, Err(ClientError::Server { ref code, .. }) if code == "bad_request"));
    gate.stop();
}

#[test]
fn gate_status_reports_fleet_health_and_metrics() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create("status-probe", "dct", "risc", Vec::new()).unwrap();
    let status = client.request(field(vec![("cmd", "gate_status".into())])).unwrap();
    let workers = status.get("workers").and_then(Value::as_arr).unwrap();
    assert_eq!(workers.len(), 2);
    let resident: u64 = workers
        .iter()
        .map(|w| {
            assert_eq!(w.get("healthy").and_then(Value::as_bool), Some(true));
            assert!(w.get("addr").and_then(Value::as_str).is_some());
            w.get("resident_sessions").and_then(Value::as_u64).unwrap()
        })
        .sum();
    assert_eq!(resident, 1);
    assert!(
        status.get("metrics").and_then(|m| m.get("gauges")).is_some(),
        "gate_status carries a metrics-registry document"
    );
    gate.stop();
}

#[test]
fn gate_resolves_sessions_created_behind_its_back() {
    let gate = start_gate(2, ServerConfig::default());
    // Create directly on a worker, bypassing the gate's registry.
    let mut direct = Client::connect(&gate.workers[1].addr).unwrap();
    direct.create("stowaway", "dct", "risc", Vec::new()).unwrap();
    // The gate's first touch misses its registry, searches the fleet, and
    // serves the request anyway.
    let mut via_gate = Client::connect(&gate.addr).unwrap();
    let run = via_gate.run("stowaway", None, false, false).unwrap();
    assert_eq!(run.get("outcome").and_then(Value::as_str), Some("halted"));
    gate.stop();
}

/// The migration acceptance test: create through the gate, run partially,
/// evacuate the owning worker with `gate_drain`, finish the run on the new
/// worker — and the final stats document is bit-identical to the same
/// two-step run on one uninterrupted daemon.
///
/// The session disables the warm-path caches (decode cache, prediction,
/// superblocks): a portable snapshot carries architectural state and
/// counters exactly, but caches re-warm on the destination, so cache-hit
/// counters are only migration-invariant when the caches are off. The
/// companion test below pins down what migration preserves for a
/// default-config session.
#[test]
fn drained_sessions_migrate_with_bit_identical_stats() {
    const PARTIAL: u64 = 20_000;
    let flags = || {
        field(vec![
            ("decode_cache", false.into()),
            ("prediction", false.into()),
            ("superblocks", false.into()),
        ])
    };
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create("mig", "dct", "risc", flags()).unwrap();
    let first = client.run("mig", Some(PARTIAL), false, false).unwrap();
    assert_eq!(first.get("outcome").and_then(Value::as_str), Some("budget"));

    // Find the owner and drain it through the gate.
    let listing = client.list().unwrap();
    let owner_addr = listing
        .get("sessions")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .find(|row| row.get("name").and_then(Value::as_str) == Some("mig"))
        .and_then(|row| row.get("worker").and_then(Value::as_str))
        .unwrap()
        .to_string();
    let drain = client
        .request(field(vec![
            ("cmd", "gate_drain".into()),
            ("worker", owner_addr.as_str().into()),
        ]))
        .unwrap();
    let moved = drain.get("moved").and_then(Value::as_arr).unwrap();
    assert_eq!(moved.len(), 1, "exactly the one resident session moves");
    assert_eq!(moved[0].get("name").and_then(Value::as_str), Some("mig"));
    let new_home = moved[0].get("to").and_then(Value::as_str).unwrap();
    assert_ne!(new_home, owner_addr, "session moved off the drained worker");
    assert_eq!(drain.get("failed").and_then(Value::as_arr).unwrap().len(), 0);

    // The source worker no longer holds it; the destination does.
    let mut source = Client::connect(&owner_addr).unwrap();
    let gone = source.session_verb("stats", "mig");
    assert!(matches!(gone, Err(ClientError::Server { ref code, .. }) if code == "not_found"));
    let mut dest = Client::connect(new_home).unwrap();
    dest.session_verb("stats", "mig").unwrap();

    // Finish the run through the gate (its registry followed the move).
    let second = client.run("mig", None, false, false).unwrap();
    assert_eq!(second.get("outcome").and_then(Value::as_str), Some("halted"));
    let migrated_stats = client.session_verb("stats", "mig").unwrap();

    // Reference: identical two-step run on one uninterrupted daemon.
    let reference = start_worker(ServerConfig::default());
    let mut direct = Client::connect(&reference.addr).unwrap();
    direct.create("mig", "dct", "risc", flags()).unwrap();
    direct.run("mig", Some(PARTIAL), false, false).unwrap();
    direct.run("mig", None, false, false).unwrap();
    let reference_stats = direct.session_verb("stats", "mig").unwrap();

    assert_eq!(
        without_id(&migrated_stats).to_json(),
        without_id(&reference_stats).to_json(),
        "migrated session stats must be bit-identical to an uninterrupted run"
    );

    reference.handle.shutdown();
    reference.thread.join().unwrap();
    gate.stop();
}

/// A default-config session (all caches on) keeps every architectural
/// counter exact across migration; only cache-warmth counters re-accrue on
/// the destination as its caches warm from cold.
#[test]
fn default_sessions_keep_architectural_counters_across_migration() {
    const PARTIAL: u64 = 20_000;
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create("warm", "dct", "risc", Vec::new()).unwrap();
    client.run("warm", Some(PARTIAL), false, false).unwrap();
    let listing = client.list().unwrap();
    let owner_addr = listing
        .get("sessions")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .find(|row| row.get("name").and_then(Value::as_str) == Some("warm"))
        .and_then(|row| row.get("worker").and_then(Value::as_str))
        .unwrap()
        .to_string();
    let drain = client
        .request(field(vec![
            ("cmd", "gate_drain".into()),
            ("worker", owner_addr.as_str().into()),
        ]))
        .unwrap();
    assert_eq!(drain.get("moved").and_then(Value::as_arr).unwrap().len(), 1);
    client.run("warm", None, false, false).unwrap();
    let migrated = client.session_verb("stats", "warm").unwrap();

    let reference = start_worker(ServerConfig::default());
    let mut direct = Client::connect(&reference.addr).unwrap();
    direct.create("warm", "dct", "risc", Vec::new()).unwrap();
    direct.run("warm", Some(PARTIAL), false, false).unwrap();
    direct.run("warm", None, false, false).unwrap();
    let ref_stats = direct.session_verb("stats", "warm").unwrap();

    for key in [
        "instructions", "operations", "nops", "mem_reads", "mem_writes",
        "taken_branches", "isa_switches", "exit_code",
    ] {
        assert_eq!(
            migrated.get(key).and_then(Value::as_u64),
            ref_stats.get(key).and_then(Value::as_u64),
            "{key} must survive migration exactly"
        );
    }
    assert_eq!(migrated.get("halted").and_then(Value::as_bool), Some(true));

    reference.handle.shutdown();
    reference.thread.join().unwrap();
    gate.stop();
}

#[test]
fn drain_refuses_when_no_destination_exists() {
    let gate = start_gate(1, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create("stuck", "dct", "risc", Vec::new()).unwrap();
    let refused = client.request(field(vec![
        ("cmd", "gate_drain".into()),
        ("worker", 0u64.into()),
    ]));
    assert!(
        matches!(refused, Err(ClientError::Server { ref code, .. }) if code == "unavailable"),
        "single-worker fleet has nowhere to evacuate to"
    );
    // The refusal left the worker serving: the session still answers.
    client.session_verb("stats", "stuck").unwrap();
    gate.stop();
}

#[test]
fn fabric_sessions_survive_a_drain_in_place() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create_fabric("mesh", "dct:risc,quicksort:risc", None, None).unwrap();
    let listing = client.list().unwrap();
    let owner_addr = listing
        .get("sessions")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .find(|row| row.get("name").and_then(Value::as_str) == Some("mesh"))
        .and_then(|row| row.get("worker").and_then(Value::as_str))
        .unwrap()
        .to_string();
    let drain = client
        .request(field(vec![
            ("cmd", "gate_drain".into()),
            ("worker", owner_addr.as_str().into()),
        ]))
        .unwrap();
    // Fabric engines have no portable form: the session cannot move, but
    // it is not lost — it stays resident and keeps serving.
    let failed = drain.get("failed").and_then(Value::as_arr).unwrap();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].get("name").and_then(Value::as_str), Some("mesh"));
    let run = client.run("mesh", None, false, false).unwrap();
    assert_eq!(run.get("outcome").and_then(Value::as_str), Some("halted"));
    gate.stop();
}

#[test]
fn gate_shutdown_drains_cleanly_under_open_connections() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client.create("last", "dct", "risc", Vec::new()).unwrap();
    let bye = client.request(field(vec![("cmd", "shutdown".into())])).unwrap();
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop(client);
    gate.thread.join().expect("gate thread drains");
    for worker in gate.workers {
        worker.handle.shutdown();
        worker.thread.join().unwrap();
    }
}

// Re-exercise the handle-based stop path used by every other test so a
// hung drain fails fast here rather than as a suite timeout.
#[test]
fn idle_gate_stops_via_handle() {
    let gate = start_gate(1, ServerConfig::default());
    let _ = Arc::new(());
    gate.stop();
}

#[test]
fn one_request_through_the_gate_yields_gate_and_worker_spans() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client
        .request(field(vec![
            ("cmd", "create".into()),
            ("name", "traced".into()),
            ("workload", "dct".into()),
            ("isa", "risc".into()),
        ]))
        .unwrap();
    // A request with a known trace id: the gate must propagate (not
    // rewrite) it, so the gate-side and worker-side spans correlate.
    let trace_id = 424_242u64;
    let ran = client
        .request(field(vec![
            ("cmd", "run".into()),
            ("name", "traced".into()),
            ("trace", Value::Num(trace_id as f64)),
        ]))
        .unwrap();
    assert_eq!(ran.get("outcome").and_then(Value::as_str), Some("halted"));
    // The fast-path span is recorded by the proxy completion callback;
    // give the event loop a beat to run it.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let dump = client.trace_spans(Some(trace_id)).unwrap();
    let gate_spans = dump.get("spans").and_then(Value::as_arr).expect("gate spans");
    let run_gate_span = gate_spans
        .iter()
        .find(|s| s.get("verb").and_then(Value::as_str) == Some("run"))
        .expect("gate recorded a span for the traced run");
    assert_eq!(run_gate_span.get("kind").and_then(Value::as_str), Some("gate"));
    assert_eq!(run_gate_span.get("trace").and_then(Value::as_u64), Some(trace_id));
    assert!(
        run_gate_span.get("exec_us").and_then(Value::as_u64).unwrap_or(0) > 0,
        "gate span carries the proxy round-trip: {}",
        run_gate_span.to_json()
    );
    let worker_reports = dump.get("workers").and_then(Value::as_arr).expect("worker reports");
    let worker_spans: Vec<&Value> = worker_reports
        .iter()
        .filter_map(|w| w.get("spans").and_then(Value::as_arr))
        .flatten()
        .collect();
    let run_worker_span = worker_spans
        .iter()
        .find(|s| s.get("verb").and_then(Value::as_str) == Some("run"))
        .expect("exactly one worker executed the traced run");
    assert_eq!(run_worker_span.get("kind").and_then(Value::as_str), Some("worker"));
    assert_eq!(run_worker_span.get("trace").and_then(Value::as_u64), Some(trace_id));
    assert!(
        run_worker_span.get("exec_us").and_then(Value::as_u64).unwrap_or(0) > 0,
        "worker span times the verb execution: {}",
        run_worker_span.to_json()
    );
    assert!(
        run_worker_span.get("queue_us").is_some(),
        "worker span reports its pool queue wait"
    );

    // The same dump renders as a Perfetto fleet timeline — one track for
    // the gate, one per worker — and the export is valid JSON.
    let parse_rows = |v: Option<&Value>| -> Vec<kahrisma_observe::Span> {
        v.and_then(Value::as_arr)
            .map(|rows| {
                rows.iter().filter_map(kahrisma_serve::telemetry::span_from_value).collect()
            })
            .unwrap_or_default()
    };
    let mut tracks: Vec<(String, Vec<kahrisma_observe::Span>)> =
        vec![("gate".to_string(), parse_rows(dump.get("spans")))];
    for report in worker_reports {
        let label = report.get("addr").and_then(Value::as_str).unwrap_or("worker");
        tracks.push((format!("worker {label}"), parse_rows(report.get("spans"))));
    }
    let refs: Vec<(&str, &[kahrisma_observe::Span])> =
        tracks.iter().map(|(l, s)| (l.as_str(), s.as_slice())).collect();
    let perfetto = kahrisma_observe::perfetto::fleet_trace_json(&refs);
    kahrisma_observe::json_lint::validate(&perfetto).expect("Perfetto export is valid JSON");
    assert!(perfetto.contains("run traced"), "the traced run appears in the timeline");
    gate.stop();
}

#[test]
fn gate_server_metrics_merges_the_fleet_with_per_worker_reports() {
    let gate = start_gate(2, ServerConfig::default());
    let mut client = Client::connect(&gate.addr).unwrap();
    client
        .request(field(vec![
            ("cmd", "create".into()),
            ("name", "m1".into()),
            ("workload", "dct".into()),
            ("isa", "risc".into()),
        ]))
        .unwrap();
    client
        .request(field(vec![("cmd", "run".into()), ("name", "m1".into())]))
        .unwrap();
    let report = client.server_metrics().unwrap();
    assert_eq!(report.get("schema_version").and_then(Value::as_u64), Some(1));
    let counter = |name: &str| {
        report
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    // Fleet-merged counters: the worker that served the session counted
    // its pool requests, and the gate counted the relays it performed.
    assert!(counter("requests.pool") >= 2, "{}", report.to_json());
    assert!(
        counter("gate.requests.forwarded") + counter("gate.requests.relayed") >= 2,
        "{}",
        report.to_json()
    );
    let workers = report.get("workers").and_then(Value::as_arr).expect("sub-reports");
    assert_eq!(workers.len(), 2);
    for sub in workers {
        assert!(sub.get("addr").and_then(Value::as_str).is_some());
        assert!(sub.get("counters").is_some(), "per-worker registry: {}", sub.to_json());
    }
    gate.stop();
}
