//! `kgate` — the KAHRISMA serving gateway.
//!
//! ```text
//! kgate [options]
//!   --addr HOST:PORT       listen address (default 127.0.0.1:9190; port 0 = ephemeral)
//!   --spawn N              spawn N local ksimd workers on ephemeral ports
//!   --worker HOST:PORT     attach an already-running worker (repeatable)
//!   --ksimd PATH           ksimd binary for --spawn (default: next to kgate)
//!   --ksimd-arg ARG        extra argument passed to every spawned ksimd (repeatable)
//!   --max-frame BYTES      client-side frame cap (default 8388608)
//!   --io-workers N         blocking relay threads (default 8)
//!   --upstream-timeout-ms N  per-request relay deadline (default 90000)
//!   --no-telemetry         disable gate spans + serve-plane metrics (ablation runs)
//! ```
//!
//! Prints `kgate listening on ADDR` to stdout once bound. Clients speak the
//! plain `ksimd` wire protocol to the gate; sessions are sharded across the
//! fleet, and `kctl gate-drain` evacuates a worker with zero session loss.
//! `kctl shutdown` drains the gate and shuts down every worker it spawned.

use std::io::BufRead as _;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use kahrisma_core::args::ArgList;
use kahrisma_gate::{Fleet, Gate, GateConfig};

fn usage() -> ! {
    eprintln!(
        "usage: kgate [--addr HOST:PORT] [--spawn N] [--worker HOST:PORT]...\n\
         \x20            [--ksimd PATH] [--ksimd-arg ARG]... [--max-frame BYTES]\n\
         \x20            [--io-workers N] [--upstream-timeout-ms N] [--no-telemetry]"
    );
    std::process::exit(2);
}

struct GateArgs {
    config: GateConfig,
    spawn: usize,
    attach: Vec<String>,
    ksimd: Option<String>,
    ksimd_args: Vec<String>,
}

fn parse_args(mut args: ArgList) -> Result<GateArgs, String> {
    let mut parsed = GateArgs {
        config: GateConfig {
            addr: "127.0.0.1:9190".to_string(),
            ..GateConfig::default()
        },
        spawn: 0,
        attach: Vec::new(),
        ksimd: None,
        ksimd_args: Vec::new(),
    };
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--addr" => parsed.config.addr = args.value("--addr")?,
            "--spawn" => parsed.spawn = args.parse_value("--spawn")?,
            "--worker" => parsed.attach.push(args.value("--worker")?),
            "--ksimd" => parsed.ksimd = Some(args.value("--ksimd")?),
            "--ksimd-arg" => parsed.ksimd_args.push(args.value("--ksimd-arg")?),
            "--max-frame" => parsed.config.max_frame = args.parse_value("--max-frame")?,
            "--io-workers" => parsed.config.io_workers = args.parse_value("--io-workers")?,
            "--upstream-timeout-ms" => {
                parsed.config.upstream_timeout =
                    Duration::from_millis(args.parse_value("--upstream-timeout-ms")?);
            }
            "--no-telemetry" => parsed.config.telemetry = false,
            "--help" | "-h" => usage(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if parsed.spawn == 0 && parsed.attach.is_empty() {
        return Err("need at least one worker: --spawn N or --worker HOST:PORT".to_string());
    }
    if parsed.config.max_frame < 1024 {
        return Err("--max-frame must be at least 1024 bytes".to_string());
    }
    if parsed.config.io_workers == 0 {
        return Err("--io-workers must be at least 1".to_string());
    }
    Ok(parsed)
}

/// Resolves the ksimd binary for `--spawn`: an explicit `--ksimd PATH`, or
/// the sibling of the running kgate executable.
fn ksimd_binary(explicit: Option<String>) -> Result<String, String> {
    if let Some(path) = explicit {
        return Ok(path);
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate kgate binary: {e}"))?;
    let sibling = me.with_file_name("ksimd");
    if sibling.exists() {
        return Ok(sibling.to_string_lossy().into_owned());
    }
    Err(format!(
        "no ksimd next to kgate ({}); pass --ksimd PATH",
        sibling.display()
    ))
}

/// Spawns one ksimd on an ephemeral port and parses the bound address from
/// its `ksimd listening on ADDR` banner.
fn spawn_ksimd(binary: &str, extra_args: &[String]) -> Result<(String, Child), String> {
    let mut child = Command::new(binary)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .args(extra_args)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {binary}: {e}"))?;
    let stdout = child.stdout.take().ok_or("no stdout from spawned ksimd")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    reader
        .read_line(&mut banner)
        .map_err(|e| format!("cannot read ksimd banner: {e}"))?;
    let addr = banner
        .trim()
        .strip_prefix("ksimd listening on ")
        .ok_or_else(|| format!("unexpected ksimd banner: {banner:?}"))?
        .to_string();
    // Keep draining the worker's stdout so it never blocks on a full pipe.
    std::thread::spawn(move || {
        for _ in reader.lines() {}
    });
    Ok((addr, child))
}

fn main() -> ExitCode {
    let parsed = match parse_args(ArgList::from_env()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("kgate: {e}");
            return ExitCode::from(2);
        }
    };
    let mut workers: Vec<(String, Option<Child>)> =
        parsed.attach.iter().map(|a| (a.clone(), None)).collect();
    if parsed.spawn > 0 {
        let binary = match ksimd_binary(parsed.ksimd) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("kgate: {e}");
                return ExitCode::from(2);
            }
        };
        for i in 0..parsed.spawn {
            match spawn_ksimd(&binary, &parsed.ksimd_args) {
                Ok((addr, child)) => {
                    eprintln!("kgate: spawned worker {i} at {addr}");
                    workers.push((addr, Some(child)));
                }
                Err(e) => {
                    eprintln!("kgate: {e}");
                    // Reap anything already spawned before giving up.
                    for (_, child) in &mut workers {
                        if let Some(child) = child {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                    }
                    return ExitCode::from(1);
                }
            }
        }
    }
    let gate = match Gate::bind(parsed.config, Fleet::new(workers)) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("kgate: cannot bind: {e}");
            return ExitCode::from(1);
        }
    };
    match gate.local_addr() {
        Ok(addr) => {
            // Scripts parse this line to find an ephemeral port.
            println!("kgate listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("kgate: {e}");
            return ExitCode::from(1);
        }
    }
    match gate.run() {
        Ok(()) => {
            eprintln!("kgate: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kgate: event loop failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> ArgList {
        ArgList::new(s.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn parses_spawn_and_attach_flags() {
        let p = parse_args(args(&[
            "--addr", "127.0.0.1:0", "--spawn", "2", "--worker", "127.0.0.1:9191",
            "--worker", "127.0.0.1:9192", "--ksimd", "/bin/ksimd", "--ksimd-arg",
            "--max-running", "--ksimd-arg", "8", "--max-frame", "65536",
            "--io-workers", "4", "--upstream-timeout-ms", "5000", "--no-telemetry",
        ]))
        .unwrap();
        assert_eq!(p.config.addr, "127.0.0.1:0");
        assert_eq!(p.spawn, 2);
        assert_eq!(p.attach, vec!["127.0.0.1:9191", "127.0.0.1:9192"]);
        assert_eq!(p.ksimd.as_deref(), Some("/bin/ksimd"));
        assert_eq!(p.ksimd_args, vec!["--max-running", "8"]);
        assert_eq!(p.config.max_frame, 65536);
        assert_eq!(p.config.io_workers, 4);
        assert_eq!(p.config.upstream_timeout, Duration::from_secs(5));
        assert!(!p.config.telemetry);
    }

    #[test]
    fn telemetry_is_on_by_default() {
        let p = parse_args(args(&["--worker", "127.0.0.1:9191"])).unwrap();
        assert!(p.config.telemetry);
    }

    #[test]
    fn requires_at_least_one_worker() {
        assert!(parse_args(args(&[])).is_err());
        assert!(parse_args(args(&["--spawn", "0"])).is_err());
        assert!(parse_args(args(&["--worker", "127.0.0.1:9191"])).is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(args(&["--spawn", "1", "--max-frame", "16"])).is_err());
        assert!(parse_args(args(&["--spawn", "1", "--io-workers", "0"])).is_err());
        assert!(parse_args(args(&["--spawn", "x"])).is_err());
        assert!(parse_args(args(&["--bogus"])).is_err());
    }
}
