//! `kgate`: a session-sharding gateway in front of a `ksimd` worker fleet.
//!
//! One simulation daemon is bounded by its admission limit (`max_running`
//! CPU-bound run slots). `kgate` scales the serving plane horizontally
//! while keeping the wire protocol unchanged: clients speak plain `ksimd`
//! JSONL to the gate, and the gate
//!
//! * **shards** sessions across N workers by session-key hash (an
//!   authoritative name→worker registry tracks the actual placement, which
//!   rebalancing may move away from the hash),
//! * **proxies** every protocol verb transparently — on the shared
//!   [`kahrisma_serve::eventloop`] the relay is a loop-level state machine
//!   that forwards frames verbatim (stream frames included) without tying
//!   up a thread,
//! * **health-checks** workers with the extended `ping` (load, drain
//!   state), routing around unhealthy ones, and
//! * **evacuates** workers: `gate_drain` migrates every session off a
//!   worker through the wire `export`/`import` snapshot codec with zero
//!   session loss, so a worker can be taken down under live load.
//!
//! The gate answers `ping`, `gate_status`, and `gate_drain` itself, and
//! aggregates `server_metrics` / `trace` across the fleet (its own
//! serve-plane registry merged with every worker's, plus per-worker
//! sub-reports); everything else reaches a worker. Requests passing
//! through carry a trace id — the client's own when present, a freshly
//! minted one otherwise — so a gate span (proxy round-trip) and the
//! worker span (queue wait + execution) of the same request correlate.
//! Like the rest of the workspace, this is std-only: TCP + threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs as _};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kahrisma_observe::{MetricsRegistry, Span, SpanKind, SpanRing};
use kahrisma_serve::eventloop::{
    ConnOut, Dispatch, EventLoop, LoopConfig, LoopStats, ProxyOutcome, ProxyTicket, Service,
};
use kahrisma_serve::json::{self, Value};
use kahrisma_serve::proto::{self, ErrorCode, PROTO_VERSION};
use kahrisma_serve::{telemetry, Client, ClientError, ServerLoad};

/// Gate spans retained for `trace` (oldest evicted first).
const SPAN_RING_CAPACITY: usize = 4096;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub addr: String,
    /// Abandon a relayed request after this long without a final response
    /// (must exceed the workers' `request_timeout`, which bounds each run).
    pub upstream_timeout: Duration,
    /// Back-off hint attached to gate-synthesized `overloaded` responses.
    pub retry_after_ms: u64,
    /// Frame cap for client connections (workers advertise their own).
    pub max_frame: usize,
    /// Interval between worker health probes.
    pub health_interval: Duration,
    /// Worker threads for blocking gate work (slow-path relays, drains).
    pub io_workers: usize,
    /// Idle upstream connections pooled per worker.
    pub pool_per_worker: usize,
    /// Record gate spans and serve-plane metrics (off for ablation runs).
    pub telemetry: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            addr: "127.0.0.1:0".to_string(),
            upstream_timeout: Duration::from_secs(90),
            retry_after_ms: 250,
            max_frame: proto::DEFAULT_MAX_FRAME_BYTES,
            health_interval: Duration::from_millis(500),
            io_workers: 8,
            pool_per_worker: 8,
            telemetry: true,
        }
    }
}

/// One `ksimd` worker as the gate sees it.
pub struct WorkerHandle {
    /// The worker's listen address.
    pub addr: String,
    /// Idle pooled connections to this worker.
    pool: Mutex<Vec<TcpStream>>,
    healthy: AtomicBool,
    /// Excluded from new-session placement (set by `gate_drain`).
    draining: AtomicBool,
    /// Last load report from the health prober.
    load: Mutex<ServerLoad>,
    /// The child process, when this gate spawned the worker.
    child: Mutex<Option<Child>>,
}

impl WorkerHandle {
    fn new(addr: String, child: Option<Child>) -> WorkerHandle {
        WorkerHandle {
            addr,
            pool: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            load: Mutex::new(ServerLoad::default()),
            child: Mutex::new(child),
        }
    }

    /// Whether the last health probe succeeded.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Whether the worker is excluded from new-session placement.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn checkout_conn(&self) -> Option<TcpStream> {
        lock(&self.pool).pop()
    }

    fn checkin_conn(&self, stream: TcpStream, cap: usize) {
        let mut pool = lock(&self.pool);
        if pool.len() < cap {
            pool.push(stream);
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn snapshot_load(&self) -> ServerLoad {
        lock(&self.load).clone()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The worker fleet plus the authoritative session→worker registry.
pub struct Fleet {
    workers: Vec<Arc<WorkerHandle>>,
    registry: Mutex<HashMap<String, usize>>,
}

impl Fleet {
    /// Builds a fleet from attached worker addresses and/or spawned
    /// children (pass the `Child` for workers this gate owns; they are
    /// shut down when the gate drains).
    #[must_use]
    pub fn new(workers: Vec<(String, Option<Child>)>) -> Fleet {
        Fleet {
            workers: workers
                .into_iter()
                .map(|(addr, child)| Arc::new(WorkerHandle::new(addr, child)))
                .collect(),
            registry: Mutex::new(HashMap::new()),
        }
    }

    /// The workers, in fleet order.
    #[must_use]
    pub fn workers(&self) -> &[Arc<WorkerHandle>] {
        &self.workers
    }

    /// The registry's owner for `name`, if tracked.
    fn owner(&self, name: &str) -> Option<usize> {
        lock(&self.registry).get(name).copied()
    }

    fn register(&self, name: &str, worker: usize) {
        lock(&self.registry).insert(name.to_string(), worker);
    }

    fn unregister(&self, name: &str) {
        lock(&self.registry).remove(name);
    }

    fn resident_count(&self, worker: usize) -> usize {
        lock(&self.registry).values().filter(|&&w| w == worker).count()
    }

    /// Placement for a new session: the FNV-1a hash of its name over the
    /// eligible (healthy, non-draining) workers; falls back to the
    /// least-registered eligible worker when the hashed slot is ineligible.
    fn place(&self, name: &str) -> Option<usize> {
        let eligible: Vec<usize> = (0..self.workers.len())
            .filter(|&i| self.workers[i].is_healthy() && !self.workers[i].is_draining())
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let slot = (fnv1a(name.as_bytes()) % self.workers.len() as u64) as usize;
        if eligible.contains(&slot) {
            return Some(slot);
        }
        eligible
            .into_iter()
            .min_by_key(|&i| self.resident_count(i))
    }

    /// Placement excluding one worker (migration destinations).
    fn place_excluding(&self, excluded: usize) -> Option<usize> {
        (0..self.workers.len())
            .filter(|&i| {
                i != excluded && self.workers[i].is_healthy() && !self.workers[i].is_draining()
            })
            .min_by_key(|&i| self.resident_count(i))
    }
}

/// 64-bit FNV-1a: deterministic, dependency-free session-key hashing.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The gateway service: routing, proxying, and fleet administration over
/// the shared event loop.
pub struct GateService {
    fleet: Arc<Fleet>,
    config: GateConfig,
    draining: Arc<AtomicBool>,
    started: Instant,
    loop_stats: Arc<LoopStats>,
    /// Gate spans (proxy round-trips), shared with fast-path completion
    /// callbacks that outlive the dispatching call.
    spans: Arc<Mutex<SpanRing>>,
    /// Gate-side serve-plane metrics, merged with worker registries by
    /// `server_metrics`.
    metrics: Arc<Mutex<MetricsRegistry>>,
}

/// Verbs the gate answers itself (everything else goes to a worker).
const LOCAL_VERBS: [&str; 6] =
    ["ping", "gate_status", "gate_drain", "shutdown", "server_metrics", "trace"];

impl Service for GateService {
    fn route(&self, request: &Value, raw: &str) -> Dispatch {
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
            return Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::BadRequest,
                "missing `cmd`",
                None,
            ));
        };
        if self.draining.load(Ordering::SeqCst)
            && !matches!(cmd, "ping" | "list" | "server_metrics" | "trace")
        {
            return Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::Draining,
                "gate is draining",
                None,
            ));
        }
        match cmd {
            "ping" => Dispatch::Reply(self.ping_response(id)),
            "gate_status" => Dispatch::Reply(self.status_response(&id)),
            "gate_drain" => Dispatch::Pool,
            "shutdown" => {
                self.draining.store(true, Ordering::SeqCst);
                Dispatch::Reply(proto::ok_response(
                    id,
                    vec![("draining".to_string(), Value::Bool(true))],
                ))
            }
            // Fleet fan-outs (blocking worker round-trips) run on the pool.
            "list" | "server_metrics" | "trace" => Dispatch::Pool,
            "create" | "import" => {
                let Some(name) = request.get("name").and_then(Value::as_str) else {
                    return Dispatch::Reply(proto::error_response(
                        id,
                        ErrorCode::BadRequest,
                        "missing `name`",
                        None,
                    ));
                };
                if self.fleet.owner(name).is_some() {
                    return Dispatch::Reply(proto::error_response(
                        id,
                        ErrorCode::BadRequest,
                        &format!("session `{name}` already exists"),
                        None,
                    ));
                }
                let Some(worker) = self.fleet.place(name) else {
                    return Dispatch::Reply(self.no_workers(&id));
                };
                self.forward(worker, request, raw, id)
            }
            _ => {
                // Session verbs: route to the registered owner. A registry
                // miss goes to the slow path, which searches the fleet.
                let Some(name) = request.get("name").and_then(Value::as_str) else {
                    return Dispatch::Reply(proto::error_response(
                        id,
                        ErrorCode::BadRequest,
                        "missing `name`",
                        None,
                    ));
                };
                match self.fleet.owner(name) {
                    Some(worker) => self.forward(worker, request, raw, id),
                    None => Dispatch::Pool,
                }
            }
        }
    }

    fn perform(&self, request: &Value, out: &Arc<ConnOut>, wait_us: u64) -> Value {
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        match request.get("cmd").and_then(Value::as_str) {
            Some("gate_drain") => self.handle_drain(&id, request),
            Some("list") => self.handle_list(&id),
            Some("server_metrics") => self.handle_server_metrics(&id),
            Some("trace") => self.handle_trace(&id, request),
            Some(cmd) if !LOCAL_VERBS.contains(&cmd) => {
                // Slow path: resolve the owner (searching the fleet on a
                // registry miss), connect if the pool was empty, and relay
                // on this worker thread.
                let name = request.get("name").and_then(Value::as_str).unwrap_or("");
                let worker = match self.resolve_owner(cmd, name) {
                    Ok(w) => w,
                    Err(response) => return respond(&id, response),
                };
                let (trace, raw) = with_trace(request);
                let start_us =
                    u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
                let begun = Instant::now();
                let response = self.relay_blocking(worker, cmd, name, &raw, &id, out);
                self.record_gate_span(
                    trace,
                    cmd,
                    name,
                    start_us,
                    wait_us,
                    u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX),
                    response.get("ok").and_then(Value::as_bool) == Some(true),
                    "gate.requests.relayed",
                );
                response
            }
            _ => proto::error_response(id, ErrorCode::BadRequest, "unroutable request", None),
        }
    }
}

/// Ensures an outbound request line carries a trace id: the client's own
/// when one is present (the gate propagates, never rewrites), a freshly
/// minted one appended to the frame otherwise. Returns the id and the line
/// to send upstream.
fn with_trace(request: &Value) -> (u64, String) {
    if let Some(trace) = request.get("trace").and_then(Value::as_u64) {
        return (trace, request.to_json());
    }
    let trace = kahrisma_core::observe::next_trace_id();
    let line = match request {
        Value::Obj(fields) => {
            let mut fields = fields.clone();
            fields.push(("trace".to_string(), Value::Num(trace as f64)));
            Value::Obj(fields).to_json()
        }
        other => other.to_json(),
    };
    (trace, line)
}

/// `Ok(worker)` or `Err(error fields)` — the latter is turned into a
/// response carrying the request id by [`respond`].
type Routed = Result<usize, Value>;

/// Stamps the request id onto an error built before the id was in scope.
fn respond(id: &Value, error: Value) -> Value {
    match error {
        Value::Obj(mut fields) => {
            for (key, value) in &mut fields {
                if key == "id" {
                    *value = id.clone();
                }
            }
            Value::Obj(fields)
        }
        other => other,
    }
}

impl GateService {
    fn ping_response(&self, id: Value) -> Value {
        let healthy =
            self.fleet.workers().iter().filter(|w| w.is_healthy()).count();
        proto::ok_response(
            id,
            vec![
                ("pong".to_string(), Value::Bool(true)),
                ("proto_version".to_string(), PROTO_VERSION.into()),
                ("gate".to_string(), Value::Bool(true)),
                ("workers".to_string(), (self.fleet.workers().len() as u64).into()),
                ("healthy_workers".to_string(), (healthy as u64).into()),
                (
                    "sessions".to_string(),
                    (lock(&self.fleet.registry).len() as u64).into(),
                ),
                (
                    "uptime_ms".to_string(),
                    (self.started.elapsed().as_millis() as u64).into(),
                ),
                ("max_frame".to_string(), (self.config.max_frame as u64).into()),
                (
                    "draining".to_string(),
                    Value::Bool(self.draining.load(Ordering::SeqCst)),
                ),
            ],
        )
    }

    /// `gate_status`: per-worker health, load, and placement, plus the
    /// same data as a [`MetricsRegistry`] gauge document (the observe
    /// crate's uniform metrics shape).
    fn status_response(&self, id: &Value) -> Value {
        let mut rows = Vec::new();
        let mut registry = MetricsRegistry::new();
        for (i, worker) in self.fleet.workers().iter().enumerate() {
            let load = worker.snapshot_load();
            let resident = self.fleet.resident_count(i) as u64;
            rows.push(Value::Obj(vec![
                ("index".to_string(), (i as u64).into()),
                ("addr".to_string(), worker.addr.as_str().into()),
                ("healthy".to_string(), Value::Bool(worker.is_healthy())),
                ("draining".to_string(), Value::Bool(worker.is_draining())),
                (
                    "spawned".to_string(),
                    Value::Bool(lock(&worker.child).is_some()),
                ),
                ("resident_sessions".to_string(), resident.into()),
                ("reported_sessions".to_string(), load.sessions.into()),
                ("running".to_string(), load.running.into()),
                ("uptime_ms".to_string(), load.uptime_ms.into()),
            ]));
            let prefix = format!("kgate.worker{i}");
            registry.set_gauge(&format!("{prefix}.healthy"), f64::from(worker.is_healthy()));
            registry.set_gauge(&format!("{prefix}.resident_sessions"), resident as f64);
            registry.set_gauge(&format!("{prefix}.running"), load.running as f64);
        }
        proto::ok_response(
            id.clone(),
            vec![
                ("workers".to_string(), Value::Arr(rows)),
                (
                    "sessions".to_string(),
                    (lock(&self.fleet.registry).len() as u64).into(),
                ),
                (
                    "metrics".to_string(),
                    json::parse(&registry.to_json()).unwrap_or_else(|_| Value::Obj(Vec::new())),
                ),
            ],
        )
    }

    fn no_workers(&self, id: &Value) -> Value {
        proto::error_response(
            id.clone(),
            ErrorCode::Unavailable,
            "no healthy workers available",
            Some(self.config.retry_after_ms),
        )
    }

    /// Fast path: relay through the event loop using a pooled upstream
    /// connection; falls back to the pool (blocking connect) when none is
    /// idle.
    fn forward(&self, worker: usize, request: &Value, raw: &str, id: Value) -> Dispatch {
        let handle = &self.fleet.workers()[worker];
        if !handle.is_healthy() {
            return Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::Unavailable,
                &format!("worker {} is unhealthy", handle.addr),
                Some(self.config.retry_after_ms),
            ));
        }
        let Some(upstream) = handle.checkout_conn() else {
            return Dispatch::Pool;
        };
        let fleet = Arc::clone(&self.fleet);
        let cmd = request.get("cmd").and_then(Value::as_str).unwrap_or("").to_string();
        let name = request.get("name").and_then(Value::as_str).unwrap_or("").to_string();
        let pool_cap = self.config.pool_per_worker;
        // Forward the client's exact frame when it already carries a trace
        // id; mint one only when tracing is on and the frame has none.
        let (trace, request_line) = match request.get("trace").and_then(Value::as_u64) {
            Some(t) => (t, raw.to_string()),
            None if self.config.telemetry => with_trace(request),
            None => (0, raw.to_string()),
        };
        let telemetry = self.config.telemetry;
        let spans = Arc::clone(&self.spans);
        let metrics = Arc::clone(&self.metrics);
        let start_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let begun = Instant::now();
        Dispatch::Proxy(ProxyTicket {
            upstream,
            request_line,
            client_id: id,
            deadline: Some(Instant::now() + self.config.upstream_timeout),
            on_done: Box::new(move |outcome: ProxyOutcome| {
                apply_outcome(&fleet, worker, &cmd, &name, outcome.response.as_ref());
                if telemetry {
                    // The proxy relay never parked on the pool queue, so the
                    // whole gate-side cost is the upstream round-trip.
                    let rtt_us =
                        u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let ok = outcome
                        .response
                        .as_ref()
                        .and_then(|r| r.get("ok"))
                        .and_then(Value::as_bool)
                        == Some(true);
                    let mut reg = lock(&metrics);
                    reg.count("gate.requests.forwarded", 1);
                    if !ok {
                        reg.count("gate.requests.failed", 1);
                    }
                    reg.record("gate.proxy.rtt_us", rtt_us);
                    drop(reg);
                    lock(&spans).push(Span {
                        trace,
                        kind: SpanKind::Gate,
                        verb: cmd.clone(),
                        session: name.clone(),
                        start_us,
                        queue_us: 0,
                        exec_us: rtt_us,
                        ok,
                    });
                }
                if let Some(upstream) = outcome.upstream {
                    fleet.workers()[worker].checkin_conn(upstream, pool_cap);
                } else {
                    // The relay lost the connection: let the prober decide
                    // whether the worker itself is gone.
                    fleet.workers()[worker].healthy.store(false, Ordering::SeqCst);
                }
            }),
        })
    }

    /// Records one gate span plus its request counters and the proxy
    /// round-trip histogram (no-op with telemetry disabled).
    #[allow(clippy::too_many_arguments)]
    fn record_gate_span(
        &self,
        trace: u64,
        verb: &str,
        session: &str,
        start_us: u64,
        queue_us: u64,
        exec_us: u64,
        ok: bool,
        counter: &str,
    ) {
        if !self.config.telemetry {
            return;
        }
        let mut reg = lock(&self.metrics);
        reg.count(counter, 1);
        if !ok {
            reg.count("gate.requests.failed", 1);
        }
        reg.record("gate.proxy.rtt_us", exec_us);
        drop(reg);
        lock(&self.spans).push(Span {
            trace,
            kind: SpanKind::Gate,
            verb: verb.to_string(),
            session: session.to_string(),
            start_us,
            queue_us,
            exec_us,
            ok,
        });
    }

    /// Resolves which worker owns `name`, searching every healthy worker's
    /// `list` on a registry miss (sessions created before the gate, or
    /// moved behind its back).
    fn resolve_owner(&self, cmd: &str, name: &str) -> Routed {
        if name.is_empty() {
            return Err(proto::error_response(
                Value::Null,
                ErrorCode::BadRequest,
                "missing `name`",
                None,
            ));
        }
        if let Some(worker) = self.fleet.owner(name) {
            return Ok(worker);
        }
        if cmd == "create" || cmd == "import" {
            return self.fleet.place(name).ok_or_else(|| self.no_workers(&Value::Null));
        }
        for (i, worker) in self.fleet.workers().iter().enumerate() {
            if !worker.is_healthy() {
                continue;
            }
            let Ok(mut client) = Client::connect(&worker.addr) else { continue };
            let Ok(listing) = client.list() else { continue };
            let found = listing
                .get("sessions")
                .and_then(Value::as_arr)
                .is_some_and(|rows| {
                    rows.iter().any(|row| {
                        row.get("name").and_then(Value::as_str) == Some(name)
                    })
                });
            if found {
                self.fleet.register(name, i);
                return Ok(i);
            }
        }
        Err(proto::error_response(
            Value::Null,
            ErrorCode::NotFound,
            &format!("no session `{name}`"),
            None,
        ))
    }

    /// Pool-thread relay: connect (or reuse), forward, stream frames back,
    /// return the final response.
    fn relay_blocking(
        &self,
        worker: usize,
        cmd: &str,
        name: &str,
        raw: &str,
        id: &Value,
        out: &Arc<ConnOut>,
    ) -> Value {
        let handle = &self.fleet.workers()[worker];
        let upstream = match handle.checkout_conn().map(Ok).unwrap_or_else(|| handle.connect()) {
            Ok(s) => s,
            Err(e) => {
                handle.healthy.store(false, Ordering::SeqCst);
                return proto::error_response(
                    id.clone(),
                    ErrorCode::Unavailable,
                    &format!("cannot reach worker {}: {e}", handle.addr),
                    Some(self.config.retry_after_ms),
                );
            }
        };
        let deadline = Instant::now() + self.config.upstream_timeout;
        match relay_once(upstream, raw, out, deadline) {
            Ok((response, upstream)) => {
                apply_outcome(&self.fleet, worker, cmd, name, Some(&response));
                handle.checkin_conn(upstream, self.config.pool_per_worker);
                // Relay the exact response (the worker's own id echo).
                response
            }
            Err(e) => {
                handle.healthy.store(false, Ordering::SeqCst);
                proto::error_response(
                    id.clone(),
                    ErrorCode::Unavailable,
                    &format!("worker {} failed mid-request: {e}", handle.addr),
                    Some(self.config.retry_after_ms),
                )
            }
        }
    }

    /// `list` fans out to every healthy worker and merges, tagging each
    /// row with the worker that owns it.
    fn handle_list(&self, id: &Value) -> Value {
        let mut rows: Vec<Value> = Vec::new();
        for worker in self.fleet.workers() {
            if !worker.is_healthy() {
                continue;
            }
            let Ok(mut client) = Client::connect(&worker.addr) else { continue };
            let Ok(listing) = client.list() else { continue };
            if let Some(sessions) = listing.get("sessions").and_then(Value::as_arr) {
                for row in sessions {
                    if let Value::Obj(fields) = row {
                        let mut fields = fields.clone();
                        fields.push(("worker".to_string(), worker.addr.as_str().into()));
                        rows.push(Value::Obj(fields));
                    }
                }
            }
        }
        rows.sort_by(|a, b| {
            let name = |v: &Value| {
                v.get("name").and_then(Value::as_str).unwrap_or("").to_string()
            };
            name(a).cmp(&name(b))
        });
        proto::ok_response(id.clone(), vec![("sessions".to_string(), Value::Arr(rows))])
    }

    /// The gate's own serve-plane registry: proxy counters and the RTT
    /// histogram (when telemetry is on) plus event-loop health, fleet
    /// shape, and span-ring occupancy — all `gate.`-prefixed so merging
    /// with worker registries never collides with their `loop.*` /
    /// `sessions.*` names.
    fn own_registry(&self) -> MetricsRegistry {
        let mut reg = if self.config.telemetry {
            lock(&self.metrics).clone()
        } else {
            MetricsRegistry::new()
        };
        let ls = &self.loop_stats;
        reg.set_counter("gate.loop.poll_iterations", ls.poll_iterations.load(Ordering::Relaxed));
        reg.set_counter("gate.loop.accepted", ls.accepted.load(Ordering::Relaxed));
        reg.set_counter("gate.loop.refused", ls.refused.load(Ordering::Relaxed));
        reg.set_counter("gate.loop.frames", ls.frames.load(Ordering::Relaxed));
        reg.set_counter("gate.loop.frame_errors", ls.frame_errors.load(Ordering::Relaxed));
        reg.set_gauge("gate.loop.open_conns", ls.open_conns.load(Ordering::Relaxed) as f64);
        reg.set_gauge("gate.loop.queue_depth", ls.queue_depth.load(Ordering::Relaxed) as f64);
        let healthy = self.fleet.workers().iter().filter(|w| w.is_healthy()).count();
        reg.set_gauge("gate.workers", self.fleet.workers().len() as f64);
        reg.set_gauge("gate.workers.healthy", healthy as f64);
        reg.set_gauge("gate.sessions.registered", lock(&self.fleet.registry).len() as f64);
        reg.set_gauge("gate.uptime_ms", self.started.elapsed().as_millis() as f64);
        {
            let spans = lock(&self.spans);
            reg.set_counter("gate.spans.recorded", spans.total());
            reg.set_counter("gate.spans.dropped", spans.dropped());
        }
        reg
    }

    /// `server_metrics`: one fleet-wide report. The top level is the gate's
    /// registry merged with every healthy worker's (counters sum, gauges
    /// max, histogram buckets add — so fleet-wide quantiles stay honest);
    /// `workers` carries each worker's unmerged sub-report for per-worker
    /// views like `kctl top`. A worker that cannot be reached is simply
    /// absent from the report, never an error.
    fn handle_server_metrics(&self, id: &Value) -> Value {
        let mut merged = self.own_registry();
        let mut reports = Vec::new();
        for (i, worker) in self.fleet.workers().iter().enumerate() {
            if !worker.is_healthy() {
                continue;
            }
            let Ok(mut client) = Client::connect(&worker.addr) else { continue };
            let Ok(report) = client.server_metrics() else { continue };
            merged.merge(&telemetry::registry_from_value(&report));
            let mut fields = vec![
                ("index".to_string(), (i as u64).into()),
                ("addr".to_string(), worker.addr.as_str().into()),
            ];
            if let Value::Obj(report_fields) = &report {
                for (key, value) in report_fields {
                    if matches!(key.as_str(), "counters" | "gauges" | "histograms") {
                        fields.push((key.clone(), value.clone()));
                    }
                }
            }
            reports.push(Value::Obj(fields));
        }
        let mut fields = vec![(
            "schema_version".to_string(),
            kahrisma_core::STATS_SCHEMA_VERSION.into(),
        )];
        fields.extend(telemetry::registry_to_fields(&merged));
        fields.push(("workers".to_string(), Value::Arr(reports)));
        proto::ok_response(id.clone(), fields)
    }

    /// `trace`: the gate's own spans plus each healthy worker's, optionally
    /// filtered to one trace id (`filter`) — one request's gate span and
    /// worker span line up by their shared trace id.
    fn handle_trace(&self, id: &Value, request: &Value) -> Value {
        let filter = request.get("filter").and_then(Value::as_u64).filter(|&t| t != 0);
        let (rows, total, dropped) = {
            let spans = lock(&self.spans);
            let rows: Vec<Value> =
                spans.select(filter).iter().map(telemetry::span_to_value).collect();
            (rows, spans.total(), spans.dropped())
        };
        let mut reports = Vec::new();
        for worker in self.fleet.workers() {
            if !worker.is_healthy() {
                continue;
            }
            let Ok(mut client) = Client::connect(&worker.addr) else { continue };
            let Ok(report) = client.trace_spans(filter) else { continue };
            reports.push(Value::Obj(vec![
                ("addr".to_string(), worker.addr.as_str().into()),
                (
                    "spans".to_string(),
                    report.get("spans").cloned().unwrap_or(Value::Arr(Vec::new())),
                ),
            ]));
        }
        proto::ok_response(
            id.clone(),
            vec![
                ("spans".to_string(), Value::Arr(rows)),
                ("spans_total".to_string(), total.into()),
                ("spans_dropped".to_string(), dropped.into()),
                ("workers".to_string(), Value::Arr(reports)),
            ],
        )
    }

    /// `gate_drain`: evacuate every session from one worker via wire
    /// `export`/`import`, with zero session loss — a session that cannot
    /// move (fabric engines have no portable form; migration races) stays
    /// on the source worker and is reported in `failed`.
    fn handle_drain(&self, id: &Value, request: &Value) -> Value {
        let Some(worker) = self.worker_from_request(request) else {
            return proto::error_response(
                id.clone(),
                ErrorCode::BadRequest,
                "gate_drain needs `worker` (an index or address in the fleet)",
                None,
            );
        };
        if self.fleet.place_excluding(worker).is_none() {
            return proto::error_response(
                id.clone(),
                ErrorCode::Unavailable,
                "no healthy destination workers to evacuate to",
                Some(self.config.retry_after_ms),
            );
        }
        let source = &self.fleet.workers()[worker];
        source.draining.store(true, Ordering::SeqCst);
        let mut source_client = match Client::connect(&source.addr) {
            Ok(c) => c,
            Err(e) => {
                return proto::error_response(
                    id.clone(),
                    ErrorCode::Unavailable,
                    &format!("cannot reach worker {}: {e}", source.addr),
                    Some(self.config.retry_after_ms),
                )
            }
        };
        let names: Vec<String> = match source_client.list() {
            Ok(listing) => listing
                .get("sessions")
                .and_then(Value::as_arr)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| r.get("name").and_then(Value::as_str))
                        .map(ToString::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            Err(e) => {
                return proto::error_response(
                    id.clone(),
                    ErrorCode::Unavailable,
                    &format!("cannot list worker {}: {e}", source.addr),
                    Some(self.config.retry_after_ms),
                )
            }
        };
        let mut moved = Vec::new();
        let mut failed = Vec::new();
        for name in names {
            match self.migrate(&mut source_client, worker, &name) {
                Ok(dest) => moved.push(Value::Obj(vec![
                    ("name".to_string(), name.as_str().into()),
                    ("to".to_string(), self.fleet.workers()[dest].addr.as_str().into()),
                ])),
                Err(why) => failed.push(Value::Obj(vec![
                    ("name".to_string(), name.as_str().into()),
                    ("error".to_string(), why.into()),
                ])),
            }
        }
        proto::ok_response(
            id.clone(),
            vec![
                ("worker".to_string(), source.addr.as_str().into()),
                ("moved".to_string(), Value::Arr(moved)),
                ("failed".to_string(), Value::Arr(failed)),
            ],
        )
    }

    /// Moves one session: export (retrying while busy), import on the
    /// least-loaded destination (retrying while overloaded), then delete
    /// the source copy. The source copy is only deleted after the import
    /// acknowledges, so a failure at any step loses nothing.
    fn migrate(
        &self,
        source: &mut Client,
        source_idx: usize,
        name: &str,
    ) -> Result<usize, String> {
        let exported = retry_busy(|| source.export(name))
            .map_err(|e| format!("export failed: {e}"))?;
        let dest_idx = self
            .fleet
            .place_excluding(source_idx)
            .ok_or_else(|| "no destination worker".to_string())?;
        let dest = &self.fleet.workers()[dest_idx];
        let mut dest_client =
            Client::connect(&dest.addr).map_err(|e| format!("connect {}: {e}", dest.addr))?;
        retry_overloaded(|| dest_client.import(name, &exported))
            .map_err(|e| format!("import failed: {e}"))?;
        // The destination owns the session now; the source copy is
        // redundant (best-effort delete — a leak there is harmless).
        self.fleet.register(name, dest_idx);
        let _ = retry_busy(|| source.session_verb("delete", name));
        Ok(dest_idx)
    }

    fn worker_from_request(&self, request: &Value) -> Option<usize> {
        let selector = request.get("worker")?;
        if let Some(i) = selector.as_u64() {
            let i = i as usize;
            return (i < self.fleet.workers().len()).then_some(i);
        }
        let addr = selector.as_str()?;
        self.fleet.workers().iter().position(|w| w.addr == addr)
    }
}

fn apply_outcome(fleet: &Fleet, worker: usize, cmd: &str, name: &str, response: Option<&Value>) {
    let Some(response) = response else { return };
    let ok = response.get("ok").and_then(Value::as_bool) == Some(true);
    let code = response.get("code").and_then(Value::as_str);
    if name.is_empty() {
        return;
    }
    match (cmd, ok) {
        ("create" | "import", true) => fleet.register(name, worker),
        ("delete", true) => fleet.unregister(name),
        // The worker no longer has the session (evicted or deleted behind
        // the gate's back): drop the stale registry entry.
        (_, false) if code == Some("not_found") => fleet.unregister(name),
        _ => {}
    }
}

/// Sends one raw frame to a worker and pumps lines back: stream frames go
/// to `out` verbatim, the first id-bearing line is the final response.
/// Returns the response and the still-healthy connection.
fn relay_once(
    upstream: TcpStream,
    raw: &str,
    out: &Arc<ConnOut>,
    deadline: Instant,
) -> std::io::Result<(Value, TcpStream)> {
    let timeout_err =
        || std::io::Error::new(std::io::ErrorKind::TimedOut, "upstream worker timed out");
    upstream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut writer = upstream.try_clone()?;
    writer.write_all(raw.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(upstream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "worker closed the connection",
                ))
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(timeout_err());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let Ok(parsed) = json::parse(text) else {
            continue;
        };
        if parsed.get("id").is_some() {
            let stream = reader.into_inner();
            stream.set_read_timeout(None)?;
            return Ok((parsed, stream));
        }
        out.push_line(text);
    }
}

fn retry_busy(mut f: impl FnMut() -> Result<Value, ClientError>) -> Result<Value, ClientError> {
    let mut attempts = 0;
    loop {
        match f() {
            Err(ClientError::Server { ref code, .. }) if code == "busy" && attempts < 40 => {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            other => return other,
        }
    }
}

fn retry_overloaded(
    mut f: impl FnMut() -> Result<Value, ClientError>,
) -> Result<Value, ClientError> {
    let mut attempts = 0;
    loop {
        match f() {
            Err(ClientError::Server { ref code, retry_after_ms, .. })
                if code == "overloaded" && attempts < 20 =>
            {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(100).min(1000)));
            }
            other => return other,
        }
    }
}

/// Probes one worker with the extended `ping`; `None` marks it unhealthy.
fn probe(addr: &str, timeout: Duration) -> Option<ServerLoad> {
    let sock = addr.to_socket_addrs().ok()?.next()?;
    let stream = TcpStream::connect_timeout(&sock, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"id\":0,\"cmd\":\"ping\"}\n").ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let v = json::parse(line.trim()).ok()?;
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    Some(ServerLoad {
        proto_version: v.get("proto_version").and_then(Value::as_u64),
        sessions: v.get("sessions").and_then(Value::as_u64).unwrap_or(0),
        running: v.get("running").and_then(Value::as_u64).unwrap_or(0),
        uptime_ms: v.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0),
        max_frame: v.get("max_frame").and_then(Value::as_u64),
        draining: v.get("draining").and_then(Value::as_bool).unwrap_or(false),
    })
}

/// A stop handle for a running gate.
#[derive(Clone)]
pub struct GateHandle {
    draining: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl GateHandle {
    /// The gate's bound address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a graceful drain (in-flight relays finish, then the loop
    /// exits and spawned workers are shut down).
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// The gateway daemon.
pub struct Gate {
    listener: TcpListener,
    service: Arc<GateService>,
}

impl Gate {
    /// Binds the listen socket over an existing fleet.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: GateConfig, fleet: Fleet) -> std::io::Result<Gate> {
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(GateService {
            fleet: Arc::new(fleet),
            draining: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            loop_stats: Arc::new(LoopStats::default()),
            spans: Arc::new(Mutex::new(SpanRing::new(SPAN_RING_CAPACITY))),
            metrics: Arc::new(Mutex::new(MetricsRegistry::new())),
            config,
        });
        Ok(Gate { listener, service })
    }

    /// The bound address (read this after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle usable from other threads.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn handle(&self) -> std::io::Result<GateHandle> {
        Ok(GateHandle {
            draining: Arc::clone(&self.service.draining),
            addr: self.local_addr()?,
        })
    }

    /// Runs the gate until drained: starts the health prober, drives the
    /// event loop, then shuts down any workers this gate spawned (graceful
    /// `shutdown` verb first, then reaping the child).
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures.
    pub fn run(self) -> std::io::Result<()> {
        let service = Arc::clone(&self.service);
        let prober = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let probe_timeout = Duration::from_millis(500);
                while !service.draining.load(Ordering::SeqCst) {
                    for worker in service.fleet.workers() {
                        match probe(&worker.addr, probe_timeout) {
                            Some(load) => {
                                worker.healthy.store(!load.draining, Ordering::SeqCst);
                                *lock(&worker.load) = load;
                            }
                            None => worker.healthy.store(false, Ordering::SeqCst),
                        }
                    }
                    std::thread::sleep(service.config.health_interval);
                }
            })
        };
        let loop_config = LoopConfig {
            workers: self.service.config.io_workers.max(1),
            max_frame: self.service.config.max_frame,
            stats: Arc::clone(&self.service.loop_stats),
            ..LoopConfig::default()
        };
        let draining = Arc::clone(&self.service.draining);
        let result = EventLoop::new(self.listener, Arc::clone(&self.service), draining, loop_config)
            .run();
        let _ = prober.join();
        // Shut down spawned workers: graceful drain via the wire, then reap.
        for worker in service.fleet.workers() {
            let child = lock(&worker.child).take();
            if let Some(mut child) = child {
                if let Ok(mut client) = Client::connect(&worker.addr) {
                    let _ = client.shutdown();
                }
                let _ = child.wait();
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn placement_is_deterministic_and_skips_ineligible_workers() {
        let fleet = Fleet::new(vec![
            ("127.0.0.1:1".to_string(), None),
            ("127.0.0.1:2".to_string(), None),
            ("127.0.0.1:3".to_string(), None),
        ]);
        let a = fleet.place("session-a").unwrap();
        assert_eq!(fleet.place("session-a").unwrap(), a, "same key, same slot");
        // Draining the hashed slot reroutes deterministically to another.
        fleet.workers()[a].draining.store(true, Ordering::SeqCst);
        let b = fleet.place("session-a").unwrap();
        assert_ne!(a, b);
        // No eligible workers: no placement.
        for w in fleet.workers() {
            w.healthy.store(false, Ordering::SeqCst);
        }
        assert!(fleet.place("session-a").is_none());
    }

    #[test]
    fn registry_tracks_ownership_and_migration() {
        let fleet = Fleet::new(vec![
            ("127.0.0.1:1".to_string(), None),
            ("127.0.0.1:2".to_string(), None),
        ]);
        fleet.register("s1", 0);
        fleet.register("s2", 0);
        assert_eq!(fleet.owner("s1"), Some(0));
        assert_eq!(fleet.resident_count(0), 2);
        assert_eq!(fleet.place_excluding(0), Some(1));
        fleet.register("s1", 1); // migrated
        assert_eq!(fleet.owner("s1"), Some(1));
        assert_eq!(fleet.resident_count(0), 1);
        fleet.unregister("s2");
        assert_eq!(fleet.owner("s2"), None);
    }

    #[test]
    fn outcome_application_updates_the_registry() {
        let fleet = Fleet::new(vec![("127.0.0.1:1".to_string(), None)]);
        let ok = json::parse(r#"{"id":1,"ok":true}"#).unwrap();
        apply_outcome(&fleet, 0, "create", "s", Some(&ok));
        assert_eq!(fleet.owner("s"), Some(0));
        let not_found =
            json::parse(r#"{"id":2,"ok":false,"code":"not_found","error":"x"}"#).unwrap();
        apply_outcome(&fleet, 0, "stats", "s", Some(&not_found));
        assert_eq!(fleet.owner("s"), None, "stale entries drop on not_found");
        apply_outcome(&fleet, 0, "delete", "gone", Some(&ok));
        assert_eq!(fleet.owner("gone"), None);
    }
}
