//! Cross-backend planner determinism: one [`ExecPlan`] must produce
//! bit-identical deterministic counters on every planner backend — the
//! in-process work-stealing pool (any worker count), a `ksimd` daemon,
//! a `kgate` fleet of daemons, and the simulated fabric. This is the
//! contract that makes `kbatch dse` results backend-independent.

use kahrisma_campaign::Report;
use kahrisma_core::{CycleModelKind, MemGeometry, TierMode};
use kahrisma_isa::IsaKind;
use kahrisma_plan::{
    grids, DaemonPlanner, DseReport, Engine, ExecPlan, FabricPlanner, LocalPlanner, PlanSession,
    Planner,
};
use kahrisma_serve::{Daemon, ServerConfig};
use kahrisma_workloads::Workload;

/// A small DSE plan spanning both execution tiers and a 2×2 geometry
/// grid: 8 cells of dct/risc/doe, all servable and fabric-schedulable.
fn dse_plan() -> ExecPlan {
    let d = MemGeometry::default();
    grids::dse(
        "determinism",
        &[Workload::Dct],
        &[IsaKind::Risc],
        &[Engine::Iss(Some(CycleModelKind::Doe))],
        &[TierMode::Ir, TierMode::Interp],
        &[
            MemGeometry { l1_lines: 16, line_bytes: 16, ..d },
            MemGeometry { l1_lines: 16, line_bytes: 32, ..d },
            MemGeometry { l1_lines: 32, line_bytes: 16, ..d },
            MemGeometry { l1_lines: 32, line_bytes: 32, ..d },
        ],
        50_000_000,
        1,
    )
}

fn run_on(planner: &mut dyn Planner, plan: &ExecPlan) -> Report {
    let mut session = PlanSession::default();
    let run = planner.run_plan(plan, &mut session).expect("plan run");
    assert_eq!(run.executed, plan.cells.len());
    assert!(!run.interrupted);
    Report::new(&plan.name, &plan.fingerprint(), run.results)
}

fn spawn_daemon() -> (String, kahrisma_serve::DaemonHandle, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = daemon.local_addr().expect("addr").to_string();
    let handle = daemon.handle().expect("handle");
    let thread = std::thread::spawn(move || daemon.run().expect("daemon loop"));
    (addr, handle, thread)
}

#[test]
fn local_pool_counters_are_worker_count_invariant() {
    let plan = dse_plan();
    let one = run_on(&mut LocalPlanner { workers: 1, ..LocalPlanner::default() }, &plan);
    let four = run_on(&mut LocalPlanner { workers: 4, ..LocalPlanner::default() }, &plan);
    assert!(one.deterministic_eq(&four));
    // The derived Pareto report is equally invariant.
    let a = DseReport::new(&plan.name, &plan.fingerprint(), one.cells.clone());
    let b = DseReport::new(&plan.name, &plan.fingerprint(), four.cells.clone());
    assert!(a.deterministic_eq(&b));
}

#[test]
fn daemon_backend_matches_the_local_pool() {
    let plan = dse_plan();
    let local = run_on(&mut LocalPlanner::default(), &plan);
    let (addr, handle, thread) = spawn_daemon();
    let served = run_on(&mut DaemonPlanner::new(&addr), &plan);
    assert!(served.deterministic_eq(&local));
    handle.shutdown();
    thread.join().expect("daemon thread");
}

#[test]
fn gate_fleet_backend_matches_the_local_pool() {
    use kahrisma_gate::{Fleet, Gate, GateConfig};

    let plan = dse_plan();
    let local = run_on(&mut LocalPlanner::default(), &plan);

    let workers = [spawn_daemon(), spawn_daemon()];
    let gate = Gate::bind(
        GateConfig { addr: "127.0.0.1:0".to_string(), ..GateConfig::default() },
        Fleet::new(workers.iter().map(|(a, _, _)| (a.clone(), None)).collect()),
    )
    .expect("bind gate");
    let gate_addr = gate.local_addr().expect("gate addr").to_string();
    let gate_handle = gate.handle().expect("gate handle");
    let gate_thread = std::thread::spawn(move || gate.run().expect("gate loop"));

    let gated = run_on(&mut DaemonPlanner::new(&gate_addr), &plan);
    assert!(gated.deterministic_eq(&local));

    gate_handle.shutdown();
    gate_thread.join().expect("gate thread");
    for (_, handle, thread) in workers {
        handle.shutdown();
        thread.join().expect("worker thread");
    }
}

#[test]
fn fabric_backend_matches_the_local_pool() {
    let plan = dse_plan();
    let local = run_on(&mut LocalPlanner::default(), &plan);
    let fabric =
        run_on(&mut FabricPlanner { host_threads: 2, ..FabricPlanner::default() }, &plan);
    assert!(fabric.deterministic_eq(&local));
}
