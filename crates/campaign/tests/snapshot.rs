//! Snapshot/restore determinism on the real evaluation workloads.
//!
//! The checkpointing contract behind resumable campaigns: interrupting a
//! simulation at an arbitrary point, snapshotting, restoring into a
//! *fresh* simulator and running to completion must be indistinguishable —
//! on every deterministic counter and on the cycle model's statistics —
//! from an uninterrupted run.

use kahrisma_core::{CycleModelKind, RunOutcome, SimConfig, Simulator};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::{Workload, INSTRUCTION_BUDGET};

/// Pairs each workload with one cycle model so every model is exercised
/// across the suite without running the full cross product.
fn matrix() -> [(Workload, CycleModelKind); 6] {
    [
        (Workload::Cjpeg, CycleModelKind::Ilp),
        (Workload::Djpeg, CycleModelKind::Aie),
        (Workload::Fft, CycleModelKind::Doe),
        (Workload::Quicksort, CycleModelKind::Ilp),
        (Workload::Aes, CycleModelKind::Aie),
        (Workload::Dct, CycleModelKind::Doe),
    ]
}

/// Runs to completion, interrupted at `pause` instructions by a snapshot
/// that is restored into a fresh simulator, and asserts the result is
/// bit-identical to the uninterrupted reference.
fn check_interrupted_run(
    workload: Workload,
    isa: IsaKind,
    model: CycleModelKind,
    pause: impl Fn(u64) -> u64,
) {
    let exe = workload.build(isa).expect("toolchain");
    let config = SimConfig::with_model(model);

    let mut reference = Simulator::new(&exe, config.clone()).expect("load");
    let outcome = reference.run(INSTRUCTION_BUDGET).expect("reference run");
    assert_eq!(
        outcome,
        RunOutcome::Halted { exit_code: workload.expected_exit() },
        "{} reference self-check",
        workload.name()
    );
    let total = reference.stats().instructions;
    let pause = pause(total);
    assert!(pause > 0 && pause < total, "pause {pause} outside run of {total}");

    let mut first = Simulator::new(&exe, config.clone()).expect("load");
    assert_eq!(first.run_for(pause).expect("first leg"), RunOutcome::BudgetExhausted);
    assert_eq!(first.stats().instructions, pause);
    let snap = first.snapshot().expect("snapshot");
    drop(first); // the interrupted simulator is gone — only the snapshot survives

    let mut resumed = Simulator::new(&exe, config).expect("load fresh");
    resumed.restore(&snap).expect("restore");
    let outcome = resumed.run(INSTRUCTION_BUDGET).expect("resumed run");

    assert_eq!(
        outcome,
        RunOutcome::Halted { exit_code: workload.expected_exit() },
        "{} resumed self-check",
        workload.name()
    );
    assert_eq!(resumed.stats().instructions, total, "{}", workload.name());
    assert_eq!(
        resumed.stats().operations,
        reference.stats().operations,
        "{}",
        workload.name()
    );
    assert_eq!(resumed.stats().nops, reference.stats().nops, "{}", workload.name());
    assert_eq!(
        resumed.stats().isa_switches,
        reference.stats().isa_switches,
        "{}",
        workload.name()
    );
    assert_eq!(
        resumed.stats().mem_reads,
        reference.stats().mem_reads,
        "{}",
        workload.name()
    );
    assert_eq!(
        resumed.stats().mem_writes,
        reference.stats().mem_writes,
        "{}",
        workload.name()
    );
    assert_eq!(
        resumed.cycle_stats().expect("model"),
        reference.cycle_stats().expect("model"),
        "{} cycle statistics must be bit-identical",
        workload.name()
    );
}

#[test]
fn every_workload_resumes_identically_from_a_mid_run_snapshot() {
    for (workload, model) in matrix() {
        check_interrupted_run(workload, IsaKind::Risc, model, |total| total / 2);
    }
}

#[test]
fn vliw_runs_resume_identically_mid_superblock() {
    // A pause budget of a prime instruction count lands inside straight-line
    // superblock runs, not on block boundaries; VLIW4 exercises multi-slot
    // decode structures in the batched hot loop.
    for (workload, model) in [
        (Workload::Dct, CycleModelKind::Doe),
        (Workload::Fft, CycleModelKind::Aie),
    ] {
        check_interrupted_run(workload, IsaKind::Vliw4, model, |total| {
            let mut pause = total / 3;
            pause |= 1; // odd, so boundary-aligned batches are unlikely
            pause
        });
    }
}

#[test]
fn early_and_late_pauses_resume_identically() {
    check_interrupted_run(Workload::Quicksort, IsaKind::Risc, CycleModelKind::Doe, |_| 1);
    check_interrupted_run(Workload::Quicksort, IsaKind::Risc, CycleModelKind::Doe, |t| t - 1);
}

#[test]
fn snapshot_immediately_after_a_switchtarget_resumes_identically() {
    // The mixed-ISA hot path: pause exactly at each of the first ISA
    // switches of a VLIW binary (workload startup runs RISC bootstrap code
    // before switching), so restore must re-enter the correct ISA mode.
    let workload = Workload::Dct;
    let exe = workload.build(IsaKind::Vliw2).expect("toolchain");
    let config = SimConfig::with_model(CycleModelKind::Doe);

    let mut probe = Simulator::new(&exe, config.clone()).expect("load");
    let mut switch_points = Vec::new();
    let mut last_switches = 0;
    loop {
        match probe.run_for(1).expect("probe step") {
            RunOutcome::Halted { .. } => break,
            RunOutcome::BudgetExhausted => {}
        }
        let switches = probe.stats().isa_switches;
        if switches != last_switches {
            last_switches = switches;
            // The instruction just executed was a switchtarget.
            switch_points.push(probe.stats().instructions);
            if switch_points.len() >= 3 {
                break;
            }
        }
    }
    assert!(!switch_points.is_empty(), "dct/vliw2 never switched ISA");

    for pause in switch_points {
        check_interrupted_run(workload, IsaKind::Vliw2, CycleModelKind::Doe, |_| pause);
    }
}

#[test]
fn reset_replays_workloads_identically() {
    // Satellite contract for `Simulator::reset`: a second run of the same
    // loaded binary — now against a warm decode cache — is bit-identical.
    let exe = Workload::Fft.build(IsaKind::Vliw4).expect("toolchain");
    let mut sim =
        Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).expect("load");
    let first = sim.run(INSTRUCTION_BUDGET).expect("first run");
    let stats = *sim.stats();
    let cycles = sim.cycle_stats().expect("model");

    sim.reset();
    assert_eq!(sim.stats().instructions, 0);
    let second = sim.run(INSTRUCTION_BUDGET).expect("second run");
    assert_eq!(second, first);
    // After the reset the decode cache is warm, so the decode/lookup
    // counters differ by design; every architectural counter must match.
    assert_eq!(sim.stats().instructions, stats.instructions);
    assert_eq!(sim.stats().operations, stats.operations);
    assert_eq!(sim.stats().nops, stats.nops);
    assert_eq!(sim.stats().mem_reads, stats.mem_reads);
    assert_eq!(sim.stats().mem_writes, stats.mem_writes);
    assert_eq!(sim.stats().isa_switches, stats.isa_switches);
    assert_eq!(sim.stats().taken_branches, stats.taken_branches);
    assert_eq!(sim.stats().detect_decodes, 0, "decode cache must stay warm");
    assert_eq!(sim.cycle_stats().expect("model"), cycles);
}
