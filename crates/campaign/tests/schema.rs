//! Cross-binary schema-shape test: every JSON artifact the workspace emits
//! — `ksim --json` stats, `ksimd` stats responses, fabric stats, metrics
//! registries, campaign manifest lines and reports, and bench documents —
//! must carry the same unified `schema_version` (and, for standalone
//! documents, carry it as the *first* field).

use kahrisma_campaign::{CellResult, Report};
use kahrisma_core::{SimConfig, Simulator, StatsReport, STATS_SCHEMA_VERSION};
use kahrisma_fabric::{CoreSpec, Fabric, FabricConfig};
use kahrisma_isa::IsaKind;
use kahrisma_observe::{json_lint, MetricsRegistry};
use kahrisma_serve::bench::{BenchOptions, BenchReport, Percentiles};
use kahrisma_serve::json::Value;
use kahrisma_serve::{Client, Daemon, ServerConfig};
use kahrisma_workloads::Workload;

/// A standalone JSON document: must parse, and its first field must be
/// `schema_version` with the workspace-wide value.
fn assert_versioned(doc: &str, what: &str) {
    json_lint::validate(doc).unwrap_or_else(|e| panic!("{what}: invalid JSON: {e}"));
    let head: String = doc.chars().filter(|c| !c.is_whitespace()).take(20).collect();
    let want = format!("{{\"schema_version\":{STATS_SCHEMA_VERSION}");
    assert!(head.starts_with(&want), "{what}: document must lead with {want}, got {head}");
}

#[test]
fn every_json_artifact_shares_the_versioned_schema() {
    // ksim --json: a StatsReport over a finished single-core run.
    let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
    let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
    sim.run(u64::MAX).unwrap();
    let report = StatsReport::for_stats(sim.stats());
    assert_versioned(&report.to_json(), "ksim stats report");

    // kfab / ksim --cores: a fabric stats report.
    let specs = vec![
        CoreSpec::parse("dct:risc").unwrap(),
        CoreSpec::parse("dct:vliw4").unwrap(),
    ];
    let mut fabric = Fabric::new(specs, FabricConfig::default()).unwrap();
    fabric.run_for(u64::MAX).unwrap();
    let mut fab_report = StatsReport::new();
    fabric.stats().report_into(&mut fab_report);
    assert_versioned(&fab_report.to_json(), "fabric stats report");

    // Metrics registries (ksim --metrics, ksimd metrics verb, kbatch).
    assert_versioned(&fabric.metrics().to_json(), "fabric metrics registry");
    let mut registry = MetricsRegistry::new();
    registry.count("cells", 1);
    assert_versioned(&registry.to_json(), "metrics registry");

    // kbatch: manifest lines and the aggregate report document.
    let cell = CellResult {
        key: "dct/risc/func/superblock".into(),
        exit_code: 42,
        instructions: 1000,
        operations: 900,
        cycles: Some(1234),
        l1_miss_ratio: None,
        wall_seconds: 0.25,
        mips: 0.004,
        ns_per_instruction: 250.0,
    };
    assert_versioned(&cell.to_json(), "kbatch manifest line");
    let batch = Report::new("smoke", "fp", vec![cell]);
    assert_versioned(&batch.to_json(), "kbatch report");

    // kctl bench: the checked-in BENCH_serve.json document.
    let bench = BenchReport {
        options: BenchOptions::default(),
        requests: 1,
        overloaded_retries: 0,
        latency: Percentiles { min: 0.1, p50: 0.1, p90: 0.2, p95: 0.2, p99: 0.2, max: 0.2 },
        served_mips: 1.0,
        served_mips_best: 1.0,
        aggregate_mips: 1.0,
        direct_mips: 1.0,
        efficiency: 1.0,
    };
    assert_versioned(&bench.to_json(), "bench report");
}

#[test]
fn daemon_stats_responses_carry_the_schema_version() {
    // Over the wire the stats fields are flattened into the response
    // envelope (`id`/`ok` first), so the contract is presence, not
    // first-field position.
    let daemon = Daemon::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = daemon.local_addr().expect("addr").to_string();
    let handle = daemon.handle().expect("handle");
    let thread = std::thread::spawn(move || daemon.run().expect("accept loop"));

    let mut client = Client::connect(&addr).unwrap();
    client.handshake().unwrap();
    client.create("s", "dct", "risc", Vec::new()).unwrap();
    client.run("s", Some(1000), false, false).unwrap();
    let stats = client.session_verb("stats", "s").unwrap();
    assert_eq!(
        stats.get("schema_version").and_then(Value::as_u64),
        Some(STATS_SCHEMA_VERSION)
    );

    client.create_fabric("f", "dct:risc,dct:vliw2", Some(5000), None).unwrap();
    client.run("f", Some(1000), false, false).unwrap();
    let fab_stats = client.session_verb("stats", "f").unwrap();
    assert_eq!(
        fab_stats.get("schema_version").and_then(Value::as_u64),
        Some(STATS_SCHEMA_VERSION)
    );

    handle.shutdown();
    thread.join().expect("daemon thread");
}
