//! Campaign interruption and resume: a campaign stopped after N cells and
//! re-invoked with the same manifest must skip the completed cells and
//! produce a final report whose deterministic fields equal a from-scratch
//! run — regardless of worker count.

use std::path::PathBuf;

use kahrisma_campaign::{runner, CampaignError, CampaignSpec, CellSpec, Engine, Report, RunOptions};
use kahrisma_core::CycleModelKind;
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// A 6-cell grid that is fast but covers two ISAs and all three models.
fn grid() -> CampaignSpec {
    let mut spec = CampaignSpec::by_name("smoke").unwrap();
    spec.name = "resume-test".into();
    for cell in &mut spec.cells {
        cell.budget = 50_000_000;
    }
    spec
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kahrisma-campaign-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

fn run_complete(spec: &CampaignSpec, workers: usize) -> Report {
    let options = RunOptions { workers, ..RunOptions::default() };
    runner::run(spec, &options).expect("campaign").report
}

#[test]
fn interrupted_campaign_resumes_and_matches_from_scratch() {
    let spec = grid();
    let path = tmp("resume");
    let reference = run_complete(&spec, 1);

    // First invocation: killed (via stop_after) after 2 cells.
    let first = runner::run(
        &spec,
        &RunOptions {
            manifest: Some(path.clone()),
            stop_after: Some(2),
            ..RunOptions::default()
        },
    )
    .expect("interrupted run");
    assert!(first.interrupted);
    assert_eq!(first.executed, 2);
    assert_eq!(first.report.cells.len(), 2);

    // Second invocation, same manifest: completed cells are skipped.
    let second = runner::run(
        &spec,
        &RunOptions { manifest: Some(path.clone()), ..RunOptions::default() },
    )
    .expect("resumed run");
    assert!(!second.interrupted);
    assert_eq!(second.skipped, 2);
    assert_eq!(second.executed, spec.cells.len() - 2);
    assert_eq!(second.report.cells.len(), spec.cells.len());
    assert!(
        second.report.deterministic_eq(&reference),
        "resumed report must equal the from-scratch run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_after_every_possible_interruption_point() {
    let mut spec = grid();
    spec.name = "resume-sweep".into();
    spec.cells.truncate(3);
    let reference = run_complete(&spec, 1);
    for stop in 0..spec.cells.len() {
        let path = tmp(&format!("sweep-{stop}"));
        let first = runner::run(
            &spec,
            &RunOptions {
                manifest: Some(path.clone()),
                stop_after: Some(stop),
                ..RunOptions::default()
            },
        )
        .expect("interrupted run");
        assert_eq!(first.executed, stop);
        let second = runner::run(
            &spec,
            &RunOptions { manifest: Some(path.clone()), ..RunOptions::default() },
        )
        .expect("resumed run");
        assert_eq!(second.skipped, stop);
        assert!(second.report.deterministic_eq(&reference), "stop after {stop}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn parallel_workers_match_single_worker() {
    let mut spec = grid();
    spec.name = "workers-test".into();
    let single = run_complete(&spec, 1);
    let parallel = run_complete(&spec, 2);
    assert!(
        single.deterministic_eq(&parallel),
        "worker count must not change any deterministic field"
    );
}

#[test]
fn foreign_manifest_is_rejected() {
    let spec = grid();
    let path = tmp("foreign");
    runner::run(
        &spec,
        &RunOptions {
            manifest: Some(path.clone()),
            stop_after: Some(1),
            ..RunOptions::default()
        },
    )
    .expect("seed manifest");

    // Same file, different campaign: must refuse, not mix results.
    let mut other = grid();
    other.name = "other-campaign".into();
    let err = runner::run(
        &other,
        &RunOptions { manifest: Some(path.clone()), ..RunOptions::default() },
    )
    .expect_err("fingerprint mismatch");
    assert!(matches!(err, CampaignError::Manifest { .. }), "{err}");

    // --fresh starts over instead.
    let fresh = runner::run(
        &other,
        &RunOptions { manifest: Some(path.clone()), fresh: true, ..RunOptions::default() },
    )
    .expect("fresh run");
    assert_eq!(fresh.skipped, 0);
    assert_eq!(fresh.executed, other.cells.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn completed_manifest_resumes_to_a_noop() {
    let mut spec = grid();
    spec.name = "noop-test".into();
    spec.cells.truncate(2);
    let path = tmp("noop");
    let options = RunOptions { manifest: Some(path.clone()), ..RunOptions::default() };
    let first = runner::run(&spec, &options).expect("full run");
    assert_eq!(first.executed, 2);

    let second = runner::run(&spec, &options).expect("noop run");
    assert_eq!(second.executed, 0);
    assert_eq!(second.skipped, 2);
    assert!(second.report.deterministic_eq(&first.report));
    // Even the timing fields round-trip: nothing re-ran, so the report is
    // exactly what the manifest recorded.
    assert_eq!(second.report.cells, first.report.cells);
    std::fs::remove_file(&path).ok();
}

/// Manifests written before the execution-planner extraction must still
/// resume: the frozen fingerprint, the pre-planner cell-line shape
/// (explicit `null`s for absent optionals), and the tolerance for a
/// truncated trailing line (a crash mid-append) are all part of the
/// compatibility contract.
#[test]
fn pre_planner_manifest_still_resumes() {
    let spec = CampaignSpec::by_name("smoke").unwrap();
    let path = tmp("legacy");
    let recorded_key = "dct/risc/ilp/superblock";
    // Verbatim pre-extraction manifest content: header with the frozen
    // fingerprint, one completed cell, one partial line from a crash.
    let legacy = "\
{\"campaign\": \"smoke\", \"fingerprint\": \"21a05339803ae455\", \"cells\": 6}\n\
{\"key\": \"dct/risc/ilp/superblock\", \"exit_code\": 60, \"instructions\": 12345, \
\"operations\": 23456, \"cycles\": 34567, \"l1_miss_ratio\": null, \
\"wall_seconds\": 0.5, \"mips\": 0.02, \"ns_per_instruction\": 40000.0}\n\
{\"key\": \"dct/risc/aes\n";
    std::fs::write(&path, legacy).unwrap();

    let resumed = runner::run(
        &spec,
        &RunOptions { manifest: Some(path.clone()), ..RunOptions::default() },
    )
    .expect("legacy resume");
    assert_eq!(resumed.skipped, 1, "the recorded cell must be skipped");
    assert_eq!(resumed.executed, spec.cells.len() - 1);
    let recorded = resumed.report.get(recorded_key).expect("recorded cell kept");
    // The manifest's values are trusted verbatim, not re-simulated.
    assert_eq!(recorded.instructions, 12345);
    assert_eq!(recorded.cycles, Some(34567));
    assert_eq!(recorded.l1_miss_ratio, None);
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_json_is_stable_and_reparsable() {
    let mut spec = CampaignSpec {
        name: "json-test".into(),
        cells: vec![
            CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(Some(CycleModelKind::Doe))),
            CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None)),
        ],
    };
    for c in &mut spec.cells {
        c.budget = 50_000_000;
    }
    let report = run_complete(&spec, 1);
    let json = report.to_json();
    // Keys appear in sorted order in the document.
    let doe = json.find("dct/risc/doe/superblock").unwrap();
    let func = json.find("dct/risc/func/superblock").unwrap();
    assert!(doe < func);
    // Every cell line re-parses to the same deterministic content.
    for (cell, line) in report.cells.iter().zip(
        json.lines().filter(|l| l.trim_start().starts_with("{\"key\"")),
    ) {
        let parsed =
            kahrisma_campaign::CellResult::from_json(line.trim().trim_end_matches(','))
                .expect("reparse");
        assert!(parsed.deterministic_eq(cell));
    }
}
