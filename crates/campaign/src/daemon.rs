//! Campaign dispatch to a running `ksimd` daemon.
//!
//! `kbatch --daemon ADDR` sends each cell of a campaign to a simulation
//! server instead of simulating in-process: one session per cell, a
//! budget-bounded `run` loop (resuming across per-request deadlines), and
//! a `stats` read folded into the same [`CellResult`] the local runner
//! produces. Counter fields are bit-identical to a local run of the same
//! campaign; timing fields additionally include protocol and scheduling
//! overhead, which is precisely what serving measurements are for.
//!
//! The RTL reference engine is not servable (the daemon hosts ISS
//! sessions only), so campaigns with `Engine::Rtl` cells are rejected up
//! front — run those locally.

use std::time::{Duration, Instant};

use kahrisma_serve::json::Value;
use kahrisma_serve::{Client, ClientError};

use crate::report::{CellResult, Report};
use crate::spec::{CacheVariant, CampaignSpec, CellSpec, Engine};
use crate::{CampaignError, RunSummary};

/// Retry ceiling for `overloaded` rejections per request.
const MAX_OVERLOAD_RETRIES: u32 = 1000;

/// Runs every cell of `spec` on the daemon at `addr`, sequentially (the
/// daemon owns admission control and may be shared with other clients).
///
/// # Errors
///
/// Fails when the campaign contains RTL cells, when the daemon is
/// unreachable, and when any cell fails to build, simulate, or pass its
/// workload self-check — same contract as [`crate::runner::run`].
pub fn run(spec: &CampaignSpec, addr: &str, progress: bool) -> Result<RunSummary, CampaignError> {
    if let Some(cell) = spec.cells.iter().find(|c| c.engine == Engine::Rtl) {
        return Err(CampaignError::Cell {
            key: cell.key(),
            reason: "the RTL reference engine cannot run on a daemon; \
                     run this campaign locally"
                .into(),
        });
    }
    let mut client = Client::connect(addr).map_err(|e| CampaignError::Io {
        path: addr.to_string(),
        reason: format!("cannot connect to daemon: {e}"),
    })?;
    let mut results = Vec::with_capacity(spec.cells.len());
    for cell in &spec.cells {
        let started = Instant::now();
        let result = run_cell(&mut client, cell)?;
        if progress {
            eprintln!(
                "kbatch: [daemon] {:<42} {:>8.2}s {:>9.3} MIPS",
                result.key,
                started.elapsed().as_secs_f64(),
                result.mips,
            );
        }
        results.push(result);
    }
    Ok(RunSummary {
        report: Report::new(&spec.name, &spec.fingerprint(), results),
        executed: spec.cells.len(),
        skipped: 0,
        interrupted: false,
    })
}

/// The `create` parameters a cell maps to (mirrors
/// [`CellSpec::sim_config`] field for field).
fn create_fields(cell: &CellSpec) -> Result<Vec<(String, Value)>, String> {
    let mut fields = Vec::new();
    match cell.engine {
        Engine::Rtl => return Err("RTL cells are not servable".into()),
        Engine::Iss(None) => {}
        Engine::Iss(Some(model)) => {
            fields.push(("model".to_string(), Engine::Iss(Some(model)).tag().into()));
        }
    }
    let (cache, prediction, superblocks) = match cell.variant {
        CacheVariant::NoCache => (false, false, false),
        CacheVariant::CacheOnly => (true, false, false),
        CacheVariant::Prediction => (true, true, false),
        CacheVariant::Superblocks => (true, true, true),
    };
    fields.push(("decode_cache".to_string(), cache.into()));
    fields.push(("prediction".to_string(), prediction.into()));
    fields.push(("superblocks".to_string(), superblocks.into()));
    fields.push(("ideal_memory".to_string(), cell.ideal_memory.into()));
    Ok(fields)
}

/// A stable, collision-free session name for a cell (cell keys contain
/// `/` and can exceed the 64-byte name limit, so hash instead).
fn session_name(cell: &CellSpec) -> String {
    let key = cell.key();
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in key.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("kbatch-{hash:016x}")
}

fn run_cell(client: &mut Client, cell: &CellSpec) -> Result<CellResult, CampaignError> {
    let cell_err = |reason: String| CampaignError::Cell { key: cell.key(), reason };
    let fields = create_fields(cell).map_err(&cell_err)?;
    let name = session_name(cell);
    // A stale session from an interrupted dispatch must not leak its
    // state into this cell; recreate from scratch.
    let _ = client.session_verb("delete", &name);
    retry_overloaded(|| {
        client.create(&name, cell.workload.name(), cell.isa.name(), fields.clone())
    })
    .map_err(|e| cell_err(format!("create: {e}")))?;

    let mut best_wall = f64::INFINITY;
    let mut exit_code = None;
    for repeat in 0..cell.repeats.max(1) {
        let started = Instant::now();
        exit_code = Some(run_to_halt(client, &name, cell, repeat > 0).map_err(&cell_err)?);
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
    }
    let exit_code = exit_code.unwrap_or_default();
    let expected = cell.workload.expected_exit();
    if exit_code != expected {
        let _ = client.session_verb("delete", &name);
        return Err(cell_err(format!(
            "self-check failed: exit {exit_code}, expected {expected}"
        )));
    }

    let stats = client
        .session_verb("stats", &name)
        .map_err(|e| cell_err(format!("stats: {e}")))?;
    let _ = client.session_verb("delete", &name);
    let counter = |key: &str| stats.get(key).and_then(Value::as_u64).unwrap_or(0);
    let instructions = counter("instructions");
    let operations = stats
        .get("model_operations")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| counter("operations"));
    let wall_seconds = if best_wall.is_finite() { best_wall } else { 0.0 };
    let (mips, ns_per_instruction) = if wall_seconds > 0.0 && instructions > 0 {
        (
            instructions as f64 / wall_seconds / 1e6,
            wall_seconds * 1e9 / instructions as f64,
        )
    } else {
        (0.0, 0.0)
    };
    Ok(CellResult {
        key: cell.key(),
        exit_code,
        instructions,
        operations,
        cycles: stats.get("cycles").and_then(Value::as_u64),
        l1_miss_ratio: stats.get("l1_miss_ratio").and_then(Value::as_f64),
        wall_seconds,
        mips,
        ns_per_instruction,
    })
}

/// Drives one session to halt within the cell's instruction budget,
/// resuming across per-request deadlines (`deadline` outcomes) until the
/// daemon reports `halted`. Returns the exit code.
fn run_to_halt(
    client: &mut Client,
    name: &str,
    cell: &CellSpec,
    reset_first: bool,
) -> Result<u32, String> {
    let mut reset = reset_first;
    let mut total = 0u64;
    loop {
        let remaining = cell.budget.saturating_sub(total);
        if remaining == 0 {
            return Err("instruction budget exhausted".into());
        }
        let resp = retry_overloaded(|| client.run(name, Some(remaining), reset, false))
            .map_err(|e| format!("run: {e}"))?;
        reset = false;
        total += resp.get("instructions").and_then(Value::as_u64).unwrap_or(0);
        match resp.get("outcome").and_then(Value::as_str) {
            Some("halted") => {
                return resp
                    .get("exit_code")
                    .and_then(Value::as_u64)
                    .map(|c| c as u32)
                    .ok_or_else(|| "halted without an exit code".into());
            }
            // A per-request deadline is not a cell failure: resume.
            Some("deadline") => {}
            Some("budget") => return Err("instruction budget exhausted".into()),
            Some(other) => return Err(format!("run ended with outcome `{other}`")),
            None => return Err("run response missing `outcome`".into()),
        }
    }
}

/// Retries `overloaded` rejections with the server-suggested backoff.
fn retry_overloaded(
    mut request: impl FnMut() -> Result<Value, ClientError>,
) -> Result<Value, ClientError> {
    let mut attempts = 0u32;
    loop {
        match request() {
            Err(ClientError::Server { ref code, retry_after_ms, .. })
                if code == "overloaded" && attempts < MAX_OVERLOAD_RETRIES =>
            {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(100)));
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_core::CycleModelKind;
    use kahrisma_isa::IsaKind;
    use kahrisma_serve::{Daemon, ServerConfig};
    use kahrisma_workloads::Workload;

    #[test]
    fn create_fields_mirror_sim_config() {
        let mut cell = CellSpec::new(
            Workload::Dct,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Doe)),
        );
        cell.variant = CacheVariant::CacheOnly;
        cell.ideal_memory = true;
        let fields = create_fields(&cell).unwrap();
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v.clone());
        assert_eq!(get("model"), Some(Value::from("doe")));
        assert_eq!(get("decode_cache"), Some(Value::from(true)));
        assert_eq!(get("prediction"), Some(Value::from(false)));
        assert_eq!(get("superblocks"), Some(Value::from(false)));
        assert_eq!(get("ideal_memory"), Some(Value::from(true)));
        assert!(create_fields(&CellSpec::new(
            Workload::Dct,
            IsaKind::Risc,
            Engine::Rtl
        ))
        .is_err());
    }

    #[test]
    fn session_names_are_short_and_distinct() {
        let a = CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None));
        let b = CellSpec::new(Workload::Fft, IsaKind::Risc, Engine::Iss(None));
        assert_ne!(session_name(&a), session_name(&b));
        assert_eq!(session_name(&a), session_name(&a));
        assert!(session_name(&a).len() <= 64);
    }

    #[test]
    fn rtl_campaigns_are_rejected_up_front() {
        let mut spec = CampaignSpec::smoke();
        spec.cells
            .push(CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Rtl));
        let err = run(&spec, "127.0.0.1:1", false).unwrap_err();
        assert!(matches!(err, CampaignError::Cell { .. }));
        assert!(err.to_string().contains("RTL"));
    }

    /// End-to-end: a daemon-dispatched cell produces the same
    /// deterministic counters as the local runner.
    #[test]
    fn daemon_dispatch_matches_the_local_runner() {
        let daemon = Daemon::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = daemon.local_addr().expect("addr").to_string();
        let handle = daemon.handle().expect("handle");
        let thread = std::thread::spawn(move || daemon.run().expect("accept loop"));

        let mut spec = CampaignSpec::smoke();
        spec.cells.truncate(2);
        let served = run(&spec, &addr, false).expect("daemon dispatch");
        let local = crate::runner::run(
            &spec,
            &crate::RunOptions { workers: 2, ..crate::RunOptions::default() },
        )
        .expect("local run");
        assert!(served.report.deterministic_eq(&local.report));

        handle.shutdown();
        thread.join().expect("daemon thread");
    }

    /// `kbatch --daemon` pointed at a `kgate` fleet instead of a lone
    /// daemon: the gateway is wire-transparent, so the dispatched campaign
    /// still matches the local runner bit for bit.
    #[test]
    fn daemon_dispatch_through_a_gate_matches_the_local_runner() {
        use kahrisma_gate::{Fleet, Gate, GateConfig};

        let mut workers = Vec::new();
        for _ in 0..2 {
            let daemon = Daemon::bind(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            })
            .expect("bind worker");
            let addr = daemon.local_addr().expect("addr").to_string();
            let handle = daemon.handle().expect("handle");
            let thread = std::thread::spawn(move || daemon.run().expect("worker loop"));
            workers.push((addr, handle, thread));
        }
        let gate = Gate::bind(
            GateConfig { addr: "127.0.0.1:0".to_string(), ..GateConfig::default() },
            Fleet::new(workers.iter().map(|(a, _, _)| (a.clone(), None)).collect()),
        )
        .expect("bind gate");
        let gate_addr = gate.local_addr().expect("gate addr").to_string();
        let gate_handle = gate.handle().expect("gate handle");
        let gate_thread = std::thread::spawn(move || gate.run().expect("gate loop"));

        let mut spec = CampaignSpec::smoke();
        spec.cells.truncate(2);
        let gated = run(&spec, &gate_addr, false).expect("gated dispatch");
        let local = crate::runner::run(
            &spec,
            &crate::RunOptions { workers: 2, ..crate::RunOptions::default() },
        )
        .expect("local run");
        assert!(gated.report.deterministic_eq(&local.report));

        gate_handle.shutdown();
        gate_thread.join().expect("gate thread");
        for (_, handle, thread) in workers {
            handle.shutdown();
            thread.join().expect("worker thread");
        }
    }
}
