//! Campaign dispatch to a running `ksimd` daemon — the planner's
//! [`DaemonPlanner`] behind the campaign's [`RunSummary`] surface.
//!
//! `kbatch --daemon ADDR` sends each cell of a campaign to a simulation
//! server instead of simulating in-process. Counter fields are
//! bit-identical to a local run of the same campaign; timing fields
//! additionally include protocol and scheduling overhead, which is
//! precisely what serving measurements are for.
//!
//! The RTL reference engine is not servable (the daemon hosts ISS
//! sessions only), so campaigns with `Engine::Rtl` cells are rejected up
//! front — run those locally.

use kahrisma_plan::{DaemonPlanner, PlanSession, Planner};

use crate::report::Report;
use crate::spec::CampaignSpec;
use crate::{CampaignError, RunSummary};

/// Runs every cell of `spec` on the daemon at `addr`, sequentially (the
/// daemon owns admission control and may be shared with other clients).
///
/// # Errors
///
/// Fails when the campaign contains RTL cells, when the daemon is
/// unreachable, and when any cell fails to build, simulate, or pass its
/// workload self-check — same contract as [`crate::runner::run`].
pub fn run(spec: &CampaignSpec, addr: &str, progress: bool) -> Result<RunSummary, CampaignError> {
    let plan = spec.to_plan();
    let mut session = PlanSession { progress, ..PlanSession::default() };
    let run = DaemonPlanner::new(addr).run_plan(&plan, &mut session)?;
    Ok(RunSummary {
        report: Report::new(&spec.name, &plan.fingerprint(), run.results),
        executed: run.executed,
        skipped: run.skipped,
        interrupted: run.interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellSpec, Engine};
    use kahrisma_isa::IsaKind;
    use kahrisma_serve::{Daemon, ServerConfig};
    use kahrisma_workloads::Workload;

    fn smoke() -> CampaignSpec {
        CampaignSpec::by_name("smoke").unwrap()
    }

    #[test]
    fn rtl_campaigns_are_rejected_up_front() {
        let mut spec = smoke();
        spec.cells
            .push(CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Rtl));
        let err = run(&spec, "127.0.0.1:1", false).unwrap_err();
        assert!(matches!(err, CampaignError::Cell { .. }));
        assert!(err.to_string().contains("RTL"));
    }

    /// End-to-end: a daemon-dispatched cell produces the same
    /// deterministic counters as the local runner.
    #[test]
    fn daemon_dispatch_matches_the_local_runner() {
        let daemon = Daemon::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = daemon.local_addr().expect("addr").to_string();
        let handle = daemon.handle().expect("handle");
        let thread = std::thread::spawn(move || daemon.run().expect("accept loop"));

        let mut spec = smoke();
        spec.cells.truncate(2);
        let served = run(&spec, &addr, false).expect("daemon dispatch");
        let local = crate::runner::run(
            &spec,
            &crate::RunOptions { workers: 2, ..crate::RunOptions::default() },
        )
        .expect("local run");
        assert!(served.report.deterministic_eq(&local.report));

        handle.shutdown();
        thread.join().expect("daemon thread");
    }

    /// `kbatch --daemon` pointed at a `kgate` fleet instead of a lone
    /// daemon: the gateway is wire-transparent, so the dispatched campaign
    /// still matches the local runner bit for bit.
    #[test]
    fn daemon_dispatch_through_a_gate_matches_the_local_runner() {
        use kahrisma_gate::{Fleet, Gate, GateConfig};

        let mut workers = Vec::new();
        for _ in 0..2 {
            let daemon = Daemon::bind(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            })
            .expect("bind worker");
            let addr = daemon.local_addr().expect("addr").to_string();
            let handle = daemon.handle().expect("handle");
            let thread = std::thread::spawn(move || daemon.run().expect("worker loop"));
            workers.push((addr, handle, thread));
        }
        let gate = Gate::bind(
            GateConfig { addr: "127.0.0.1:0".to_string(), ..GateConfig::default() },
            Fleet::new(workers.iter().map(|(a, _, _)| (a.clone(), None)).collect()),
        )
        .expect("bind gate");
        let gate_addr = gate.local_addr().expect("gate addr").to_string();
        let gate_handle = gate.handle().expect("gate handle");
        let gate_thread = std::thread::spawn(move || gate.run().expect("gate loop"));

        let mut spec = smoke();
        spec.cells.truncate(2);
        let gated = run(&spec, &gate_addr, false).expect("gated dispatch");
        let local = crate::runner::run(
            &spec,
            &crate::RunOptions { workers: 2, ..crate::RunOptions::default() },
        )
        .expect("local run");
        assert!(gated.report.deterministic_eq(&local.report));

        gate_handle.shutdown();
        gate_thread.join().expect("gate thread");
        for (_, handle, thread) in workers {
            handle.shutdown();
            thread.join().expect("worker thread");
        }
    }
}
